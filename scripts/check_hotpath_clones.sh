#!/usr/bin/env bash
# Grep lint: no new buffer copies on annotated hot paths.
#
# Any Rust source file carrying a `// hot-path: deny-clone` marker must not
# call `.clone()` or `.to_vec()` except on lines annotated with
# `// allow-clone: <reason>` — the annotation forces every copy on a hot
# path to justify itself in review. Scanning stops at the first
# `#[cfg(test)]` line of each file: test code clones freely.
#
# Usage: scripts/check_hotpath_clones.sh [repo-root]

set -euo pipefail

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
cd "$root"

failures=0

while IFS= read -r file; do
    # Honest line numbers: walk the file once, stop at the test module.
    offenses=$(awk '
        /#\[cfg\(test\)\]/ { exit }
        (/\.clone\(\)/ || /\.to_vec\(\)/) && !/allow-clone:/ {
            printf "%s:%d: %s\n", FILENAME, FNR, $0
        }
    ' "$file")
    if [ -n "$offenses" ]; then
        echo "$offenses"
        failures=1
    fi
done < <(grep -rl --include='*.rs' '^// hot-path: deny-clone$' crates src 2>/dev/null)

# Files that must NEVER lose their marker: the streaming chunk path moves
# every chunk result as a shared `ResultBytes`, and a quiet marker removal
# would let per-chunk copies back in unseen.
required_markers=(
    crates/core/src/chunker.rs
    crates/core/src/stream.rs
    crates/core/src/result_bytes.rs
)
for file in "${required_markers[@]}"; do
    if [ -f "$file" ] && ! grep -q '^// hot-path: deny-clone$' "$file"; then
        echo "$file: missing required '// hot-path: deny-clone' marker"
        failures=1
    fi
done

if [ "$failures" -ne 0 ]; then
    echo >&2
    echo "error: unannotated .clone()/.to_vec() on a deny-clone hot path." >&2
    echo "Either remove the copy or justify it: // allow-clone: <reason>" >&2
    exit 1
fi

echo "hot-path clone check: clean"
