#!/usr/bin/env python3
"""Inject the latest repro_output.txt sections into EXPERIMENTS.md.

Usage: python3 scripts/update_experiments.py
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
repro = (ROOT / "repro_output.txt").read_text()
experiments = (ROOT / "EXPERIMENTS.md").read_text()

# Split repro output into blocks separated by blank lines between sections.
blocks = [b.rstrip() for b in repro.split("\n\n\n") if b.strip()]
# Fallback: the renderer separates sections with single blank lines after
# each println!(); recover by headers instead.
headers = {
    "fig5": [],
    "table1": None,
    "fig6": None,
    "ablations": [],
}
current = []
sections = []
for line in repro.splitlines():
    if line.startswith(("Fig. 5 —", "Table I —", "Fig. 6 —", "Ablation —")):
        if current:
            sections.append("\n".join(current).rstrip())
        current = [line]
    elif current:
        current.append(line)
if current:
    sections.append("\n".join(current).rstrip())

fig5 = [s for s in sections if s.startswith("Fig. 5")]
table1 = [s for s in sections if s.startswith("Table I")]
fig6 = [s for s in sections if s.startswith("Fig. 6")]
ablations = [s for s in sections if s.startswith("Ablation")]

def fence(parts):
    return "```text\n" + "\n\n".join(parts) + "\n```"

replacements = {
    "<!-- FIG5_NUMBERS -->": fence(fig5),
    "<!-- TABLE1_NUMBERS -->": fence(table1),
    "<!-- FIG6_NUMBERS -->": fence(fig6),
    "<!-- ABLATION_NUMBERS -->": fence(ablations),
}
for marker, content in replacements.items():
    if marker in experiments:
        experiments = experiments.replace(marker, content)
    else:
        # Re-running: replace the previously injected fenced block that
        # follows the section heading is out of scope; require markers.
        raise SystemExit(f"marker {marker} not found; restore it first")

(ROOT / "EXPERIMENTS.md").write_text(experiments)
print("EXPERIMENTS.md updated:",
      f"{len(fig5)} fig5 blocks, {len(table1)} table1, {len(fig6)} fig6,",
      f"{len(ablations)} ablations")
