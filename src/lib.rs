//! Umbrella crate for the SPEED reproduction workspace.
//!
//! This crate exists to host the workspace-spanning integration tests under
//! `tests/` and the runnable examples under `examples/`. The actual library
//! surface lives in the member crates, re-exported here for convenience:
//!
//! - [`speed_core`] — the paper's contribution: secure computation
//!   deduplication (`Deduplicable`, `DedupRuntime`, RCE result encryption).
//! - [`speed_store`] — the encrypted `ResultStore`.
//! - [`speed_enclave`] — the SGX enclave simulator substrate.
//! - [`speed_crypto`] — SHA-256 / AES-GCM-128 / HMAC primitives.
//! - [`speed_wire`] — the uniform serialization interface and wire protocol.
//! - [`speed_telemetry`] — the process-global metrics registry and span
//!   timers (see `docs/METRICS.md`).
//! - Use-case libraries: [`speed_sift`], [`speed_deflate`], [`speed_matcher`],
//!   [`speed_mapreduce`], and the synthetic data generators in
//!   [`speed_workloads`].

pub use speed_core;
pub use speed_crypto;
pub use speed_deflate;
pub use speed_enclave;
pub use speed_mapreduce;
pub use speed_matcher;
pub use speed_sift;
pub use speed_store;
pub use speed_telemetry;
pub use speed_wire;
pub use speed_workloads;
