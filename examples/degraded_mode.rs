//! Degraded mode: a store outage never fails a marked computation.
//!
//! Starts a TCP `StoreServer`, runs a deduplicated workload against it,
//! kills the server mid-run (computations keep succeeding locally, PUTs
//! queue for replay), then restarts it from a sealed snapshot and watches
//! the replay queue drain and the hits come back.
//!
//! ```text
//! cargo run --release --example degraded_mode
//! ```

use std::sync::{Arc, Mutex};
use std::time::Duration;

use speed_core::{
    BreakerConfig, Connector, DedupRuntime, FuncDesc, ResilienceConfig, RetryPolicy,
    StoreClient, TcpClient, TrustedLibrary,
};
use speed_enclave::{CostModel, Platform};
use speed_store::server::StoreServer;
use speed_store::{persist, ResultStore, StoreConfig};
use speed_wire::SessionAuthority;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::new(CostModel::default_sgx());
    let authority = Arc::new(SessionAuthority::with_seed(42));
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default())?);

    let server = StoreServer::spawn(
        Arc::clone(&store),
        Arc::clone(&platform),
        Arc::clone(&authority),
        "127.0.0.1:0",
    )?;
    println!("store server up on {}", server.addr());

    // The connector re-dials (and re-attests) on every reconnect; the
    // address cell lets the restarted server come back on a new port.
    let addr = Arc::new(Mutex::new(server.addr()));
    let connector: Connector = {
        let platform = Arc::clone(&platform);
        let authority = Arc::clone(&authority);
        let addr = Arc::clone(&addr);
        let enclave = platform.create_enclave(b"degraded-mode-client")?;
        Box::new(move || {
            let target = *addr.lock().expect("addr lock");
            let client = TcpClient::connect(target, &platform, &enclave, &authority)?;
            Ok(Box::new(client) as Box<dyn StoreClient>)
        })
    };

    let mut library = TrustedLibrary::new("mathlib", "1.0.0");
    library.register("u64 square(u64)", b"fn square(x: u64) -> u64 { x * x }");
    let runtime = DedupRuntime::builder(Arc::clone(&platform), b"degraded-mode-app")
        .client_factory(connector)
        .resilience(ResilienceConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(20),
                jitter: 0.5,
            },
            breaker: BreakerConfig {
                failure_threshold: 4,
                cooldown: Duration::from_millis(100),
            },
            ..ResilienceConfig::default()
        })
        .trusted_library(library)
        .build()?;
    let desc = FuncDesc::new("mathlib", "1.0.0", "u64 square(u64)");
    let identity = runtime.resolve(&desc)?;
    let square = |input: &[u8]| {
        let x = u64::from_le_bytes(input.try_into().expect("8-byte input"));
        (x * x).to_le_bytes().to_vec()
    };

    println!("\n--- store up: normal deduplication ---");
    for x in [3u64, 4, 3, 4] {
        let (result, outcome) =
            runtime.execute_raw(&identity, &x.to_le_bytes(), square)?;
        let y = u64::from_le_bytes(result.as_slice().try_into()?);
        println!("square({x}) = {y:<4} [{outcome:?}]");
    }

    println!("\n--- killing the store mid-workload ---");
    let sealed = persist::snapshot(&platform, &store)?;
    server.shutdown();
    for x in [5u64, 6, 7] {
        let (result, outcome) =
            runtime.execute_raw(&identity, &x.to_le_bytes(), square)?;
        let y = u64::from_le_bytes(result.as_slice().try_into()?);
        println!("square({x}) = {y:<4} [{outcome:?}]  (store down — executed locally)");
    }
    let stats = runtime.stats();
    println!(
        "degraded_calls={} retries={} breaker_transitions={} pending_replays={}",
        stats.degraded_calls,
        stats.retries,
        stats.breaker_transitions,
        runtime.pending_replays()
    );

    println!("\n--- restarting the store from its sealed snapshot ---");
    let restored =
        Arc::new(persist::restore(&platform, StoreConfig::default(), &sealed)?);
    let server = StoreServer::spawn(
        Arc::clone(&restored),
        Arc::clone(&platform),
        Arc::clone(&authority),
        "127.0.0.1:0",
    )?;
    *addr.lock().expect("addr lock") = server.addr();
    println!("store back on {}", server.addr());

    // Wait out the breaker cooldown, then let a call drain the queue.
    std::thread::sleep(Duration::from_millis(150));
    while runtime.pending_replays() > 0 {
        runtime.execute_raw(&identity, &8u64.to_le_bytes(), square)?;
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = runtime.stats();
    println!(
        "replayed_puts={} pending_replays={}",
        stats.replayed_puts,
        runtime.pending_replays()
    );

    println!("\n--- results computed during the outage are now shared ---");
    for x in [5u64, 6, 7] {
        let (result, outcome) =
            runtime.execute_raw(&identity, &x.to_le_bytes(), |_| {
                unreachable!("must be served from the restored store")
            })?;
        let y = u64::from_le_bytes(result.as_slice().try_into()?);
        println!("square({x}) = {y:<4} [{outcome:?}]");
    }
    server.shutdown();
    Ok(())
}
