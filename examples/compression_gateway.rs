//! A compression gateway: a bandwidth-optimization middlebox that
//! DEFLATE-compresses documents before they leave the datacenter (the
//! paper's use case 2). Repeated documents skip recompression.
//!
//! ```text
//! cargo run --release --example compression_gateway
//! ```

use std::sync::Arc;

use speed_core::{DedupRuntime, Deduplicable, FuncDesc, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::SessionAuthority;
use speed_workloads::{text, RequestStream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default())?);
    let authority = Arc::new(SessionAuthority::new());

    let mut zlib = TrustedLibrary::new("zlib", "1.2.11");
    zlib.register("int deflate(...)", b"speed-deflate lz77+huffman v1");

    let runtime = DedupRuntime::builder(Arc::clone(&platform), b"compression-gateway")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(zlib)
        .build()?;

    let dedup_deflate = Deduplicable::new(
        &runtime,
        FuncDesc::new("zlib", "1.2.11", "int deflate(...)"),
        |data: &Vec<u8>| speed_deflate::compress(data, speed_deflate::Level::Default),
    )?;

    // 12 distinct documents of 256 KB; 60 requests, 75% duplicates.
    let documents = text::text_corpus(12, 256 << 10, 7);
    let stream = RequestStream::new(documents.len(), 60, 0.75, 777);

    let mut bytes_in = 0usize;
    let mut bytes_out = 0usize;
    let start = std::time::Instant::now();
    for &idx in stream.indices() {
        let compressed = dedup_deflate.call(&documents[idx])?;
        // The gateway still ships the (cached) compressed bytes.
        assert_eq!(
            speed_deflate::decompress(&compressed)?,
            documents[idx],
            "cached ciphertext must decompress to the original"
        );
        bytes_in += documents[idx].len();
        bytes_out += compressed.len();
    }
    let elapsed = start.elapsed();

    let stats = runtime.stats();
    println!("compressed 60 documents in {elapsed:?}");
    println!(
        "bandwidth: {:.1} MB in -> {:.1} MB out (ratio {:.2})",
        bytes_in as f64 / 1e6,
        bytes_out as f64 / 1e6,
        bytes_out as f64 / bytes_in as f64
    );
    println!(
        "dedup: {} of {} compressions reused ({} result bytes never recomputed)",
        stats.hits, stats.calls, stats.reused_bytes
    );
    Ok(())
}
