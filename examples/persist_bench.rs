//! Benchmarks the crash-safe log-structured store backend and emits
//! `BENCH_persist.json`.
//!
//! Three questions, one phase each:
//!
//! 1. **Append throughput** — what does durability cost on the PUT path?
//!    The same PUT stream runs against the in-memory backend, the log
//!    backend with fsync disabled (group-commit bytes without the disk
//!    barrier), and the log backend with fsync on (the production
//!    configuration: WAL-then-ack).
//! 2. **Recovery time vs WAL length** — replay cost grows with the WAL,
//!    and a checkpoint bounds it. The bench reopens stores behind WALs of
//!    increasing length, then checkpoints the longest one and shows the
//!    reopen time collapsing.
//! 3. **Compaction** — after deleting most entries, how many dead WAL
//!    bytes do compaction passes reclaim?
//!
//! ```text
//! cargo run --release --example persist_bench            # full run
//! cargo run --release --example persist_bench -- --smoke # CI smoke run
//! ```

use std::sync::Arc;
use std::time::Instant;

use speed_enclave::{CostModel, Platform};
use speed_store::{
    LogBackend, LogConfig, QuotaPolicy, ResultStore, StoreBackend, StoreConfig,
};
use speed_wire::{AppId, CompTag, Message, Record};

const RECORD_LEN: usize = 256;

fn tag(i: u64) -> CompTag {
    let mut bytes = [0u8; 32];
    bytes[0] = (i % 251) as u8; // spread across shard logs
    bytes[1..9].copy_from_slice(&i.to_le_bytes());
    CompTag::from_bytes(bytes)
}

fn record(i: u64) -> Record {
    Record {
        challenge: vec![0u8; 32],
        wrapped_key: [0u8; 16],
        nonce: [0u8; 12],
        boxed_result: vec![(i % 251) as u8; RECORD_LEN],
    }
}

fn store_config() -> StoreConfig {
    let mut config = StoreConfig::with_capacity(1_000_000, u64::MAX);
    config.quota = QuotaPolicy::unlimited();
    config
}

fn scratch(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("speed-persist-bench-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Throughput {
    backend: &'static str,
    puts: u64,
    wall_ms: f64,
}

impl Throughput {
    fn puts_per_sec(&self) -> f64 {
        self.puts as f64 / (self.wall_ms / 1e3).max(1e-9)
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"backend\": \"{}\", \"puts\": {}, \"wall_ms\": {:.3}, ",
                "\"puts_per_sec\": {:.0}, \"payload_mb_per_sec\": {:.2}}}"
            ),
            self.backend,
            self.puts,
            self.wall_ms,
            self.puts_per_sec(),
            self.puts_per_sec() * RECORD_LEN as f64 / 1e6,
        )
    }
}

fn bench_puts(platform: &Arc<Platform>, store: &ResultStore, puts: u64) -> f64 {
    let start = Instant::now();
    for i in 0..puts {
        let response = store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(i),
            record: record(i),
        });
        assert!(
            matches!(&response, Message::PutResponse(b) if b.accepted),
            "PUT {i} rejected: {response:?}"
        );
    }
    let _ = platform; // platform kept alive for the store's lifetime
    start.elapsed().as_secs_f64() * 1e3
}

struct RecoveryPoint {
    wal_records: u64,
    checkpointed: bool,
    recovery_ms: f64,
    replayed: u64,
    entries: u64,
}

impl RecoveryPoint {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"wal_records\": {}, \"checkpointed\": {}, ",
                "\"recovery_ms\": {:.3}, \"replayed_records\": {}, \"entries\": {}}}"
            ),
            self.wal_records,
            self.checkpointed,
            self.recovery_ms,
            self.replayed,
            self.entries,
        )
    }
}

/// Builds a store with `puts` WAL records (optionally checkpointing at the
/// end), drops it, reopens it, and reports the recovery pass.
fn recovery_point(
    platform: &Arc<Platform>,
    label: &str,
    puts: u64,
    checkpoint: bool,
) -> RecoveryPoint {
    let dir = scratch(label);
    {
        let backend = Arc::new(LogBackend::new(LogConfig {
            checkpoint_every: 0,
            ..LogConfig::new(&dir)
        }));
        let (store, _) =
            ResultStore::open(platform, store_config(), backend).expect("open");
        for i in 0..puts {
            store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(i),
                record: record(i),
            });
        }
        if checkpoint {
            store.checkpoint().expect("checkpoint");
        }
    }
    let backend = Arc::new(LogBackend::new(LogConfig::new(&dir)));
    let (store, report) =
        ResultStore::open(platform, store_config(), backend).expect("reopen");
    let point = RecoveryPoint {
        wal_records: puts,
        checkpointed: checkpoint,
        recovery_ms: report.duration_ns as f64 / 1e6,
        replayed: report.wal_records_replayed,
        entries: store.stats().entries,
    };
    assert_eq!(point.entries, puts, "recovery lost entries");
    let _ = std::fs::remove_dir_all(&dir);
    point
}

fn main() -> std::io::Result<()> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    // Durable recovery requires the same sealing identity across reopens.
    let platform = Platform::with_seed(CostModel::no_sgx(), Some(0xBE_7C4));

    let durable_puts: u64 = if smoke { 300 } else { 3_000 };
    let wal_lengths: &[u64] =
        if smoke { &[100, 200, 400] } else { &[500, 1_000, 2_000, 4_000] };
    let compact_entries: u64 = if smoke { 400 } else { 4_000 };

    println!(
        "persist bench: {durable_puts} PUTs of {RECORD_LEN} B{}",
        if smoke { " [smoke]" } else { "" }
    );

    // ---- Phase 1: append throughput ------------------------------------
    let mut throughputs = Vec::new();
    {
        let store = ResultStore::new(platform.as_ref(), store_config()).expect("store");
        let wall_ms = bench_puts(&platform, &store, durable_puts);
        throughputs.push(Throughput { backend: "memory", puts: durable_puts, wall_ms });
    }
    for (name, fsync) in [("log_nofsync", false), ("log_fsync", true)] {
        let dir = scratch(name);
        let backend = Arc::new(LogBackend::new(LogConfig {
            fsync,
            checkpoint_every: 0,
            ..LogConfig::new(&dir)
        }));
        let (store, _) =
            ResultStore::open(&platform, store_config(), backend).expect("open");
        let wall_ms = bench_puts(&platform, &store, durable_puts);
        throughputs.push(Throughput { backend: name, puts: durable_puts, wall_ms });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    for t in &throughputs {
        println!(
            "  {:<12} {:>7} puts  {:>10.1} ms  {:>10.0} puts/s",
            t.backend,
            t.puts,
            t.wall_ms,
            t.puts_per_sec()
        );
    }

    // ---- Phase 2: recovery time vs WAL length --------------------------
    let mut recovery = Vec::new();
    for &n in wal_lengths {
        recovery.push(recovery_point(&platform, &format!("rec-{n}"), n, false));
    }
    // Checkpoint the longest WAL: replay collapses to zero records.
    let longest = *wal_lengths.last().expect("non-empty");
    recovery.push(recovery_point(&platform, "rec-ckpt", longest, true));
    for p in &recovery {
        println!(
            "  recovery: {:>6} records{}  {:>9.2} ms  ({} replayed)",
            p.wal_records,
            if p.checkpointed { " +ckpt" } else { "      " },
            p.recovery_ms,
            p.replayed,
        );
    }
    let bounded = recovery.last().expect("checkpoint point");
    assert_eq!(bounded.replayed, 0, "checkpoint must bound replay to zero");

    // ---- Phase 3: compaction -------------------------------------------
    let dir = scratch("compact");
    let backend = Arc::new(LogBackend::new(LogConfig {
        checkpoint_every: 0,
        logs: 1,                  // one log => segments seal at smoke scale too
        segment_bytes: 16 * 1024, // many sealed segments to compact
        compact_min_dead_bytes: 1024,
        ..LogConfig::new(&dir)
    }));
    let (store, _) = ResultStore::open(
        &platform,
        store_config(),
        Arc::clone(&backend) as Arc<dyn StoreBackend>,
    )
    .expect("open");
    for i in 0..compact_entries {
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(i),
            record: record(i),
        });
    }
    // Kill 75% of the entries straight through the backend (the store has
    // no client-facing delete; production deaths come from eviction and
    // TTL expiry, which log the same record), then compact until no
    // candidate segment remains.
    for i in (0..compact_entries).filter(|i| i % 4 != 0) {
        backend.record_delete(&tag(i)).expect("delete");
    }
    backend.flush().expect("flush");
    let before = backend.stats().wal_bytes;
    let mut passes = 0u64;
    while backend.wants_compaction() {
        backend.compact().expect("compact");
        passes += 1;
    }
    let after = backend.stats().wal_bytes;
    let reclaimed = backend.stats().reclaimed_bytes;
    println!(
        "  compaction: {before} B -> {after} B in {passes} passes \
         ({reclaimed} B reclaimed)"
    );
    assert!(after < before, "compaction must shrink the WAL");
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Emit ----------------------------------------------------------
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"persist\",\n",
            "  \"config\": {{\"record_len\": {}, \"durable_puts\": {}, \"smoke\": {}}},\n",
            "  \"append_throughput\": [\n{}\n  ],\n",
            "  \"recovery\": [\n{}\n  ],\n",
            "  \"compaction\": {{\"entries\": {}, \"wal_bytes_before\": {}, ",
            "\"wal_bytes_after\": {}, \"passes\": {}, \"reclaimed_bytes\": {}}}\n",
            "}}\n"
        ),
        RECORD_LEN,
        durable_puts,
        smoke,
        throughputs.iter().map(Throughput::to_json).collect::<Vec<_>>().join(",\n"),
        recovery.iter().map(RecoveryPoint::to_json).collect::<Vec<_>>().join(",\n"),
        compact_entries,
        before,
        after,
        passes,
        reclaimed,
    );
    std::fs::write("BENCH_persist.json", &json)?;
    println!("wrote BENCH_persist.json");
    std::fs::write(
        "BENCH_persist.telemetry.jsonl",
        speed_telemetry::global().snapshot().render_jsonl(),
    )?;
    println!("wrote BENCH_persist.telemetry.jsonl");
    Ok(())
}
