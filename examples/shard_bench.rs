//! Benchmarks the sharded result store against a single-lock configuration
//! and emits `BENCH_shard.json`.
//!
//! Client threads (1 → 8) drive PUT then GET phases directly against a
//! `ResultStore` built with 1 shard (the old global-lock layout) and with
//! the default shard count. Tags are uniform over the shard space, so the
//! sharded store spreads dictionary traffic across its partitions.
//!
//! Throughput methodology: this repo simulates SGX (ECALL/OCALL costs are
//! charged to a logical clock), and CI hosts may have a single core, so
//! raw wall-clock cannot show lock-level parallelism. Instead each shard
//! counts `busy_ns` — real nanoseconds its dictionary lock was held. The
//! modeled makespan for `T` client threads is
//!
//! ```text
//! makespan = max(busiest_shard_busy_ns, total_busy_ns / T)
//! ```
//!
//! i.e. each shard is a serial server (its critical sections cannot
//! overlap) and `T` threads can at best divide the total critical-section
//! work. A 1-shard store serializes everything (`makespan = total`); an
//! N-shard store overlaps up to N ways. Honest wall-clock is reported
//! alongside. See EXPERIMENTS.md for details.
//!
//! ```text
//! cargo run --release --example shard_bench            # full run
//! cargo run --release --example shard_bench -- --smoke # CI smoke run
//! ```

use std::sync::Arc;

use speed_enclave::{CostModel, Platform};
use speed_store::{QuotaPolicy, ResultStore, StoreConfig};
use speed_wire::{AppId, CompTag, Message, Record};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const RECORD_LEN: usize = 256;

fn tag(thread: usize, i: usize) -> CompTag {
    let mut bytes = [0u8; 32];
    // Uniform over the lead byte so tags spread across shards; unique per
    // (thread, i).
    bytes[0] = ((i * THREAD_COUNTS.len() + thread) % 251) as u8;
    bytes[1] = thread as u8;
    bytes[2..10].copy_from_slice(&(i as u64).to_le_bytes());
    CompTag::from_bytes(bytes)
}

fn record(fill: u8) -> Record {
    Record {
        challenge: vec![fill; 32],
        wrapped_key: [fill; 16],
        nonce: [fill; 12],
        boxed_result: vec![fill; RECORD_LEN],
    }
}

/// Per-shard busy counters at a point in time.
fn busy_snapshot(store: &ResultStore) -> Vec<u64> {
    store.stats().shards.iter().map(|s| s.busy_ns).collect()
}

#[derive(Clone, Copy)]
struct Phase {
    ops: u64,
    wall_ms: f64,
    total_busy_ms: f64,
    max_shard_busy_ms: f64,
    modeled_makespan_ms: f64,
    modeled_kops: f64,
}

fn phase_metrics(
    ops: u64,
    wall_ms: f64,
    before: &[u64],
    after: &[u64],
    threads: usize,
) -> Phase {
    let deltas: Vec<u64> =
        after.iter().zip(before).map(|(a, b)| a.saturating_sub(*b)).collect();
    let total: u64 = deltas.iter().sum();
    let max_shard: u64 = deltas.iter().copied().max().unwrap_or(0);
    let makespan_ns = (total as f64 / threads as f64).max(max_shard as f64).max(1.0);
    Phase {
        ops,
        wall_ms,
        total_busy_ms: total as f64 / 1e6,
        max_shard_busy_ms: max_shard as f64 / 1e6,
        modeled_makespan_ms: makespan_ns / 1e6,
        modeled_kops: ops as f64 / (makespan_ns / 1e9) / 1e3,
    }
}

struct Run {
    variant: &'static str,
    shards: usize,
    threads: usize,
    put: Phase,
    get: Phase,
}

impl Run {
    fn to_json(&self) -> String {
        let phase = |name: &str, p: &Phase| {
            format!(
                concat!(
                    "\"{}\": {{\"ops\": {}, \"wall_ms\": {:.3}, ",
                    "\"total_busy_ms\": {:.3}, \"max_shard_busy_ms\": {:.3}, ",
                    "\"modeled_makespan_ms\": {:.3}, \"modeled_kops_per_sec\": {:.1}}}"
                ),
                name,
                p.ops,
                p.wall_ms,
                p.total_busy_ms,
                p.max_shard_busy_ms,
                p.modeled_makespan_ms,
                p.modeled_kops,
            )
        };
        format!(
            "    {{\"variant\": \"{}\", \"shards\": {}, \"threads\": {}, {}, {}}}",
            self.variant,
            self.shards,
            self.threads,
            phase("put", &self.put),
            phase("get", &self.get),
        )
    }
}

fn run_variant(variant: &'static str, shards: usize, threads: usize, ops: usize) -> Run {
    let platform = Platform::new(CostModel::default_sgx());
    let config =
        StoreConfig { quota: QuotaPolicy::unlimited(), ..StoreConfig::default() }
            .with_shards(shards);
    let store = Arc::new(ResultStore::new(&platform, config).unwrap());
    let per_thread = ops / threads;

    let busy0 = busy_snapshot(&store);
    let put_start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                let app = AppId(thread as u64);
                for i in 0..per_thread {
                    let response = store.handle(Message::PutRequest {
                        app,
                        tag: tag(thread, i),
                        record: record(thread as u8),
                    });
                    assert!(
                        matches!(response, Message::PutResponse(ref b) if b.accepted)
                    );
                }
            });
        }
    });
    let put_wall_ms = put_start.elapsed().as_secs_f64() * 1e3;
    let busy1 = busy_snapshot(&store);

    let get_start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for thread in 0..threads {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                let app = AppId(thread as u64);
                for i in 0..per_thread {
                    let response =
                        store.handle(Message::GetRequest { app, tag: tag(thread, i) });
                    assert!(matches!(response, Message::GetResponse(ref b) if b.found));
                }
            });
        }
    });
    let get_wall_ms = get_start.elapsed().as_secs_f64() * 1e3;
    let busy2 = busy_snapshot(&store);

    let total_ops = (per_thread * threads) as u64;
    Run {
        variant,
        shards: store.shard_count(),
        threads,
        put: phase_metrics(total_ops, put_wall_ms, &busy0, &busy1, threads),
        get: phase_metrics(total_ops, get_wall_ms, &busy1, &busy2, threads),
    }
}

/// Runs a variant `reps` times and keeps each phase's best repetition (by
/// modeled makespan), damping allocator/page-fault warmup noise.
fn run_variant_best(
    variant: &'static str,
    shards: usize,
    threads: usize,
    ops: usize,
    reps: usize,
) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..reps {
        let run = run_variant(variant, shards, threads, ops);
        best = Some(match best {
            None => run,
            Some(mut current) => {
                if run.put.modeled_makespan_ms < current.put.modeled_makespan_ms {
                    current.put = run.put;
                }
                if run.get.modeled_makespan_ms < current.get.modeled_makespan_ms {
                    current.get = run.get;
                }
                current
            }
        });
    }
    best.expect("reps >= 1")
}

fn find<'a>(runs: &'a [Run], variant: &str, threads: usize) -> &'a Run {
    runs.iter().find(|r| r.variant == variant && r.threads == threads).unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let ops = if smoke { 512 } else { 8192 };
    let sharded = speed_store::DEFAULT_SHARDS;

    println!(
        "shard bench: {ops} ops/phase, record {RECORD_LEN} B, \
         single-lock vs {sharded} shards, host cpus {}{}",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        if smoke { " [smoke]" } else { "" },
    );

    // Warmup: touch both configurations once so no measured run pays the
    // process's first-allocation/page-fault costs.
    let _ = run_variant("warmup", 1, 1, ops.min(1024));
    let _ = run_variant("warmup", sharded, 1, ops.min(1024));

    let reps = if smoke { 2 } else { 3 };
    let mut runs = Vec::new();
    for &threads in &THREAD_COUNTS {
        runs.push(run_variant_best("single_lock", 1, threads, ops, reps));
        runs.push(run_variant_best("sharded", sharded, threads, ops, reps));
    }

    for run in &runs {
        println!(
            "  {:<11} shards={:<2} threads={:<2} \
             put {:>8.1} kops (wall {:>8.3} ms)  \
             get {:>8.1} kops (wall {:>8.3} ms)",
            run.variant,
            run.shards,
            run.threads,
            run.put.modeled_kops,
            run.put.wall_ms,
            run.get.modeled_kops,
            run.get.wall_ms,
        );
    }

    let max_threads = *THREAD_COUNTS.last().unwrap();
    let single_8 = find(&runs, "single_lock", max_threads);
    let sharded_8 = find(&runs, "sharded", max_threads);
    let put_factor = sharded_8.put.modeled_kops / single_8.put.modeled_kops;
    let get_factor = sharded_8.get.modeled_kops / single_8.get.modeled_kops;

    let single_1 = find(&runs, "single_lock", 1);
    let sharded_1 = find(&runs, "sharded", 1);
    let put_1_ratio = sharded_1.put.modeled_kops / single_1.put.modeled_kops;
    let get_1_ratio = sharded_1.get.modeled_kops / single_1.get.modeled_kops;

    println!(
        "  at {max_threads} threads: sharded/single PUT {put_factor:.2}x, \
         GET {get_factor:.2}x"
    );
    println!(
        "  at 1 thread: sharded/single PUT {put_1_ratio:.2}x, GET {get_1_ratio:.2}x"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"shard_scaling\",\n",
            "  \"methodology\": \"per-shard busy_ns (real ns under shard lock); ",
            "modeled makespan = max(busiest_shard, total/threads); each shard a ",
            "serial server, matching the simulated-SGX methodology; wall-clock ",
            "reported alongside\",\n",
            "  \"config\": {{\"ops_per_phase\": {}, \"record_bytes\": {}, ",
            "\"sharded_shards\": {}, \"host_cpus\": {}, \"smoke\": {}}},\n",
            "  \"runs\": [\n{}\n  ],\n",
            "  \"headline\": {{\"threads\": {}, ",
            "\"sharded_vs_single_put_factor\": {:.2}, ",
            "\"sharded_vs_single_get_factor\": {:.2}, ",
            "\"single_thread_put_ratio\": {:.2}, ",
            "\"single_thread_get_ratio\": {:.2}}}\n",
            "}}\n"
        ),
        ops,
        RECORD_LEN,
        sharded,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        smoke,
        runs.iter().map(Run::to_json).collect::<Vec<_>>().join(",\n"),
        max_threads,
        put_factor,
        get_factor,
        put_1_ratio,
        get_1_ratio,
    );
    std::fs::write("BENCH_shard.json", &json)?;
    println!("wrote BENCH_shard.json");
    Ok(())
}
