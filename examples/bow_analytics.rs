//! Incremental text analytics: bag-of-words over web-page crawls (the
//! paper's use case 4). Crawl snapshots overlap heavily, so per-batch BoW
//! computations deduplicate across runs.
//!
//! ```text
//! cargo run --release --example bow_analytics
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use speed_core::{DedupRuntime, Deduplicable, FuncDesc, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_mapreduce::{bag_of_words, counts_from_bytes, counts_to_bytes, BowConfig};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::SessionAuthority;
use speed_workloads::pages;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default())?);
    let authority = Arc::new(SessionAuthority::new());

    let mut mapreduce_lib = TrustedLibrary::new("mapreduce", "1.0");
    mapreduce_lib.register("Counts bow_mapper(Pages)", b"speed-mapreduce bow v1");

    let runtime = DedupRuntime::builder(Arc::clone(&platform), b"bow-analytics")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(mapreduce_lib)
        .build()?;

    let dedup_bow = Deduplicable::new(
        &runtime,
        FuncDesc::new("mapreduce", "1.0", "Counts bow_mapper(Pages)"),
        |batch: &Vec<String>| -> Vec<u8> {
            counts_to_bytes(&bag_of_words(batch, &BowConfig::default()))
        },
    )?;

    // The crawler partitions pages into stable batches of 25; two
    // consecutive "crawls" share most batches (incremental update).
    let all_pages = pages::page_corpus(150, 150, 11);
    let batches: Vec<Vec<String>> =
        all_pages.chunks(25).map(|chunk| chunk.to_vec()).collect();

    let mut aggregate: HashMap<String, u64> = HashMap::new();
    let mut run_crawl = |label: &str,
                         batch_indices: &[usize]|
     -> Result<(), Box<dyn std::error::Error>> {
        let start = std::time::Instant::now();
        for &idx in batch_indices {
            let result_bytes = dedup_bow.call(&batches[idx])?;
            for (word, count) in counts_from_bytes(&result_bytes).expect("valid counts") {
                *aggregate.entry(word).or_insert(0) += count;
            }
        }
        let stats = runtime.stats();
        println!(
            "{label}: {:?} ({} total hits / {} calls so far)",
            start.elapsed(),
            stats.hits,
            stats.calls
        );
        Ok(())
    };

    // First crawl processes batches 0..5; second crawl re-processes 4 of
    // them plus one new batch.
    run_crawl("crawl #1 (cold)", &[0, 1, 2, 3, 4])?;
    run_crawl("crawl #2 (incremental)", &[1, 2, 3, 4, 5])?;

    let mut top: Vec<(&String, &u64)> = aggregate.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("top 10 words across both crawls:");
    for (word, count) in top.into_iter().take(10) {
        println!("  {word:<12} {count}");
    }
    Ok(())
}
