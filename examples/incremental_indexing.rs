//! Incremental index building over an evolving dataset — the paper's §I
//! motivation: "incrementally updated datasets are constantly being
//! processed by the same or similar computing tasks, such as […] index
//! building for fast queries."
//!
//! Every epoch, a pipeline recomputes a per-document index (compressed
//! term list) for the whole corpus; only ~10% of documents actually
//! changed, so ~90% of the per-document computations are served from the
//! encrypted store.
//!
//! ```text
//! cargo run --release --example incremental_indexing
//! ```

use std::sync::Arc;
use std::time::Instant;

use speed_core::{DedupRuntime, Deduplicable, FuncDesc, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::SessionAuthority;
use speed_workloads::{EvolutionConfig, EvolvingCorpus};

/// Builds one document's index entry: tokenize, count, compress.
fn build_index_entry(document: &[u8]) -> Vec<u8> {
    let text = String::from_utf8_lossy(document);
    let counts = speed_mapreduce::bag_of_words(
        &[text.into_owned()],
        &speed_mapreduce::BowConfig::default(),
    );
    let serialized = speed_mapreduce::counts_to_bytes(&counts);
    speed_deflate::compress(&serialized, speed_deflate::Level::Default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default())?);
    let authority = Arc::new(SessionAuthority::new());

    let mut indexer_lib = TrustedLibrary::new("indexer", "2.1");
    indexer_lib.register("Entry build_index_entry(Doc)", b"tokenize+count+deflate v2.1");

    let runtime = DedupRuntime::builder(Arc::clone(&platform), b"index-builder")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(indexer_lib)
        .async_put(true)
        .build()?;

    let dedup_index = Deduplicable::new(
        &runtime,
        FuncDesc::new("indexer", "2.1", "Entry build_index_entry(Doc)"),
        |doc: &Vec<u8>| build_index_entry(doc),
    )?;

    let mut corpus = EvolvingCorpus::new(
        EvolutionConfig { documents: 120, document_bytes: 8192, churn: 0.1 },
        2024,
    );

    println!("indexing {} documents across 5 epochs (10% churn/epoch)\n", 120);
    let mut previous_hits = 0u64;
    for epoch in 0..5 {
        let start = Instant::now();
        let mut index_bytes = 0usize;
        for document in corpus.documents() {
            let entry = dedup_index.call(&document.clone())?;
            index_bytes += entry.len();
        }
        runtime.flush();
        let stats = runtime.stats();
        let epoch_hits = stats.hits - previous_hits;
        previous_hits = stats.hits;
        println!(
            "epoch {epoch}: rebuilt full index ({} KB) in {:?} — {} of 120 \
             entries reused{}",
            index_bytes / 1024,
            start.elapsed(),
            epoch_hits,
            if epoch == 0 { " (cold)" } else { "" },
        );
        corpus.advance();
    }

    let stats = runtime.stats();
    println!(
        "\ntotals: {} index builds, {} reused ({:.0}%), {} recomputed",
        stats.calls,
        stats.hits,
        stats.hits as f64 / stats.calls as f64 * 100.0,
        stats.misses
    );
    println!(
        "store grew to {} entries / {} ciphertext bytes",
        store.stats().entries,
        store.stats().stored_bytes
    );
    Ok(())
}
