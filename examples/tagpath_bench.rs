//! Benchmarks the tiered tag pipeline and emits `BENCH_tagpath.json`.
//!
//! Three lanes, each a before/after pair around one tier of the ladder:
//!
//! - **hit** — warm hot-cache hits on a 64 KiB result. *Before* models the
//!   old clone-per-hit API by copying the returned buffer; *after* keeps
//!   the shared `ResultBytes` (a refcount bump).
//! - **miss** — definite misses (fresh input every op). *Before* runs the
//!   classic path: GET (not found) + PUT, two OCALLs. *After* enables the
//!   negative filter, so the GET round-trip is skipped (`MissFiltered`).
//! - **lookup** — negative probes over ~1 MiB inputs via
//!   [`DedupRuntime::lookup`]. *Before* (no filter) pays the full SHA-256
//!   comp-tag plus a GET; *after* answers from the 64-bit sampled
//!   prefilter without hashing the megabyte at all.
//!
//! Methodology matches the other benches: real computation runs natively
//! and modelled SGX overheads (world switches, boundary copies) accrue on
//! the platform's simulated clock, so each lane reports
//! `ns/op = (wall + simulated) / ops` plus both components. See
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example tagpath_bench            # full run
//! cargo run --release --example tagpath_bench -- --smoke # CI smoke run
//! ```

use std::sync::Arc;

use speed_core::{
    DedupRuntime, FuncDesc, HotCacheConfig, PrefilterConfig, TrustedLibrary,
};
use speed_enclave::{CostModel, Platform};
use speed_store::{QuotaPolicy, ResultStore, StoreConfig};
use speed_wire::SessionAuthority;

const HIT_RESULT_LEN: usize = 64 * 1024;
const LOOKUP_INPUT_LEN: usize = 1024 * 1024;

struct Lane {
    lane: &'static str,
    variant: &'static str,
    ops: u64,
    wall_ns_per_op: f64,
    sim_ns_per_op: f64,
}

impl Lane {
    fn ns_per_op(&self) -> f64 {
        self.wall_ns_per_op + self.sim_ns_per_op
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"lane\": \"{}\", \"variant\": \"{}\", \"ops\": {}, ",
                "\"wall_ns_per_op\": {:.1}, \"sim_ns_per_op\": {:.1}, ",
                "\"ns_per_op\": {:.1}}}"
            ),
            self.lane,
            self.variant,
            self.ops,
            self.wall_ns_per_op,
            self.sim_ns_per_op,
            self.ns_per_op(),
        )
    }
}

fn build_runtime(
    platform: &Arc<Platform>,
    filtered: bool,
    hot_cache: bool,
) -> Arc<DedupRuntime> {
    let config = StoreConfig {
        quota: QuotaPolicy::unlimited(),
        ..StoreConfig::with_capacity(50_000, u64::MAX)
    };
    let store = Arc::new(ResultStore::new(platform, config).expect("store"));
    let authority = Arc::new(SessionAuthority::new());
    let mut library = TrustedLibrary::new("benchlib", "1.0.0");
    library.register("bytes work(bytes)", b"fn work(input: &[u8]) -> Vec<u8>");
    let mut builder = DedupRuntime::builder(Arc::clone(platform), b"tagpath-bench")
        .in_process_store(store, authority)
        .trusted_library(library);
    if hot_cache {
        builder = builder
            .hot_cache(HotCacheConfig { max_entries: 1024, max_bytes: 16 * 1024 * 1024 });
    }
    if filtered {
        // One refresh at the start of the lane, then the merged view stays
        // live for the whole run.
        builder = builder.prefilter(PrefilterConfig { refresh_ops: u64::MAX });
    }
    builder.build().expect("runtime")
}

/// Times `op` over `ops` iterations against the runtime's platform clock,
/// returning wall and simulated ns/op.
fn timed(
    rt: &DedupRuntime,
    lane: &'static str,
    variant: &'static str,
    ops: u64,
    mut op: impl FnMut(u64),
) -> Lane {
    let clock = Arc::clone(rt.enclave().clock());
    let sim0 = clock.total_ns();
    let start = std::time::Instant::now();
    for i in 0..ops {
        op(i);
    }
    let wall = start.elapsed().as_nanos() as f64;
    let sim = (clock.total_ns() - sim0) as f64;
    Lane {
        lane,
        variant,
        ops,
        wall_ns_per_op: wall / ops as f64,
        sim_ns_per_op: sim / ops as f64,
    }
}

/// Warm hot-cache hits on one 64 KiB result; `copy` forces the
/// pre-refactor per-hit buffer copy.
fn hit_lane(variant: &'static str, ops: u64, copy: bool) -> Lane {
    let platform = Platform::new(CostModel::default_sgx());
    let rt = build_runtime(&platform, true, true);
    let desc = FuncDesc::new("benchlib", "1.0.0", "bytes work(bytes)");
    let compute = |_: &[u8]| vec![0xA5u8; HIT_RESULT_LEN];
    // Warm: miss once, hit once (fills and proves the cache path).
    rt.execute(&desc, b"hot-input", compute).expect("warm miss");
    rt.execute(&desc, b"hot-input", compute).expect("warm hit");
    timed(&rt, "hit", variant, ops, |_| {
        let (result, _) = rt.execute(&desc, b"hot-input", compute).expect("hit");
        if copy {
            // The old API cloned the cached buffer on every hit; model
            // exactly that cost.
            let copied = result.as_slice().to_vec();
            std::hint::black_box(&copied);
        } else {
            std::hint::black_box(&*result);
        }
    })
}

/// Definite misses: every op computes and publishes a fresh result. With
/// the filter on, the GET round-trip is skipped.
fn miss_lane(variant: &'static str, ops: u64, filtered: bool) -> Lane {
    let platform = Platform::new(CostModel::default_sgx());
    let rt = build_runtime(&platform, filtered, false);
    let desc = FuncDesc::new("benchlib", "1.0.0", "bytes work(bytes)");
    // One untimed op: the filtered variant pulls its filter snapshot here,
    // so the lane measures the steady state (a refresh amortizes over
    // `refresh_ops` calls in production, not over every op).
    rt.execute(&desc, b"warm", |_| vec![0; 128]).expect("warm");
    timed(&rt, "miss", variant, ops, |i| {
        let input = i.to_le_bytes();
        let (result, _) =
            rt.execute(&desc, &input, |input| vec![input[0]; 128]).expect("miss");
        std::hint::black_box(&*result);
    })
}

/// Negative lookups over ~1 MiB inputs. With the filter on, the probe
/// answers from the sampled prefilter without the full SHA-256 or the GET.
fn lookup_lane(variant: &'static str, ops: u64, filtered: bool) -> Lane {
    let platform = Platform::new(CostModel::default_sgx());
    let rt = build_runtime(&platform, filtered, false);
    let desc = FuncDesc::new("benchlib", "1.0.0", "bytes work(bytes)");
    let identity = rt.resolve(&desc).expect("resolve");
    let mut input = vec![0x3Cu8; LOOKUP_INPUT_LEN];
    // Untimed warm probe: absorbs the filtered variant's one-time filter
    // snapshot pull (see miss_lane).
    let _ = rt.lookup(&identity, &input).expect("warm lookup");
    timed(&rt, "lookup", variant, ops, |i| {
        // Unique input per op (still a miss), mutated in place so the lane
        // measures the probe, not an allocation.
        input[..8].copy_from_slice(&i.to_le_bytes());
        let probe = rt.lookup(&identity, &input).expect("lookup");
        assert!(probe.is_none(), "lookup lane must stay a miss");
    })
}

fn find<'a>(lanes: &'a [Lane], lane: &str, variant: &str) -> &'a Lane {
    lanes.iter().find(|l| l.lane == lane && l.variant == variant).unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let (hit_ops, miss_ops, lookup_ops) =
        if smoke { (400, 200, 24) } else { (20_000, 4_000, 300) };

    println!(
        "tagpath bench: hit result {} KiB, lookup input {} KiB{}",
        HIT_RESULT_LEN / 1024,
        LOOKUP_INPUT_LEN / 1024,
        if smoke { " [smoke]" } else { "" },
    );

    // Warmup pass absorbs first-allocation and page-fault noise.
    let _ = hit_lane("warmup", hit_ops / 4 + 1, false);
    let _ = lookup_lane("warmup", lookup_ops / 4 + 1, true);

    let lanes = [
        hit_lane("copy_per_hit", hit_ops, true),
        hit_lane("shared_buffer", hit_ops, false),
        miss_lane("unfiltered", miss_ops, false),
        miss_lane("filtered", miss_ops, true),
        lookup_lane("full_tag", lookup_ops, false),
        lookup_lane("prefiltered", lookup_ops, true),
    ];

    for lane in &lanes {
        println!(
            "  {:<6} {:<13} {:>7} ops  wall {:>10.1} ns/op  sim {:>8.1} ns/op  \
             total {:>10.1} ns/op",
            lane.lane,
            lane.variant,
            lane.ops,
            lane.wall_ns_per_op,
            lane.sim_ns_per_op,
            lane.ns_per_op(),
        );
    }

    let ratio = |lane: &str, before: &str, after: &str| {
        find(&lanes, lane, before).ns_per_op() / find(&lanes, lane, after).ns_per_op()
    };
    let hit_speedup = ratio("hit", "copy_per_hit", "shared_buffer");
    let miss_speedup = ratio("miss", "unfiltered", "filtered");
    let lookup_speedup = ratio("lookup", "full_tag", "prefiltered");
    println!(
        "  speedups: hit {hit_speedup:.2}x, miss {miss_speedup:.2}x, \
         lookup {lookup_speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"bench\": \"tagpath\",\n  \"smoke\": {},\n  \"config\": {{\"hit_result_bytes\": {}, \"lookup_input_bytes\": {}}},\n  \"lanes\": [\n{}\n  ],\n  \"summary\": {{\"hit_speedup\": {:.3}, \"miss_speedup\": {:.3}, \"lookup_speedup\": {:.3}}}\n}}\n",
        smoke,
        HIT_RESULT_LEN,
        LOOKUP_INPUT_LEN,
        lanes.iter().map(Lane::to_json).collect::<Vec<_>>().join(",\n"),
        hit_speedup,
        miss_speedup,
        lookup_speedup,
    );
    std::fs::write("BENCH_tagpath.json", json)?;
    println!("wrote BENCH_tagpath.json");
    Ok(())
}
