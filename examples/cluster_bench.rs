//! Benchmarks the distributed store mode and emits `BENCH_cluster.json`.
//!
//! Two questions, matching `docs/CLUSTER.md`:
//!
//! 1. **Scaling** — what does routing + R = 2 replication cost as the ring
//!    grows from 1 to 3 in-process members? PUT pays one sealed round-trip
//!    per replica (quorum-1 ack, secondary in the same call), GET pays
//!    exactly one regardless of ring size, so PUT throughput should dip
//!    when the ring first reaches R members and GET should stay flat.
//! 2. **Failover latency** — with one member killed, how much does a GET
//!    whose primary is the dead node pay for the failed dial before the
//!    surviving replica answers?
//!
//! Every member is a real `ResultStore` behind an attested in-process
//! channel, so the numbers include sealing/opening and the simulated SGX
//! transition costs — the same stack the integration tests drive.
//!
//! ```text
//! cargo run --release --example cluster_bench            # full run
//! cargo run --release --example cluster_bench -- --smoke # CI smoke run
//! ```

use std::sync::Arc;
use std::time::Duration;

use speed_core::{
    BreakerConfig, ClusterClient, ClusterConfig, Connector, CoreError, InProcessClient,
    NodeId, OutageSwitch, ResilienceConfig, RetryPolicy, StoreClient, SwitchedClient,
};
use speed_enclave::{CostModel, Platform};
use speed_store::{QuotaPolicy, ResultStore, StoreConfig};
use speed_wire::{AppId, CompTag, Message, Record, SessionAuthority};

const APP: AppId = AppId(0xBE7C);
const NODE_COUNTS: [u32; 3] = [1, 2, 3];
const RECORD_LEN: usize = 256;

fn tag(i: u64) -> CompTag {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&i.to_le_bytes());
    bytes[8] = 0xB5;
    CompTag::from_bytes(bytes)
}

fn record(fill: u8) -> Record {
    Record {
        challenge: vec![fill; 32],
        wrapped_key: [fill; 16],
        nonce: [fill; 12],
        boxed_result: vec![fill; RECORD_LEN],
    }
}

fn node_resilience() -> ResilienceConfig {
    ResilienceConfig {
        retry: RetryPolicy::none(),
        breaker: BreakerConfig {
            failure_threshold: 1_000_000,
            cooldown: Duration::from_millis(1),
        },
        call_budget: Duration::from_secs(5),
        replay_capacity: 1,
        jitter_seed: Some(0xB5),
    }
}

struct Cluster {
    client: ClusterClient,
    switches: Vec<Arc<OutageSwitch>>,
}

fn build_cluster(nodes: u32) -> Cluster {
    let platform = Platform::new(CostModel::default_sgx());
    let authority = Arc::new(SessionAuthority::with_seed(0xBE7C));
    let enclave = platform.create_enclave(b"cluster-bench").unwrap();
    let mut builder = ClusterClient::builder(ClusterConfig {
        node_resilience: node_resilience(),
        ..ClusterConfig::default()
    });
    let mut switches = Vec::new();
    for id in 0..nodes {
        let store = Arc::new(
            ResultStore::new(
                &platform,
                StoreConfig { quota: QuotaPolicy::unlimited(), ..StoreConfig::default() },
            )
            .unwrap(),
        );
        let switch = Arc::new(OutageSwitch::new());
        let connector: Connector = {
            let switch = Arc::clone(&switch);
            let authority = Arc::clone(&authority);
            let platform = Arc::clone(&platform);
            let enclave = Arc::clone(&enclave);
            Box::new(move || {
                if switch.is_down() {
                    return Err(CoreError::StoreUnavailable("node is down".into()));
                }
                let inner = InProcessClient::connect(
                    Arc::clone(&store),
                    &authority,
                    &platform,
                    &enclave,
                )?;
                Ok(Box::new(SwitchedClient::new(Box::new(inner), Arc::clone(&switch)))
                    as Box<dyn StoreClient>)
            })
        };
        builder = builder.node(id, connector);
        switches.push(switch);
    }
    Cluster { client: builder.build().unwrap(), switches }
}

struct Run {
    nodes: u32,
    put_kops: f64,
    put_wall_ms: f64,
    get_kops: f64,
    get_wall_ms: f64,
}

impl Run {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"nodes\": {}, \"put_kops_per_sec\": {:.1}, ",
                "\"put_wall_ms\": {:.3}, \"get_kops_per_sec\": {:.1}, ",
                "\"get_wall_ms\": {:.3}}}"
            ),
            self.nodes, self.put_kops, self.put_wall_ms, self.get_kops, self.get_wall_ms,
        )
    }
}

fn run_scaling(nodes: u32, ops: u64) -> Run {
    let mut cluster = build_cluster(nodes);

    let put_start = std::time::Instant::now();
    for i in 0..ops {
        let response = cluster
            .client
            .roundtrip(&Message::PutRequest { app: APP, tag: tag(i), record: record(7) })
            .unwrap();
        assert!(matches!(response, Message::PutResponse(ref b) if b.accepted));
    }
    let put_wall = put_start.elapsed().as_secs_f64();

    let get_start = std::time::Instant::now();
    for i in 0..ops {
        let response = cluster
            .client
            .roundtrip(&Message::GetRequest { app: APP, tag: tag(i) })
            .unwrap();
        assert!(matches!(response, Message::GetResponse(ref b) if b.found));
    }
    let get_wall = get_start.elapsed().as_secs_f64();

    Run {
        nodes,
        put_kops: ops as f64 / put_wall / 1e3,
        put_wall_ms: put_wall * 1e3,
        get_kops: ops as f64 / get_wall / 1e3,
        get_wall_ms: get_wall * 1e3,
    }
}

struct Failover {
    baseline_get_us: f64,
    failover_get_us: f64,
    first_failover_us: f64,
    penalty_factor: f64,
}

/// Kills one member of a warmed 3-node ring and times GETs whose primary
/// is the dead node (each pays the failed dial + failover) against GETs on
/// the same tags while the ring was healthy.
fn run_failover(ops: u64) -> Failover {
    let mut cluster = build_cluster(3);
    for i in 0..ops {
        let response = cluster
            .client
            .roundtrip(&Message::PutRequest { app: APP, tag: tag(i), record: record(9) })
            .unwrap();
        assert!(matches!(response, Message::PutResponse(ref b) if b.accepted));
    }
    let victim = NodeId(0);
    let victim_tags: Vec<u64> =
        (0..ops).filter(|&i| cluster.client.replicas_of(&tag(i))[0] == victim).collect();
    assert!(!victim_tags.is_empty(), "no tags owned by the victim node");

    let healthy_start = std::time::Instant::now();
    for &i in &victim_tags {
        let response = cluster
            .client
            .roundtrip(&Message::GetRequest { app: APP, tag: tag(i) })
            .unwrap();
        assert!(matches!(response, Message::GetResponse(ref b) if b.found));
    }
    let baseline_us =
        healthy_start.elapsed().as_secs_f64() * 1e6 / victim_tags.len() as f64;

    cluster.switches[0].set_down(true);
    let mut first_us = 0.0;
    let failover_start = std::time::Instant::now();
    for (n, &i) in victim_tags.iter().enumerate() {
        let one = std::time::Instant::now();
        let response = cluster
            .client
            .roundtrip(&Message::GetRequest { app: APP, tag: tag(i) })
            .unwrap();
        assert!(matches!(response, Message::GetResponse(ref b) if b.found));
        if n == 0 {
            first_us = one.elapsed().as_secs_f64() * 1e6;
        }
    }
    let failover_us =
        failover_start.elapsed().as_secs_f64() * 1e6 / victim_tags.len() as f64;

    Failover {
        baseline_get_us: baseline_us,
        failover_get_us: failover_us,
        first_failover_us: first_us,
        penalty_factor: failover_us / baseline_us.max(1e-9),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let ops: u64 = if smoke { 512 } else { 8192 };

    println!(
        "cluster bench: {ops} ops/phase, record {RECORD_LEN} B, R = 2 replication, \
         rings of {NODE_COUNTS:?} in-process members{}",
        if smoke { " [smoke]" } else { "" },
    );

    // Warmup run so no measured ring pays first-allocation costs.
    let _ = run_scaling(1, ops.min(256));

    let runs: Vec<Run> = NODE_COUNTS.iter().map(|&n| run_scaling(n, ops)).collect();
    for run in &runs {
        println!(
            "  nodes={} put {:>8.1} kops ({:>8.3} ms)  get {:>8.1} kops ({:>8.3} ms)",
            run.nodes, run.put_kops, run.put_wall_ms, run.get_kops, run.get_wall_ms,
        );
    }

    let failover = run_failover(ops.min(2048));
    println!(
        "  failover: healthy GET {:.1} us, failover GET {:.1} us \
         ({:.2}x, first {:.1} us)",
        failover.baseline_get_us,
        failover.failover_get_us,
        failover.penalty_factor,
        failover.first_failover_us,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"cluster_scaling\",\n",
            "  \"methodology\": \"wall-clock through ClusterClient over attested ",
            "in-process members (simulated SGX transition costs included); PUT ",
            "replicates to min(R, nodes) members per call, GET reads one replica; ",
            "failover = GETs whose primary is a killed member, paying the failed ",
            "dial before the surviving replica answers\",\n",
            "  \"config\": {{\"ops_per_phase\": {}, \"record_bytes\": {}, ",
            "\"replication\": 2, \"smoke\": {}}},\n",
            "  \"runs\": [\n{}\n  ],\n",
            "  \"failover\": {{\"baseline_get_us\": {:.1}, \"failover_get_us\": {:.1}, ",
            "\"first_failover_us\": {:.1}, \"penalty_factor\": {:.2}}}\n",
            "}}\n"
        ),
        ops,
        RECORD_LEN,
        smoke,
        runs.iter().map(Run::to_json).collect::<Vec<_>>().join(",\n"),
        failover.baseline_get_us,
        failover.failover_get_us,
        failover.first_failover_us,
        failover.penalty_factor,
    );
    std::fs::write("BENCH_cluster.json", &json)?;
    println!("wrote BENCH_cluster.json");
    Ok(())
}
