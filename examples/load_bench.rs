//! Open-loop load benchmark: seeded arrival schedules from
//! `speed_testkit::load` driven through the full dedup stack, emitting
//! `BENCH_load.json`.
//!
//! Three questions:
//!
//! 1. **Tail latency under load** — with Poisson arrivals and
//!    Zipf-popular inputs at a configurable hit ratio, what are
//!    p50/p99/p999 open-loop latencies (completion minus *scheduled*
//!    arrival, so queueing delay counts) for each workload × topology?
//! 2. **Saturation throughput** — stepping the offered rate over the
//!    same measured service times, where does completion throughput stop
//!    tracking the offered rate?
//! 3. **Streaming vs whole-call** — on a partial-overlap corpus where no
//!    two documents are byte-identical, whole-call dedup scores zero
//!    hits; how many chunk-level hits does `execute_stream` recover?
//!
//! Methodology: each request executes once, sequentially, against a real
//! runtime (attested in-process channel, simulated SGX transition costs),
//! recording its service time. The arrival schedule is then replayed
//! through a deterministic G/G/c queue (`replay_open_loop`), which makes
//! the percentiles a pure function of the seed and the measured service
//! times — no wall-clock pacing, so the numbers are CI-stable in shape.
//!
//! ```text
//! cargo run --release --example load_bench            # full run
//! cargo run --release --example load_bench -- --smoke # CI smoke run
//! ```

use std::sync::Arc;
use std::time::Instant;

use speed_core::{
    BreakerConfig, ClusterClient, ClusterConfig, Connector, DedupRuntime, FuncDesc,
    InProcessClient, ResilienceConfig, RetryPolicy, StoreClient, StreamConfig,
    TrustedLibrary,
};
use speed_enclave::{CostModel, Platform};
use speed_store::{QuotaPolicy, ResultStore, StoreConfig};
use speed_testkit::load::{replay_open_loop, LoadConfig, LoadSchedule};
use speed_wire::SessionAuthority;
use speed_workloads::{overlap_corpus, pages, text, OverlapConfig};

const SEED: u64 = 0x10AD_5EED;
const WORKERS: usize = 4;
const HIT_RATIOS: [f64; 2] = [0.2, 0.8];

fn library() -> TrustedLibrary {
    let mut lib = TrustedLibrary::new("loadlib", "1.0");
    lib.register("bytes deflate(bytes)", b"deflate code");
    lib.register("bytes scan(bytes)", b"scan code");
    lib
}

/// Compression: the paper's zlib workload, applied per call (and, in the
/// streaming arm, per chunk — chunk-local framing).
fn deflate(input: &[u8]) -> Vec<u8> {
    speed_deflate::compress(input, speed_deflate::Level::Default)
}

/// A cheap content scan standing in for rule matching: byte histogram
/// plus a rolling checksum, so hit latency and miss latency differ less
/// starkly than under compression.
fn scan(input: &[u8]) -> Vec<u8> {
    let mut histogram = [0u32; 16];
    let mut checksum: u64 = 0xCBF2_9CE4_8422_2325;
    for &byte in input {
        histogram[usize::from(byte) & 0xF] += 1;
        checksum = (checksum ^ u64::from(byte)).wrapping_mul(0x100_0000_01B3);
    }
    let mut out = Vec::with_capacity(16 * 4 + 8);
    for count in histogram {
        out.extend_from_slice(&count.to_le_bytes());
    }
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

struct Workload {
    name: &'static str,
    desc: FuncDesc,
    compute: fn(&[u8]) -> Vec<u8>,
    corpus: Vec<Vec<u8>>,
}

fn workloads(inputs: usize) -> Vec<Workload> {
    let texts = text::text_corpus(inputs, 8 * 1024, SEED ^ 0x7E27);
    let page_docs: Vec<Vec<u8>> = pages::page_corpus(inputs, 300, SEED ^ 0x9A9E)
        .into_iter()
        .map(String::into_bytes)
        .collect();
    vec![
        Workload {
            name: "compress_text",
            desc: FuncDesc::new("loadlib", "1.0", "bytes deflate(bytes)"),
            compute: deflate,
            corpus: texts,
        },
        Workload {
            name: "scan_pages",
            desc: FuncDesc::new("loadlib", "1.0", "bytes scan(bytes)"),
            compute: scan,
            corpus: page_docs,
        },
    ]
}

fn store_config() -> StoreConfig {
    StoreConfig { quota: QuotaPolicy::unlimited(), ..StoreConfig::default() }
}

fn single_runtime(platform: &Arc<Platform>, code: &[u8]) -> Arc<DedupRuntime> {
    let authority = Arc::new(SessionAuthority::with_seed(SEED));
    let store = Arc::new(ResultStore::new(platform, store_config()).unwrap());
    DedupRuntime::builder(Arc::clone(platform), code)
        .in_process_store(store, authority)
        .trusted_library(library())
        .build()
        .unwrap()
}

fn cluster_runtime(platform: &Arc<Platform>, code: &[u8]) -> Arc<DedupRuntime> {
    let authority = Arc::new(SessionAuthority::with_seed(SEED ^ 3));
    let enclave = platform.create_enclave(b"load-bench-cluster").unwrap();
    let mut builder = ClusterClient::builder(ClusterConfig {
        node_resilience: ResilienceConfig {
            retry: RetryPolicy::none(),
            breaker: BreakerConfig {
                failure_threshold: 1_000_000,
                cooldown: std::time::Duration::from_millis(1),
            },
            ..ResilienceConfig::default()
        },
        ..ClusterConfig::default()
    });
    for id in 0..3u32 {
        let store = Arc::new(ResultStore::new(platform, store_config()).unwrap());
        let connector: Connector = {
            let authority = Arc::clone(&authority);
            let platform = Arc::clone(platform);
            let enclave = Arc::clone(&enclave);
            Box::new(move || {
                let inner = InProcessClient::connect(
                    Arc::clone(&store),
                    &authority,
                    &platform,
                    &enclave,
                )?;
                Ok(Box::new(inner) as Box<dyn StoreClient>)
            })
        };
        builder = builder.node(id, connector);
    }
    DedupRuntime::builder(Arc::clone(platform), code)
        .cluster_store(builder.build().unwrap())
        .trusted_library(library())
        .build()
        .unwrap()
}

struct Run {
    workload: &'static str,
    topology: &'static str,
    hit_ratio: f64,
    observed_repeat_ratio: f64,
    observed_hit_rate: f64,
    offered_kops: f64,
    throughput_kops: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    max_us: f64,
    saturation_kops: f64,
}

impl Run {
    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"workload\": \"{}\", \"topology\": \"{}\", ",
                "\"hit_ratio\": {:.2}, \"observed_repeat_ratio\": {:.3}, ",
                "\"observed_hit_rate\": {:.3}, \"offered_kops\": {:.2}, ",
                "\"throughput_kops\": {:.2}, \"p50_us\": {:.1}, ",
                "\"p99_us\": {:.1}, \"p999_us\": {:.1}, \"max_us\": {:.1}, ",
                "\"saturation_kops\": {:.2}}}"
            ),
            self.workload,
            self.topology,
            self.hit_ratio,
            self.observed_repeat_ratio,
            self.observed_hit_rate,
            self.offered_kops,
            self.throughput_kops,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.max_us,
            self.saturation_kops,
        )
    }
}

/// Rescales a schedule's arrival instants to a different offered rate.
fn scale_arrivals(arrivals_ns: &[u64], factor: f64) -> Vec<u64> {
    arrivals_ns.iter().map(|&a| (a as f64 / factor).round() as u64).collect()
}

/// Steps the offered rate over the measured service times until the queue
/// saturates; returns the highest sustained completion throughput (ops/s).
fn saturation_sweep(arrivals_ns: &[u64], service_ns: &[u64]) -> f64 {
    let mut best = 0.0f64;
    // Factors are relative to the schedule's own offered rate; the top
    // steps push far past any plausible capacity so the max is a true
    // saturation plateau.
    for factor in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let scaled = scale_arrivals(arrivals_ns, factor);
        let report = replay_open_loop(&scaled, service_ns, WORKERS);
        best = best.max(report.throughput);
    }
    best
}

fn run_one(
    platform: &Arc<Platform>,
    workload: &Workload,
    topology: &'static str,
    hit_ratio: f64,
    requests: usize,
) -> Run {
    let rt = match topology {
        "single" => single_runtime(platform, workload.name.as_bytes()),
        _ => cluster_runtime(platform, workload.name.as_bytes()),
    };
    let identity = rt.resolve(&workload.desc).unwrap();

    let schedule = LoadSchedule::generate(LoadConfig {
        seed: SEED ^ (hit_ratio.to_bits().rotate_left(7)) ^ workload.name.len() as u64,
        rate_per_sec: 10_000.0,
        requests,
        users: 64,
        inputs: workload.corpus.len(),
        zipf_s: 1.0,
        hit_ratio,
    });

    // Execute every request once, sequentially, recording service times.
    let mut service_ns = Vec::with_capacity(requests);
    for request in schedule.requests() {
        let input = &workload.corpus[request.input % workload.corpus.len()];
        let start = Instant::now();
        let (_result, _outcome) =
            rt.execute_raw(&identity, input, workload.compute).unwrap();
        service_ns.push(start.elapsed().as_nanos() as u64);
    }
    let stats = rt.stats();
    let observed_hit_rate = stats.hits as f64 / stats.calls.max(1) as f64;

    // Replay the arrivals at ~70% of measured capacity for the reported
    // percentiles (an overloaded run would only measure queue growth),
    // then sweep rates for the saturation point.
    let arrivals = schedule.arrivals_ns();
    let mean_service = service_ns.iter().map(|&v| u128::from(v)).sum::<u128>()
        / service_ns.len() as u128;
    let capacity = WORKERS as f64 * 1e9 / mean_service as f64;
    let base = replay_open_loop(&arrivals, &service_ns, WORKERS);
    let target = scale_arrivals(&arrivals, 0.7 * capacity / base.offered_rate);
    let report = replay_open_loop(&target, &service_ns, WORKERS);
    let saturation = saturation_sweep(&arrivals, &service_ns);

    Run {
        workload: workload.name,
        topology,
        hit_ratio,
        observed_repeat_ratio: schedule.observed_repeat_ratio(),
        observed_hit_rate,
        offered_kops: report.offered_rate / 1e3,
        throughput_kops: report.throughput / 1e3,
        p50_us: report.latency.p50_ns as f64 / 1e3,
        p99_us: report.latency.p99_ns as f64 / 1e3,
        p999_us: report.latency.p999_ns as f64 / 1e3,
        max_us: report.latency.max_ns as f64 / 1e3,
        saturation_kops: saturation / 1e3,
    }
}

struct StreamingRun {
    documents: usize,
    overlap: f64,
    whole_hit_rate: f64,
    chunk_hit_rate: f64,
    chunks: u64,
    chunk_hits: u64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

/// The separating workload: pairwise-distinct documents with shared
/// segments. Whole-call dedup scores zero; chunk-level dedup recovers the
/// overlap.
fn run_streaming(platform: &Arc<Platform>, documents: usize) -> StreamingRun {
    let overlap = 0.5;
    let corpus = overlap_corpus(
        OverlapConfig {
            documents,
            segments_per_document: 8,
            segment_bytes: 4096,
            shared_pool: 12,
            overlap,
        },
        SEED ^ 0x57E2,
    );
    let desc = FuncDesc::new("loadlib", "1.0", "bytes deflate(bytes)");

    let whole_rt = single_runtime(platform, b"load-whole");
    let whole_id = whole_rt.resolve(&desc).unwrap();
    for document in &corpus {
        let _ = whole_rt.execute_raw(&whole_id, document, deflate).unwrap();
    }
    let whole_stats = whole_rt.stats();
    let whole_hit_rate = whole_stats.hits as f64 / whole_stats.calls.max(1) as f64;

    let stream_rt = single_runtime(platform, b"load-stream");
    let stream_id = stream_rt.resolve(&desc).unwrap();
    let mut chunks = 0u64;
    let mut chunk_hits = 0u64;
    let mut service_ns = Vec::with_capacity(corpus.len());
    for document in &corpus {
        let start = Instant::now();
        let outcome = stream_rt
            .execute_stream(stream_id, StreamConfig::SMALL, document, deflate)
            .unwrap();
        service_ns.push(start.elapsed().as_nanos() as u64);
        chunks += outcome.stats.chunks;
        chunk_hits += outcome.stats.chunk_hits;
    }
    // One streamed document per "request", paced at 200 docs/s.
    let arrivals: Vec<u64> = (0..corpus.len() as u64).map(|i| i * 5_000_000).collect();
    let report = replay_open_loop(&arrivals, &service_ns, WORKERS);

    StreamingRun {
        documents,
        overlap,
        whole_hit_rate,
        chunk_hit_rate: chunk_hits as f64 / chunks.max(1) as f64,
        chunks,
        chunk_hits,
        p50_us: report.latency.p50_ns as f64 / 1e3,
        p99_us: report.latency.p99_ns as f64 / 1e3,
        p999_us: report.latency.p999_ns as f64 / 1e3,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let requests: usize = if smoke { 300 } else { 4_000 };
    // The fresh-input pool must exceed requests x (1 - hit_ratio) or pool
    // exhaustion forces repeats and every run converges to the same
    // observed hit rate, whatever the configured ratio.
    let inputs: usize = (requests as f64 * (1.0 - HIT_RATIOS[0]) * 1.25).ceil() as usize;
    let documents: usize = if smoke { 8 } else { 32 };

    let platform = Platform::new(CostModel::default_sgx());
    println!(
        "load bench: {requests} requests/run, {inputs} distinct inputs, \
         {WORKERS} replay workers, hit ratios {HIT_RATIOS:?}{}",
        if smoke { " [smoke]" } else { "" },
    );

    let loads = workloads(inputs);
    // Warmup: first-allocation and page-fault costs land here, not in runs.
    let _ = run_one(&platform, &loads[0], "single", 0.5, requests.min(64));

    let mut runs = Vec::new();
    for workload in &loads {
        for &hit_ratio in &HIT_RATIOS {
            for topology in ["single", "cluster3"] {
                let run = run_one(&platform, workload, topology, hit_ratio, requests);
                println!(
                    "  {:>13} {:>8} hit={:.1} -> observed_hits={:.2} \
                     p50={:>8.1}us p99={:>8.1}us p999={:>8.1}us sat={:>8.2}kops",
                    run.workload,
                    run.topology,
                    run.hit_ratio,
                    run.observed_hit_rate,
                    run.p50_us,
                    run.p99_us,
                    run.p999_us,
                    run.saturation_kops,
                );
                runs.push(run);
            }
        }
    }

    let streaming = run_streaming(&platform, documents);
    println!(
        "  streaming overlap: whole-call hits {:.2}, chunk hits {}/{} ({:.2}), \
         p50={:.1}us p99={:.1}us",
        streaming.whole_hit_rate,
        streaming.chunk_hits,
        streaming.chunks,
        streaming.chunk_hit_rate,
        streaming.p50_us,
        streaming.p99_us,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"open_loop_load\",\n",
            "  \"methodology\": \"seeded Poisson arrivals with Zipf-popular inputs; ",
            "each request executes once sequentially against the real stack ",
            "(attested in-process channel, simulated SGX transition costs) to ",
            "measure service time, then the schedule replays through a ",
            "deterministic G/G/c queue so percentiles count queueing delay from ",
            "the scheduled arrival; saturation = max sustained throughput over a ",
            "rate sweep of the same service times\",\n",
            "  \"config\": {{\"seed\": \"0x10AD5EED\", \"requests\": {}, ",
            "\"inputs\": {}, \"workers\": {}, \"smoke\": {}}},\n",
            "  \"runs\": [\n{}\n  ],\n",
            "  \"streaming\": {{\"workload\": \"overlap_stream\", ",
            "\"documents\": {}, \"overlap\": {:.2}, \"whole_call_hit_rate\": {:.3}, ",
            "\"chunk_hit_rate\": {:.3}, \"chunks\": {}, \"chunk_hits\": {}, ",
            "\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}}}\n",
            "}}\n"
        ),
        requests,
        inputs,
        WORKERS,
        smoke,
        runs.iter().map(Run::to_json).collect::<Vec<_>>().join(",\n"),
        streaming.documents,
        streaming.overlap,
        streaming.whole_hit_rate,
        streaming.chunk_hit_rate,
        streaming.chunks,
        streaming.chunk_hits,
        streaming.p50_us,
        streaming.p99_us,
        streaming.p999_us,
    );
    std::fs::write("BENCH_load.json", &json)?;
    println!("wrote BENCH_load.json");

    // The separating claim the docs cite: whole-call scores (near) zero on
    // this corpus while the chunked stream recovers real hits.
    assert!(
        streaming.whole_hit_rate == 0.0,
        "overlap corpus documents must be pairwise distinct"
    );
    assert!(
        streaming.chunk_hit_rate > 0.1,
        "chunk-level dedup must recover overlap (got {:.3})",
        streaming.chunk_hit_rate
    );
    Ok(())
}
