//! Quickstart: make a function deduplicable in 2 lines and watch the
//! second call skip execution.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use speed_core::{DedupRuntime, Deduplicable, FuncDesc, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::SessionAuthority;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Platform setup: one SGX machine, one encrypted ResultStore. ---
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default())?);
    let authority = Arc::new(SessionAuthority::new());

    // The application ships a trusted library whose code the runtime can
    // verify (the paper's §IV-B description/verification step).
    let mut mathlib = TrustedLibrary::new("mathlib", "1.0.0");
    mathlib.register("u64 slow_fib(u64)", b"fn slow_fib(n) { naive recursion }");

    let runtime = DedupRuntime::builder(Arc::clone(&platform), b"quickstart-app")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(mathlib)
        .build()?;

    // --- The 2-line change (paper §IV-C): describe + wrap. -------------
    let desc = FuncDesc::new("mathlib", "1.0.0", "u64 slow_fib(u64)");
    let dedup_fib = Deduplicable::new(&runtime, desc, |n: &u64| slow_fib(*n))?;

    // --- Use the wrapped function as normal. ----------------------------
    let start = std::time::Instant::now();
    let first = dedup_fib.call(&34)?;
    let initial_time = start.elapsed();

    let start = std::time::Instant::now();
    let second = dedup_fib.call(&34)?;
    let subsequent_time = start.elapsed();

    assert_eq!(first, second);
    println!("slow_fib(34) = {first}");
    println!("initial computation:    {initial_time:?} (executed + published)");
    println!("subsequent computation: {subsequent_time:?} (reused from store)");
    println!(
        "speedup: {:.0}x",
        initial_time.as_secs_f64() / subsequent_time.as_secs_f64().max(1e-9)
    );

    let stats = runtime.stats();
    println!(
        "runtime stats: {} calls, {} hits, {} misses, {} result bytes reused",
        stats.calls, stats.hits, stats.misses, stats.reused_bytes
    );
    let store_stats = store.stats();
    println!(
        "store stats: {} entries, {} gets ({} hits), {} puts",
        store_stats.entries, store_stats.gets, store_stats.hits, store_stats.puts
    );

    // Machine-readable exit dump: every metric the process touched, one
    // JSON object per line (see docs/METRICS.md for the name reference).
    store.sync_telemetry();
    println!("--- telemetry (jsonl) ---");
    print!("{}", speed_telemetry::global().snapshot().render_jsonl());
    Ok(())
}

fn slow_fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        slow_fib(n - 1) + slow_fib(n - 2)
    }
}
