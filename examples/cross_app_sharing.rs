//! Cross-application sharing and its security boundary.
//!
//! Demonstrates the heart of the paper's §III-C design: two *different*
//! applications that own the same trusted library and input share one
//! stored result without any pre-shared key — while an application whose
//! library code differs cannot decrypt it, even though it can observe the
//! ciphertext and all metadata outside the enclave.
//!
//! ```text
//! cargo run --release --example cross_app_sharing
//! ```

use std::sync::Arc;

use speed_core::{DedupOutcome, DedupRuntime, FuncDesc, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::SessionAuthority;

fn genuine_library() -> TrustedLibrary {
    let mut lib = TrustedLibrary::new("zlib", "1.2.11");
    lib.register("int deflate(...)", b"genuine deflate code v1.2.11");
    lib
}

fn trojaned_library() -> TrustedLibrary {
    // Same name, same version, same signature — different code.
    let mut lib = TrustedLibrary::new("zlib", "1.2.11");
    lib.register("int deflate(...)", b"trojaned deflate code");
    lib
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default())?);
    let authority = Arc::new(SessionAuthority::new());
    let desc = FuncDesc::new("zlib", "1.2.11", "int deflate(...)");
    let input = b"confidential corpus shared across applications".to_vec();

    let build = |code: &[u8], library: TrustedLibrary| {
        DedupRuntime::builder(Arc::clone(&platform), code)
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library)
            .build()
            .expect("runtime")
    };

    // Application A performs the initial computation.
    let app_a = build(b"application-a", genuine_library());
    let identity_a = app_a.resolve(&desc)?;
    let (result_a, outcome_a) = app_a.execute_raw(&identity_a, &input, |data| {
        speed_deflate::compress(data, speed_deflate::Level::Default)
    })?;
    println!("app A: {outcome_a:?} -> {} compressed bytes published", result_a.len());

    // Application B — a different enclave, different binary — performs the
    // identical computation and reuses A's result with NO shared key.
    let app_b = build(b"application-b", genuine_library());
    let identity_b = app_b.resolve(&desc)?;
    let (result_b, outcome_b) =
        app_b.execute_raw(&identity_b, &input, |_| panic!("app B must not recompute"))?;
    assert_eq!(outcome_b, DedupOutcome::Hit);
    assert_eq!(result_a, result_b);
    println!("app B: {outcome_b:?} -> reused A's result (keyless RCE recovery)");

    // Application M claims the same library but its code differs — its
    // function identity differs, so its tag differs and it can never even
    // address A's entry; and were it handed the record, key recovery would
    // fail (Fig. 3).
    let app_m = build(b"application-m", trojaned_library());
    let identity_m = app_m.resolve(&desc)?;
    let (_, outcome_m) = app_m.execute_raw(&identity_m, &input, |data| {
        speed_deflate::compress(data, speed_deflate::Level::Default)
    })?;
    assert_eq!(outcome_m, DedupOutcome::Miss);
    println!("app M (different code): {outcome_m:?} -> no access to A/B's result");

    // The store never saw plaintext: every stored byte outside the enclave
    // is AES-GCM ciphertext.
    let stats = store.stats();
    println!(
        "store holds {} entries / {} ciphertext bytes; it learned only tag equality",
        stats.entries, stats.stored_bytes
    );
    Ok(())
}
