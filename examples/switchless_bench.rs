//! Benchmarks the event-loop server's switchless call path and its idle
//! connection scaling, and emits `BENCH_switchless.json`.
//!
//! Two questions, matching the tentpole claims:
//!
//! 1. **World switches per hot-path op.** A client drives GETs over TCP
//!    against a switchless server and a classic (per-request ECALL)
//!    server. The store enclave's own transition counter answers
//!    directly: the switchless path must show **zero** transitions per
//!    op (the resident worker entered once at startup), while the
//!    classic path pays per request. The modeled enclave time
//!    (`charged_ns`, the simulation's logical SGX clock) shows what
//!    those switches cost — the paper's motivation for switchless calls.
//!
//! 2. **Connection scaling on a fixed thread budget.** The old design
//!    spawned one thread per connection; N idle clients held N threads.
//!    The event loop multiplexes every connection over `io_threads`
//!    poll(2) loops, so the thread count stays constant while idle
//!    connections ramp into the thousands. For each ramp step the bench
//!    holds K idle attested connections, verifies the server's thread
//!    count did not move, and measures an active client's request
//!    latency through the crowd.
//!
//! Wall-clock numbers are honest but noisy on single-core CI hosts;
//! `charged_ns` and the transition counters are deterministic and carry
//! the claims. See EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example switchless_bench            # full run
//! cargo run --release --example switchless_bench -- --smoke # CI smoke
//! ```

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use speed_enclave::{CostModel, Platform};
use speed_store::server::{ServerConfig, StoreServer, TcpStoreClient};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::{AppId, CompTag, Message, Record, SessionAuthority};

const RECORD_LEN: usize = 256;

struct World {
    platform: Arc<Platform>,
    store: Arc<ResultStore>,
    authority: Arc<SessionAuthority>,
    server: StoreServer,
}

fn world_with(switchless: bool, max_connections: usize) -> World {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(
        ResultStore::new(&platform, StoreConfig::default()).expect("store fits"),
    );
    let authority = Arc::new(SessionAuthority::with_seed(0xBE));
    let server = StoreServer::spawn_with_config(
        Arc::clone(&store),
        Arc::clone(&platform),
        Arc::clone(&authority),
        "127.0.0.1:0",
        ServerConfig { switchless, max_connections, ..ServerConfig::default() },
    )
    .expect("bind");
    World { platform, store, authority, server }
}

fn world(switchless: bool) -> World {
    world_with(switchless, ServerConfig::default().max_connections)
}

fn tag(i: usize) -> CompTag {
    let mut bytes = [0xB0u8; 32];
    bytes[..8].copy_from_slice(&(i as u64).to_le_bytes());
    CompTag::from_bytes(bytes)
}

fn record() -> Record {
    Record {
        challenge: vec![0xC5; 32],
        wrapped_key: [0xC6; 16],
        nonce: [0xC7; 12],
        boxed_result: vec![0xC8; RECORD_LEN],
    }
}

struct HotPath {
    variant: &'static str,
    ops: u64,
    transitions_per_op: f64,
    switchless_per_op: f64,
    charged_us_per_op: f64,
    wall_us_per_op: f64,
}

/// Drives `ops` GETs over one connection and attributes the store
/// enclave's counter deltas to them.
fn hot_path(variant: &'static str, switchless: bool, ops: u64) -> HotPath {
    let w = world(switchless);
    let client_enclave =
        w.platform.create_enclave(b"bench-hot-client").expect("client enclave");
    let mut client = TcpStoreClient::connect(
        w.server.addr(),
        &w.platform,
        &client_enclave,
        &w.authority,
    )
    .expect("connect");

    // Warm-up: the PUT seeds the entry and absorbs one-time costs (the
    // resident workers' entry ECALLs land before the measured window).
    let put = client
        .roundtrip(&Message::PutRequest { app: AppId(1), tag: tag(0), record: record() })
        .expect("put");
    assert!(matches!(put, Message::PutResponse(b) if b.accepted));
    client
        .roundtrip(&Message::GetRequest { app: AppId(1), tag: tag(0) })
        .expect("warm get");

    let before = w.store.enclave().stats();
    let start = Instant::now();
    for _ in 0..ops {
        let hit = client
            .roundtrip(&Message::GetRequest { app: AppId(1), tag: tag(0) })
            .expect("get");
        assert!(matches!(hit, Message::GetResponse(b) if b.found));
    }
    let wall = start.elapsed();
    let after = w.store.enclave().stats();

    let result = HotPath {
        variant,
        ops,
        transitions_per_op: (after.transitions() - before.transitions()) as f64
            / ops as f64,
        switchless_per_op: (after.switchless_calls - before.switchless_calls) as f64
            / ops as f64,
        charged_us_per_op: (after.charged_ns - before.charged_ns) as f64
            / 1e3
            / ops as f64,
        wall_us_per_op: wall.as_secs_f64() * 1e6 / ops as f64,
    };
    w.server.shutdown();
    result
}

struct RampStep {
    idle_connections: usize,
    event_loop_threads: usize,
    thread_per_conn_threads: usize,
    ramp_ms: f64,
    active_wall_us_per_op: f64,
    peak_connections: u64,
}

/// Holds `idle` attested connections open and measures an active client
/// working through the crowd.
fn ramp_step(w: &World, idle: usize, ops: u64) -> RampStep {
    let budget = w.server.thread_count();
    let idle_enclave =
        w.platform.create_enclave(b"bench-idle-client").expect("idle enclave");
    let start = Instant::now();
    let holders: Vec<TcpStoreClient> = (0..idle)
        .map(|_| {
            TcpStoreClient::connect(
                w.server.addr(),
                &w.platform,
                &idle_enclave,
                &w.authority,
            )
            .expect("idle connect")
        })
        .collect();
    let ramp = start.elapsed();
    assert_eq!(
        w.server.thread_count(),
        budget,
        "thread budget must not grow with connections"
    );

    let active_enclave =
        w.platform.create_enclave(b"bench-active-client").expect("active enclave");
    let mut active = TcpStoreClient::connect(
        w.server.addr(),
        &w.platform,
        &active_enclave,
        &w.authority,
    )
    .expect("active connect");
    active
        .roundtrip(&Message::PutRequest { app: AppId(2), tag: tag(1), record: record() })
        .expect("seed put");
    let start = Instant::now();
    for _ in 0..ops {
        let hit = active
            .roundtrip(&Message::GetRequest { app: AppId(2), tag: tag(1) })
            .expect("active get");
        assert!(matches!(hit, Message::GetResponse(b) if b.found));
    }
    let wall = start.elapsed();
    let peak = w.server.stats().peak;
    drop(holders);

    RampStep {
        idle_connections: idle,
        event_loop_threads: budget,
        // What the replaced design would have held: one thread per open
        // connection (idle + active), plus the acceptor.
        thread_per_conn_threads: idle + 2,
        ramp_ms: ramp.as_secs_f64() * 1e3,
        active_wall_us_per_op: wall.as_secs_f64() * 1e6 / ops as f64,
        peak_connections: peak,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let hot_ops: u64 = if smoke { 512 } else { 4096 };
    let ramp_steps: &[usize] = if smoke { &[16, 64] } else { &[64, 256, 1024] };
    let ramp_ops: u64 = if smoke { 128 } else { 512 };

    eprintln!("== hot path: transitions per op ==");
    let switchless = hot_path("switchless", true, hot_ops);
    let classic = hot_path("classic_ecall", false, hot_ops);
    for run in [&switchless, &classic] {
        eprintln!(
            "{:>14}: {:.4} transitions/op, {:.2} switchless calls/op, \
             {:.2} enclave µs/op (modeled), {:.1} wall µs/op",
            run.variant,
            run.transitions_per_op,
            run.switchless_per_op,
            run.charged_us_per_op,
            run.wall_us_per_op,
        );
    }
    assert_eq!(
        switchless.transitions_per_op, 0.0,
        "switchless hot path must cross zero enclave boundaries"
    );
    assert!(
        classic.transitions_per_op >= 1.0,
        "classic path pays at least one world switch per op"
    );
    assert!(
        switchless.charged_us_per_op < classic.charged_us_per_op,
        "zero transitions must show up as lower modeled enclave time"
    );

    eprintln!("== idle connection ramp (fixed thread budget) ==");
    // Budget above the deepest ramp step: the question here is thread
    // scaling, not admission control.
    let ramp_world = world_with(true, ramp_steps.iter().max().copied().unwrap_or(0) * 2);
    let steps: Vec<RampStep> =
        ramp_steps.iter().map(|&k| ramp_step(&ramp_world, k, ramp_ops)).collect();
    for step in &steps {
        eprintln!(
            "{:>5} idle conns: {} event-loop threads (vs {} thread-per-conn), \
             ramp {:.1} ms, active client {:.1} µs/op, peak {}",
            step.idle_connections,
            step.event_loop_threads,
            step.thread_per_conn_threads,
            step.ramp_ms,
            step.active_wall_us_per_op,
            step.peak_connections,
        );
    }
    ramp_world.server.shutdown();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"switchless_event_loop\",\n");
    json.push_str(
        "  \"methodology\": \"transitions/op and charged_ns from the store \
         enclave's deterministic counters (simulated-SGX logical clock); the \
         switchless path must show 0 transitions/op; connection ramp holds K \
         idle attested connections and asserts the server thread count is \
         constant (event loop) vs K+2 (replaced thread-per-connection \
         design); wall-clock reported alongside\",\n",
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"hot_ops\": {hot_ops}, \"ramp_ops\": {ramp_ops}, \
         \"record_bytes\": {RECORD_LEN}, \"host_cpus\": {}, \"smoke\": {smoke}}},",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    json.push_str("  \"hot_path\": [\n");
    for (i, run) in [&switchless, &classic].into_iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"variant\": \"{}\", \"ops\": {}, \"transitions_per_op\": {:.4}, \
             \"switchless_calls_per_op\": {:.2}, \"enclave_us_per_op\": {:.3}, \
             \"wall_us_per_op\": {:.1}}}{}",
            run.variant,
            run.ops,
            run.transitions_per_op,
            run.switchless_per_op,
            run.charged_us_per_op,
            run.wall_us_per_op,
            if i == 0 { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"connection_ramp\": [\n");
    for (i, step) in steps.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"idle_connections\": {}, \"event_loop_threads\": {}, \
             \"thread_per_conn_threads\": {}, \"ramp_ms\": {:.1}, \
             \"active_wall_us_per_op\": {:.1}, \"peak_connections\": {}}}{}",
            step.idle_connections,
            step.event_loop_threads,
            step.thread_per_conn_threads,
            step.ramp_ms,
            step.active_wall_us_per_op,
            step.peak_connections,
            if i + 1 == steps.len() { "" } else { "," },
        );
    }
    json.push_str("  ],\n");
    let largest = steps.last().expect("at least one ramp step");
    let _ = writeln!(
        json,
        "  \"headline\": {{\"switchless_transitions_per_op\": {:.4}, \
         \"classic_transitions_per_op\": {:.4}, \
         \"modeled_enclave_time_factor\": {:.2}, \
         \"max_idle_connections\": {}, \"fixed_thread_budget\": {}, \
         \"thread_per_conn_equivalent\": {}}}",
        switchless.transitions_per_op,
        classic.transitions_per_op,
        classic.charged_us_per_op / switchless.charged_us_per_op.max(f64::EPSILON),
        largest.idle_connections,
        largest.event_loop_threads,
        largest.thread_per_conn_threads,
    );
    json.push_str("}\n");

    std::fs::write("BENCH_switchless.json", &json).expect("write BENCH_switchless.json");
    eprintln!("wrote BENCH_switchless.json");
}
