//! A cloud virus-scanner: the paper's motivating scenario where "pattern
//! matching may occur repeatedly over redundant files in an online virus
//! scanner" (VirusTotal-style).
//!
//! Thousands of Snort-like rules scan packet batches submitted by users;
//! many batches are resubmissions of content the scanner has already seen,
//! so the marked `pcre_exec` computation deduplicates heavily.
//!
//! ```text
//! cargo run --release --example virus_scanner
//! ```

use std::sync::Arc;
use std::time::Instant;

use speed_core::{DedupRuntime, Deduplicable, FuncDesc, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_matcher::RuleSet;
use speed_store::{ResultStore, StoreConfig};
use speed_wire::SessionAuthority;
use speed_workloads::{packets, rules, RequestStream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default())?);
    let authority = Arc::new(SessionAuthority::new());

    // Rule set: 1,000 literal + 50 regex rules (scaled-down Snort set).
    let rule_corpus = rules::rule_corpus(1000, 50, 7);
    let signatures = rules::signatures(&rule_corpus);
    let ruleset = Arc::new(RuleSet::compile(rule_corpus)?);
    println!("compiled {} detection rules", ruleset.len());

    let mut pcre = TrustedLibrary::new("libpcre", "8.40");
    pcre.register("int pcre_exec(...)", b"speed-matcher rules-v1");

    let runtime = DedupRuntime::builder(Arc::clone(&platform), b"virus-scanner")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(pcre)
        .build()?;

    let scan_rules = Arc::clone(&ruleset);
    let scanner = Deduplicable::new(
        &runtime,
        FuncDesc::new("libpcre", "8.40", "int pcre_exec(...)"),
        move |batch: &Vec<u8>| -> Vec<u8> {
            // Scan a framed packet batch; return (count, [rule ids]).
            let mut alerts = Vec::new();
            let mut pos = 0usize;
            while pos + 4 <= batch.len() {
                let len =
                    u32::from_le_bytes(batch[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 4;
                let end = (pos + len).min(batch.len());
                for matched in scan_rules.scan(&batch[pos..end]) {
                    alerts.extend_from_slice(&matched.rule_id.to_le_bytes());
                }
                pos = end;
            }
            alerts
        },
    )?;

    // 20 distinct capture segments; 100 scan requests with 70% duplicates
    // (the redundancy an online scanner sees).
    let segments: Vec<Vec<u8>> = (0..20)
        .map(|i| {
            let trace = packets::packet_trace(
                &packets::TraceConfig {
                    count: 60,
                    malicious_ratio: 0.1,
                    signatures: signatures.clone(),
                    ..packets::TraceConfig::default()
                },
                1000 + i,
            );
            packets::batch_payload(&trace)
        })
        .collect();
    let request_stream = RequestStream::new(segments.len(), 100, 0.7, 99);

    let start = Instant::now();
    let mut total_alerts = 0usize;
    for &segment_idx in request_stream.indices() {
        let alerts = scanner.call(&segments[segment_idx])?;
        total_alerts += alerts.len() / 4;
    }
    let elapsed = start.elapsed();

    let stats = runtime.stats();
    println!("scanned 100 batches in {elapsed:?}");
    println!("alerts raised: {total_alerts}");
    println!(
        "dedup: {} hits / {} calls ({:.0}% of scans reused)",
        stats.hits,
        stats.calls,
        stats.hits as f64 / stats.calls as f64 * 100.0
    );
    println!(
        "observed duplicate ratio in request stream: {:.0}%",
        request_stream.observed_duplicate_ratio() * 100.0
    );
    Ok(())
}
