//! An image-analysis service: SIFT feature extraction over user-submitted
//! images, many of which repeat (re-uploads, thumbnails regenerated, the
//! paper's "repeated input data (even from different requesters)").
//!
//! ```text
//! cargo run --release --example image_service
//! ```

use std::sync::Arc;
use std::time::Instant;

use speed_core::{DedupOutcome, DedupRuntime, Deduplicable, FuncDesc, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::SessionAuthority;
use speed_workloads::{images, RequestStream};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default())?);
    let authority = Arc::new(SessionAuthority::new());

    let mut siftlib = TrustedLibrary::new("libsiftpp", "0.8.1");
    siftlib.register("Keypoints sift(Image)", b"speed-sift pipeline v1");

    let runtime = DedupRuntime::builder(Arc::clone(&platform), b"image-service")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(siftlib)
        .async_put(true) // hide publication latency behind extraction
        .build()?;

    let dedup_sift = Deduplicable::new(
        &runtime,
        FuncDesc::new("libsiftpp", "0.8.1", "Keypoints sift(Image)"),
        |image_bytes: &Vec<u8>| -> Vec<u8> {
            let image = images::image_from_bytes(image_bytes).expect("valid image");
            let features = speed_sift::sift(&image, &speed_sift::SiftParams::default());
            speed_sift::features_to_bytes(&features)
        },
    )?;

    // 8 distinct images; 30 extraction requests, 65% duplicates.
    let corpus: Vec<Vec<u8>> =
        images::image_corpus(8, 96, 42).iter().map(images::image_to_bytes).collect();
    let stream = RequestStream::new(corpus.len(), 30, 0.65, 4242);

    let mut hit_time = std::time::Duration::ZERO;
    let mut miss_time = std::time::Duration::ZERO;
    let (mut hits, mut misses) = (0u32, 0u32);
    for &idx in stream.indices() {
        let start = Instant::now();
        let (features, outcome) = dedup_sift.call_traced(&corpus[idx])?;
        let elapsed = start.elapsed();
        match outcome {
            DedupOutcome::Hit => {
                hits += 1;
                hit_time += elapsed;
            }
            _ => {
                misses += 1;
                miss_time += elapsed;
            }
        }
        let parsed = speed_sift::features_from_bytes(&features).expect("valid features");
        assert!(!parsed.is_empty());
    }
    runtime.flush();

    println!("served 30 extraction requests over 8 distinct images");
    println!("misses (computed): {misses}, mean {:?}", miss_time / misses.max(1));
    println!("hits (reused):     {hits}, mean {:?}", hit_time / hits.max(1));
    if hits > 0 && misses > 0 {
        let speedup = (miss_time.as_secs_f64() / f64::from(misses))
            / (hit_time.as_secs_f64() / f64::from(hits)).max(1e-9);
        println!("per-request dedup speedup: {speedup:.0}x");
    }
    let store_stats = store.stats();
    println!(
        "store: {} entries holding {} ciphertext bytes outside the enclave",
        store_stats.entries, store_stats.stored_bytes
    );
    Ok(())
}
