//! Benchmarks the batched request pipeline against the per-item path and
//! emits `BENCH_batch.json`.
//!
//! Three scenarios run the same deduplicated request stream (synthetic
//! text, configurable duplicate ratio) and report enclave transitions,
//! boundary bytes, simulated SGX time, and wall-clock:
//!
//! 1. `per_item`   — one `execute_raw` per request (1 ECALL + ≥1 OCALL each)
//! 2. `batched`    — `execute_batch` over chunks (≤2 transitions per chunk)
//! 3. `batched_hot_cache` — batched plus the in-enclave hot-tag cache, so
//!    repeated tags never leave the enclave at all
//!
//! ```text
//! cargo run --release --example batch_bench            # full corpus
//! cargo run --release --example batch_bench -- --smoke # CI smoke run
//! ```

use std::sync::Arc;
use std::time::Instant;

use speed_core::{BatchCall, DedupRuntime, FuncDesc, HotCacheConfig, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::SessionAuthority;
use speed_workloads::{text, RequestStream};

const BATCH_SIZE: usize = 32;

fn digest(data: &[u8]) -> Vec<u8> {
    // A cheap stand-in computation; the bench measures boundary overhead,
    // not compute.
    let mut acc = [0u8; 64];
    for (i, b) in data.iter().enumerate() {
        acc[i % 64] = acc[i % 64].wrapping_add(*b).rotate_left(3);
    }
    acc.to_vec()
}

struct Scenario {
    name: &'static str,
    wall_ms: f64,
    ecalls: u64,
    ocalls: u64,
    boundary_bytes: u64,
    charged_ns: u64,
    hits: u64,
    misses: u64,
    cache_hits: u64,
}

impl Scenario {
    fn transitions(&self) -> u64 {
        self.ecalls + self.ocalls
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, ",
                "\"ecalls\": {}, \"ocalls\": {}, \"transitions\": {}, ",
                "\"boundary_bytes\": {}, \"charged_sgx_ns\": {}, ",
                "\"store_hits\": {}, \"misses\": {}, \"cache_hits\": {}}}"
            ),
            self.name,
            self.wall_ms,
            self.ecalls,
            self.ocalls,
            self.transitions(),
            self.boundary_bytes,
            self.charged_ns,
            self.hits,
            self.misses,
            self.cache_hits,
        )
    }
}

fn run_scenario(
    name: &'static str,
    batch: Option<usize>,
    cache: Option<HotCacheConfig>,
    requests: &[&Vec<u8>],
) -> Scenario {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::new());

    let mut library = TrustedLibrary::new("benchlib", "1.0");
    library.register("bytes digest(bytes)", b"batch bench digest v1");

    let mut builder = DedupRuntime::builder(Arc::clone(&platform), b"batch-bench")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(library);
    if let Some(config) = cache {
        builder = builder.hot_cache(config);
    }
    let runtime = builder.build().unwrap();
    let identity = runtime
        .resolve(&FuncDesc::new("benchlib", "1.0", "bytes digest(bytes)"))
        .unwrap();

    let start = Instant::now();
    match batch {
        None => {
            for request in requests {
                runtime.execute_raw(&identity, request, digest).unwrap();
            }
        }
        Some(size) => {
            for chunk in requests.chunks(size) {
                let calls = chunk
                    .iter()
                    .map(|request| BatchCall::new(identity, request.as_slice(), digest))
                    .collect();
                runtime.execute_batch(calls).unwrap();
            }
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let enclave = runtime.enclave().stats();
    let stats = runtime.stats();
    Scenario {
        name,
        wall_ms,
        ecalls: enclave.ecalls,
        ocalls: enclave.ocalls,
        boundary_bytes: enclave.boundary_bytes,
        charged_ns: enclave.charged_ns,
        hits: stats.hits,
        misses: stats.misses,
        cache_hits: stats.cache_hits,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let (distinct, total, result_bytes) =
        if smoke { (16, 64, 512) } else { (200, 2000, 4096) };
    let duplicate_ratio = 0.5;

    let corpus = text::text_corpus(distinct, result_bytes, 7);
    let stream = RequestStream::new(distinct, total, duplicate_ratio, 11);
    let requests: Vec<&Vec<u8>> = stream.indices().iter().map(|&i| &corpus[i]).collect();

    println!(
        "batch bench: {} requests over {} distinct inputs ({} B each, \
         observed duplicate ratio {:.2}){}",
        requests.len(),
        distinct,
        result_bytes,
        stream.observed_duplicate_ratio(),
        if smoke { " [smoke]" } else { "" },
    );

    let scenarios = [
        run_scenario("per_item", None, None, &requests),
        run_scenario("batched", Some(BATCH_SIZE), None, &requests),
        run_scenario(
            "batched_hot_cache",
            Some(BATCH_SIZE),
            Some(HotCacheConfig::default()),
            &requests,
        ),
    ];

    for scenario in &scenarios {
        println!(
            "  {:<18} {:>8} transitions  {:>12} boundary B  \
             {:>12} sgx ns  {:>9.3} wall ms",
            scenario.name,
            scenario.transitions(),
            scenario.boundary_bytes,
            scenario.charged_ns,
            scenario.wall_ms,
        );
    }

    let per_item = &scenarios[0];
    let batched = &scenarios[1];
    let transition_factor =
        per_item.transitions() as f64 / batched.transitions().max(1) as f64;
    let sgx_factor = per_item.charged_ns as f64 / batched.charged_ns.max(1) as f64;
    println!(
        "  batched does {transition_factor:.1}x fewer transitions, \
         {sgx_factor:.1}x less simulated SGX time"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"batch_pipeline\",\n",
            "  \"config\": {{\"requests\": {}, \"distinct_inputs\": {}, ",
            "\"input_bytes\": {}, \"duplicate_ratio\": {:.2}, ",
            "\"batch_size\": {}, \"smoke\": {}}},\n",
            "  \"scenarios\": [\n{}\n  ],\n",
            "  \"batched_vs_per_item\": {{\"transition_factor\": {:.2}, ",
            "\"charged_sgx_ns_factor\": {:.2}}}\n",
            "}}\n"
        ),
        requests.len(),
        distinct,
        result_bytes,
        stream.observed_duplicate_ratio(),
        BATCH_SIZE,
        smoke,
        scenarios.iter().map(Scenario::to_json).collect::<Vec<_>>().join(",\n"),
        transition_factor,
        sgx_factor,
    );
    std::fs::write("BENCH_batch.json", &json)?;
    println!("wrote BENCH_batch.json");

    // Machine-readable exit dump of every metric the bench touched, one
    // JSON object per line (see docs/METRICS.md for the name reference).
    std::fs::write(
        "BENCH_batch.telemetry.jsonl",
        speed_telemetry::global().snapshot().render_jsonl(),
    )?;
    println!("wrote BENCH_batch.telemetry.jsonl");
    Ok(())
}
