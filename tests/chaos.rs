//! Fault-injection integration tests: the full TCP stack (attested
//! handshake, framed secure channel, `StoreServer`) driven through a
//! deterministic `FaultInjector`, plus a mid-workload kill-and-restart of
//! the store recovered from a sealed snapshot.
//!
//! The invariant under test is the SPEED degradation contract: the store is
//! an *optimization*, so no store outage, dropped frame, corrupt response,
//! or torn-down connection may ever surface as an application error — every
//! call must return the same result the fault-free execution would.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use speed_core::{
    BreakerConfig, ChaosClient, Connector, DedupOutcome, DedupRuntime, FaultConfig,
    FaultInjector, FaultRates, FuncDesc, ResilienceConfig, RetryPolicy, StoreClient,
    TcpClient, TrustedLibrary,
};
use speed_crypto::SystemRng;
use speed_enclave::{CostModel, Platform};
use speed_store::server::StoreServer;
use speed_store::{persist, ResultStore, StoreConfig};
use speed_wire::SessionAuthority;

fn library() -> TrustedLibrary {
    let mut lib = TrustedLibrary::new("chaoslib", "1.0");
    lib.register("bytes scramble(bytes)", b"scramble code");
    lib
}

fn desc() -> FuncDesc {
    FuncDesc::new("chaoslib", "1.0", "bytes scramble(bytes)")
}

/// The marked computation: deterministic, cheap to model in the test.
fn scramble(input: &[u8]) -> Vec<u8> {
    let mut out: Vec<u8> =
        input.iter().rev().map(|b| b.wrapping_mul(31).wrapping_add(7)).collect();
    out.push(input.len() as u8);
    out
}

fn spawn_server(
    platform: &Arc<Platform>,
    store: &Arc<ResultStore>,
    authority: &Arc<SessionAuthority>,
) -> StoreServer {
    StoreServer::spawn(
        Arc::clone(store),
        Arc::clone(platform),
        Arc::clone(authority),
        "127.0.0.1:0",
    )
    .expect("spawn store server")
}

/// A connector that dials whatever address is currently in `addr` (the
/// restarted server binds a fresh ephemeral port) and wraps every new
/// connection in a `ChaosClient` sharing one deterministic injector.
fn chaotic_connector(
    platform: &Arc<Platform>,
    authority: &Arc<SessionAuthority>,
    addr: &Arc<Mutex<SocketAddr>>,
    injector: &Arc<FaultInjector>,
) -> Connector {
    let platform = Arc::clone(platform);
    let authority = Arc::clone(authority);
    let addr = Arc::clone(addr);
    let injector = Arc::clone(injector);
    let enclave = platform.create_enclave(b"chaos-test-client").expect("client enclave");
    Box::new(move || {
        let target = *addr.lock().expect("addr lock poisoned");
        let tcp = TcpClient::connect(target, &platform, &enclave, &authority)?;
        Ok(Box::new(ChaosClient::new(Box::new(tcp), Arc::clone(&injector)))
            as Box<dyn StoreClient>)
    })
}

fn resilience() -> ResilienceConfig {
    ResilienceConfig {
        retry: RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(8),
            jitter: 0.5,
        },
        breaker: BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(50),
        },
        call_budget: Duration::from_secs(5),
        replay_capacity: 1024,
        jitter_seed: Some(0xC4A05),
    }
}

#[test]
fn workload_survives_faults_and_store_restart() {
    let platform = Platform::new(CostModel::default_sgx());
    let authority = Arc::new(SessionAuthority::with_seed(77));
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let server = spawn_server(&platform, &store, &authority);
    let addr = Arc::new(Mutex::new(server.addr()));

    // 30% aggregate fault rate, evenly split across drop / delay /
    // disconnect / corrupt-response, on a fixed seed.
    let injector = Arc::new(FaultInjector::new(
        FaultConfig {
            rates: FaultRates::uniform(0.30),
            delay: Duration::from_micros(500),
        },
        0xFA_u64,
    ));

    let rt = DedupRuntime::builder(Arc::clone(&platform), b"chaos-app")
        .client_factory(chaotic_connector(&platform, &authority, &addr, &injector))
        .resilience(resilience())
        .trusted_library(library())
        .rng_seed(9)
        .build()
        .unwrap();
    let identity = rt.resolve(&desc()).unwrap();

    // Phase A: 150 calls over 40 distinct inputs under fault injection.
    // Every call must return the fault-free result, whatever the transport
    // does underneath.
    let mut rng = SystemRng::seeded(0x90AD);
    let inputs: Vec<Vec<u8>> = (0..40u8)
        .map(|i| {
            let mut buf = vec![0u8; rng.range_usize_inclusive(1, 64)];
            rng.fill(&mut buf);
            buf[0] = i; // guarantee distinctness
            buf
        })
        .collect();
    let executions = AtomicU64::new(0);
    // Visit every input once (so phase D can demand a hit for each), then
    // keep drawing repeats to give deduplication something to do.
    let schedule: Vec<usize> = (0..inputs.len())
        .chain((0..110).map(|_| rng.range_usize(0, inputs.len())))
        .collect();
    for index in schedule {
        let input = &inputs[index];
        let (result, _) = rt
            .execute_raw(&identity, input, |d| {
                executions.fetch_add(1, Ordering::Relaxed);
                scramble(d)
            })
            .unwrap_or_else(|e| panic!("store fault escaped to the application: {e}"));
        assert_eq!(result, scramble(input), "wrong result under fault injection");
    }
    let mid_stats = rt.stats();
    assert_eq!(mid_stats.calls, 150);
    assert!(mid_stats.retries > 0, "30% fault rate must force at least one retry");
    // Dedup still pays off: strictly fewer executions than calls.
    assert!(executions.load(Ordering::Relaxed) < 150);

    // Phase B: kill the store mid-workload. Snapshot first (sealed to the
    // store enclave), then take the server down and leave it down.
    let sealed = persist::snapshot(&platform, &store).unwrap();
    server.shutdown();
    injector.set_enabled(false); // outage failures now come from the dead TCP endpoint
    let outage_inputs: Vec<Vec<u8>> =
        (0..10u8).map(|i| vec![0xB0 | 1, i, i, i]).collect();
    let degraded_before = mid_stats.degraded_calls;
    for input in &outage_inputs {
        let (result, outcome) = rt
            .execute_raw(&identity, input, scramble)
            .unwrap_or_else(|e| panic!("outage escaped to the application: {e}"));
        assert_eq!(result, scramble(input));
        assert_eq!(outcome, DedupOutcome::Miss, "outage calls execute locally");
    }
    let outage_stats = rt.stats();
    assert_eq!(
        outage_stats.degraded_calls - degraded_before,
        outage_inputs.len() as u64,
        "every outage call must be marked degraded"
    );
    assert!(rt.pending_replays() > 0, "outage PUTs must be parked for replay");
    assert!(
        outage_stats.breaker_transitions > 0,
        "a dead store must trip the circuit breaker"
    );

    // Phase C: restart the store from the sealed snapshot on a fresh
    // ephemeral port; the resilient client re-attests against it.
    let restored =
        Arc::new(persist::restore(&platform, StoreConfig::default(), &sealed).unwrap());
    let server2 = spawn_server(&platform, &restored, &authority);
    *addr.lock().unwrap() = server2.addr();

    // Drain: wait out the breaker cooldown, then call until the replay
    // queue empties (the first successful round-trip drains it).
    let mut drained = false;
    for _ in 0..40 {
        std::thread::sleep(Duration::from_millis(10));
        rt.execute_raw(&identity, b"drain-probe", scramble).unwrap();
        if rt.pending_replays() == 0 {
            drained = true;
            break;
        }
    }
    assert!(drained, "replay queue never drained after the store came back");
    assert!(rt.stats().replayed_puts >= outage_inputs.len() as u64);
    assert_eq!(
        rt.dropped_replays(),
        0,
        "replay queue must not overflow in this workload"
    );

    // Phase D: convergence. Every input seen so far — including the ones
    // computed during the outage — must now be a dedup hit served by the
    // restored store, with the correct result.
    for input in inputs.iter().chain(&outage_inputs) {
        let (result, outcome) = rt
            .execute_raw(&identity, input, |_| panic!("result must come from the store"))
            .unwrap();
        assert_eq!(result, scramble(input));
        assert_eq!(outcome, DedupOutcome::Hit);
    }
    assert!(rt.stats().hits >= 50, "hit rate must converge once faults stop");
    server2.shutdown();
}

#[test]
fn fault_schedule_is_deterministic_end_to_end() {
    // Two identical runs over the chaotic TCP stack produce identical
    // fault counts and identical runtime stats: the whole failure path is
    // replayable from the seeds.
    fn run() -> (u64, u64, u64) {
        let platform = Platform::new(CostModel::default_sgx());
        let authority = Arc::new(SessionAuthority::with_seed(3));
        let store =
            Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let server = spawn_server(&platform, &store, &authority);
        let addr = Arc::new(Mutex::new(server.addr()));
        let injector = Arc::new(FaultInjector::new(
            FaultConfig {
                rates: FaultRates {
                    drop: 0.2,
                    delay: 0.0,
                    disconnect: 0.1,
                    corrupt: 0.1,
                },
                delay: Duration::ZERO,
            },
            1234,
        ));
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"replay-app")
            .client_factory(chaotic_connector(&platform, &authority, &addr, &injector))
            .resilience(ResilienceConfig {
                // No breaker interference: its admission decisions depend on
                // wall-clock cooldowns, which would perturb the schedule.
                breaker: BreakerConfig {
                    failure_threshold: u32::MAX,
                    cooldown: Duration::ZERO,
                },
                retry: RetryPolicy {
                    max_attempts: 3,
                    base_delay: Duration::from_micros(100),
                    max_delay: Duration::from_millis(1),
                    jitter: 0.5,
                },
                ..ResilienceConfig::default()
            })
            .trusted_library(library())
            .rng_seed(4)
            .build()
            .unwrap();
        let identity = rt.resolve(&desc()).unwrap();
        for i in 0..60u32 {
            let input = (i % 20).to_le_bytes();
            let (result, _) = rt.execute_raw(&identity, &input, scramble).unwrap();
            assert_eq!(result, scramble(&input));
        }
        let stats = rt.stats();
        server.shutdown();
        (injector.counts().total(), stats.retries, stats.degraded_calls)
    }
    assert_eq!(run(), run());
}
