//! Batched pipeline integration: transition/round-trip accounting for
//! `execute_batch`, concurrent batches over one shared runtime, and
//! recovery after panic-poisoned locks.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use speed_core::{
    BatchCall, CoreError, DedupOutcome, DedupRuntime, FuncDesc, InProcessClient,
    StoreClient, TrustedLibrary,
};
use speed_enclave::{CostModel, Platform};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::{Message, SessionAuthority};

fn world() -> (Arc<Platform>, Arc<ResultStore>, Arc<SessionAuthority>) {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::with_seed(42));
    (platform, store, authority)
}

fn library() -> TrustedLibrary {
    let mut lib = TrustedLibrary::new("batchlib", "1.0");
    lib.register("bytes echo(bytes)", b"echo code");
    lib
}

fn desc() -> FuncDesc {
    FuncDesc::new("batchlib", "1.0", "bytes echo(bytes)")
}

/// A pass-through client that counts network round-trips, standing in for
/// the TCP transport (each `roundtrip` is one request/response exchange).
#[derive(Debug)]
struct CountingClient {
    inner: InProcessClient,
    roundtrips: Arc<AtomicU64>,
}

impl StoreClient for CountingClient {
    fn roundtrip(&mut self, request: &Message) -> Result<Message, CoreError> {
        self.roundtrips.fetch_add(1, Ordering::SeqCst);
        self.inner.roundtrip(request)
    }
}

#[test]
fn batch_of_gets_is_two_transitions_and_one_roundtrip() {
    let (platform, store, authority) = world();

    // Seed the store with 16 results through an ordinary runtime.
    let seeder = DedupRuntime::builder(Arc::clone(&platform), b"seeder")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity = seeder.resolve(&desc()).unwrap();
    let inputs: Vec<[u8; 4]> = (0..16u32).map(|i| i.to_le_bytes()).collect();
    for input in &inputs {
        seeder.execute_raw(&identity, input, |d| d.to_vec()).unwrap();
    }

    // The runtime under test counts its network round-trips.
    let roundtrips = Arc::new(AtomicU64::new(0));
    let enclave = platform.create_enclave(b"counting-end").unwrap();
    let inner =
        InProcessClient::connect(Arc::clone(&store), &authority, &platform, &enclave)
            .unwrap();
    let rt = DedupRuntime::builder(Arc::clone(&platform), b"batch-counting")
        .client(Box::new(CountingClient { inner, roundtrips: Arc::clone(&roundtrips) }))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity = rt.resolve(&desc()).unwrap();

    let before = rt.enclave().stats();
    let calls = inputs
        .iter()
        .map(|input| BatchCall::new(identity, input.as_slice(), |_| panic!("hit")))
        .collect();
    let results = rt.execute_batch(calls).unwrap();
    let after = rt.enclave().stats();

    assert_eq!(results.len(), 16);
    for (i, (result, outcome)) in results.iter().enumerate() {
        assert_eq!(*outcome, DedupOutcome::Hit, "item {i}");
        assert_eq!(result, &inputs[i].to_vec(), "item {i}");
    }
    // The acceptance bar: N GET lookups in ≤ 2 enclave transitions and a
    // single network round-trip.
    assert!(
        after.transitions() - before.transitions() <= 2,
        "expected ≤2 transitions, got {}",
        after.transitions() - before.transitions()
    );
    assert_eq!(roundtrips.load(Ordering::SeqCst), 1);
}

#[test]
fn per_item_path_pays_linear_transitions_for_the_same_work() {
    // The contrast case: the same 16 lookups through `execute_raw` cost a
    // transition pair per call, which is what batching eliminates.
    let (platform, store, authority) = world();
    let seeder = DedupRuntime::builder(Arc::clone(&platform), b"seeder2")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity = seeder.resolve(&desc()).unwrap();
    let inputs: Vec<[u8; 4]> = (0..16u32).map(|i| i.to_le_bytes()).collect();
    for input in &inputs {
        seeder.execute_raw(&identity, input, |d| d.to_vec()).unwrap();
    }

    let rt = DedupRuntime::builder(Arc::clone(&platform), b"per-item")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity = rt.resolve(&desc()).unwrap();
    let before = rt.enclave().stats();
    for input in &inputs {
        rt.execute_raw(&identity, input, |_| panic!("hit")).unwrap();
    }
    let after = rt.enclave().stats();
    // 16 hits at 1 ECALL + 1 OCALL each.
    assert_eq!(after.transitions() - before.transitions(), 32);
}

#[test]
fn concurrent_batches_share_one_runtime() {
    let (platform, store, authority) = world();
    let rt = DedupRuntime::builder(Arc::clone(&platform), b"mt-app")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity = rt.resolve(&desc()).unwrap();

    // Seed 8 shared inputs every thread will hit.
    let shared: Vec<Vec<u8>> = (0..8u32).map(|i| i.to_le_bytes().to_vec()).collect();
    let calls = shared
        .iter()
        .map(|input| BatchCall::new(identity, input.as_slice(), |d| d.to_vec()))
        .collect();
    rt.execute_batch(calls).unwrap();

    const THREADS: u32 = 4;
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let rt = &rt;
            let shared = &shared;
            s.spawn(move || {
                // Mixed batch: 8 seeded hits + 8 thread-private misses.
                let mut inputs: Vec<Vec<u8>> = shared.clone();
                for i in 0..8u32 {
                    inputs.push((1000 + tid * 100 + i).to_le_bytes().to_vec());
                }
                let calls = inputs
                    .iter()
                    .map(|input| {
                        BatchCall::new(identity, input.as_slice(), |d| d.to_vec())
                    })
                    .collect();
                let results = rt.execute_batch(calls).unwrap();
                assert_eq!(results.len(), 16);
                for (i, (result, outcome)) in results.iter().enumerate() {
                    assert_eq!(result, &inputs[i], "thread {tid} item {i}");
                    if i < 8 {
                        assert_eq!(*outcome, DedupOutcome::Hit, "thread {tid} item {i}");
                    } else {
                        assert_eq!(*outcome, DedupOutcome::Miss, "thread {tid} item {i}");
                    }
                }

                // A panicking marked computation must not wedge the shared
                // runtime for the other threads.
                let poison_input = (9000 + tid).to_le_bytes();
                let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    rt.execute_raw(&identity, &poison_input, |_| {
                        panic!("injected compute panic")
                    })
                }));
                assert!(panicked.is_err(), "thread {tid} expected a panic");
            });
        }
    });

    // Every counter adds up despite the interleaving and the panics:
    // seeding (8 misses) + 4×16 batch calls + 4 panicked calls.
    let stats = rt.stats();
    assert_eq!(stats.calls, 8 + u64::from(THREADS) * 16 + u64::from(THREADS));
    assert_eq!(stats.hits, u64::from(THREADS) * 8);
    // Panicked calls were counted as misses before their closures blew up.
    assert_eq!(stats.misses, 8 + u64::from(THREADS) * 8 + u64::from(THREADS));
    assert_eq!(stats.hits + stats.misses, stats.calls);

    // And the runtime still works.
    let (result, outcome) =
        rt.execute_raw(&identity, &shared[0], |_| panic!("hit")).unwrap();
    assert_eq!(result, shared[0]);
    assert_eq!(outcome, DedupOutcome::Hit);
}

/// A client that panics on demand *inside* `roundtrip` — while the
/// runtime's client mutex is held — to poison the lock.
#[derive(Debug)]
struct PanickyClient {
    inner: InProcessClient,
    panic_next: Arc<AtomicBool>,
}

impl StoreClient for PanickyClient {
    fn roundtrip(&mut self, request: &Message) -> Result<Message, CoreError> {
        if self.panic_next.swap(false, Ordering::SeqCst) {
            panic!("injected client panic");
        }
        self.inner.roundtrip(request)
    }
}

#[test]
fn runtime_survives_poisoned_client_lock() {
    // Regression: a panic while holding the client mutex used to make every
    // later call panic on `.expect("client lock poisoned")`. The runtime
    // must recover the lock and keep serving.
    let (platform, store, authority) = world();
    let panic_next = Arc::new(AtomicBool::new(false));
    let enclave = platform.create_enclave(b"panicky-end").unwrap();
    let inner =
        InProcessClient::connect(Arc::clone(&store), &authority, &platform, &enclave)
            .unwrap();
    let rt = DedupRuntime::builder(Arc::clone(&platform), b"poison-app")
        .client(Box::new(PanickyClient { inner, panic_next: Arc::clone(&panic_next) }))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity = rt.resolve(&desc()).unwrap();

    // Trigger the panic inside the GET round-trip (client lock held).
    panic_next.store(true, Ordering::SeqCst);
    let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
        rt.execute_raw(&identity, b"boom", |d| d.to_vec())
    }));
    assert!(panicked.is_err(), "expected the injected panic to surface");

    // The client mutex is now poisoned; both code paths must still work.
    let (result, outcome) = rt.execute_raw(&identity, b"after", |d| d.to_vec()).unwrap();
    assert_eq!(result, b"after");
    assert_eq!(outcome, DedupOutcome::Miss);

    let inputs: Vec<&[u8]> = vec![b"after", b"fresh"];
    let calls = inputs
        .iter()
        .map(|input| BatchCall::new(identity, input, |d| d.to_vec()))
        .collect();
    let results = rt.execute_batch(calls).unwrap();
    assert_eq!(results[0].1, DedupOutcome::Hit);
    assert_eq!(results[1].1, DedupOutcome::Miss);
    assert_eq!(results[0].0, b"after");
    assert_eq!(results[1].0, b"fresh");
}
