//! Property suite for the crypto/core layer: RCE round-trips, tamper
//! detection, tag collision-freedom, hot-cache bounds, and chaos schedule
//! determinism. Driven by `speed-testkit`; failures shrink and print a
//! `SPEED_TESTKIT_SEED=…` reproducer (see docs/TESTING.md).

use std::sync::Arc;

use speed_core::rce::{encrypt_result, recover_result};
use speed_core::{
    tag_for, DedupRuntime, FaultConfig, FaultInjector, FuncDesc, FuncIdentity,
    HotCacheConfig, TrustedLibrary,
};
use speed_crypto::SystemRng;
use speed_enclave::{CostModel, Platform};
use speed_store::{ResultStore, StoreConfig};
use speed_testkit::check;
use speed_testkit::shrink::NoShrink;
use speed_wire::SessionAuthority;

/// Builds function identities for each code blob via a throwaway runtime
/// (the only public path from code bytes to a `FuncIdentity`).
fn identities(codes: &[Vec<u8>]) -> Vec<FuncIdentity> {
    let platform = Platform::new(CostModel::no_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::new());
    let mut library = TrustedLibrary::new("lib", "1");
    for (index, code) in codes.iter().enumerate() {
        library.register(format!("f{index}()"), code);
    }
    let rt = DedupRuntime::builder(Arc::clone(&platform), b"rce-props")
        .in_process_store(store, authority)
        .trusted_library(library)
        .build()
        .unwrap();
    (0..codes.len())
        .map(|index| {
            rt.resolve(&FuncDesc::new("lib", "1", format!("f{index}()"))).unwrap()
        })
        .collect()
}

fn identity(code: &[u8]) -> FuncIdentity {
    identities(std::slice::from_ref(&code.to_vec())).remove(0)
}

/// RCE round-trip: whatever the function, input, and result bytes, a record
/// produced by `encrypt_result` recovers to the original result — and two
/// encryptions of the same computation still both recover (the challenge is
/// fresh per record, the recovery key is not).
#[test]
fn rce_roundtrip_recovers_exact_result() {
    check(
        "rce_roundtrip_recovers_exact_result",
        0x5EED_2001,
        |rng| (rng.bytes(32), rng.bytes(64), rng.bytes(128), rng.next_u64()),
        |case: &(Vec<u8>, Vec<u8>, Vec<u8>, u64)| {
            let (code, input, result, crypto_seed) = case;
            let func = identity(code);
            let mut rng = SystemRng::seeded(*crypto_seed);
            let record_a = encrypt_result(&func, input, result, &mut rng);
            let record_b = encrypt_result(&func, input, result, &mut rng);
            // Independent challenges, both recoverable by the rightful owner.
            assert_eq!(recover_result(&func, input, &record_a).unwrap(), *result);
            assert_eq!(recover_result(&func, input, &record_b).unwrap(), *result);
            // The per-record randomness actually differs.
            assert_ne!(record_a.challenge, record_b.challenge, "challenge reuse");
        },
    );
}

/// Tamper detection: flipping any single bit anywhere in the record — the
/// challenge, the wrapped key, the nonce, or the ciphertext — must make
/// recovery fail. No field is malleable.
#[test]
fn any_flipped_record_bit_fails_recovery() {
    check(
        "any_flipped_record_bit_fails_recovery",
        0x5EED_2002,
        |rng| {
            (
                rng.bytes(16),
                rng.bytes(32),
                rng.bytes(48),
                rng.next_u64(),
                rng.next_u64(), // flip position ticket
                rng.byte() % 8,
            )
        },
        |case: &(Vec<u8>, Vec<u8>, Vec<u8>, u64, u64, u8)| {
            let (code, input, result, crypto_seed, position, bit) = case;
            let func = identity(code);
            let mut rng = SystemRng::seeded(*crypto_seed);
            let mut record = encrypt_result(&func, input, result, &mut rng);
            let total = record.challenge.len()
                + record.wrapped_key.len()
                + record.nonce.len()
                + record.boxed_result.len();
            let mut at = (*position as usize) % total;
            let flip = 1u8 << bit;
            if at < record.challenge.len() {
                record.challenge[at] ^= flip;
            } else {
                at -= record.challenge.len();
                if at < record.wrapped_key.len() {
                    record.wrapped_key[at] ^= flip;
                } else {
                    at -= record.wrapped_key.len();
                    if at < record.nonce.len() {
                        record.nonce[at] ^= flip;
                    } else {
                        at -= record.nonce.len();
                        record.boxed_result[at] ^= flip;
                    }
                }
            }
            assert!(
                recover_result(&func, input, &record).is_err(),
                "tampered record recovered"
            );
        },
    );
}

/// Only the rightful (function, input) pair recovers: a different function
/// identity or a different input derives a different secondary key.
#[test]
fn wrong_identity_or_input_cannot_recover() {
    check(
        "wrong_identity_or_input_cannot_recover",
        0x5EED_2003,
        |rng| {
            let code = rng.bytes(24);
            let mut other_code = code.clone();
            other_code.push(rng.byte()); // always differs (longer)
            (code, other_code, rng.bytes(32), rng.bytes(32), rng.next_u64())
        },
        |case: &(Vec<u8>, Vec<u8>, Vec<u8>, Vec<u8>, u64)| {
            let (code, other_code, input, result, crypto_seed) = case;
            let ids = identities(&[code.clone(), other_code.clone()]);
            let mut rng = SystemRng::seeded(*crypto_seed);
            let record = encrypt_result(&ids[0], input, result, &mut rng);
            assert!(
                recover_result(&ids[1], input, &record).is_err(),
                "foreign function recovered the result"
            );
            let mut other_input = input.clone();
            other_input.push(0);
            assert!(
                recover_result(&ids[0], &other_input, &record).is_err(),
                "foreign input recovered the result"
            );
        },
    );
}

/// Tag collision-freedom and determinism: distinct (function, input) pairs
/// get distinct tags; the same pair always gets the same tag.
#[test]
fn tags_are_deterministic_and_collision_free() {
    check(
        "tags_are_deterministic_and_collision_free",
        0x5EED_2004,
        |rng| {
            let funcs = rng.range_usize(1, 4);
            let codes: Vec<Vec<u8>> = (0..funcs).map(|i| vec![i as u8; 8 + i]).collect();
            let inputs: Vec<Vec<u8>> =
                (0..rng.range_usize(1, 6)).map(|_| rng.bytes(16)).collect();
            (codes, inputs)
        },
        |case: &(Vec<Vec<u8>>, Vec<Vec<u8>>)| {
            let (codes, inputs) = case;
            let ids = identities(codes);
            let mut seen = std::collections::HashMap::new();
            for (func_index, func) in ids.iter().enumerate() {
                for input in inputs {
                    let tag = tag_for(func, input);
                    assert_eq!(tag, tag_for(func, input), "tag not deterministic");
                    if let Some(previous) = seen.insert(tag, (func_index, input.clone()))
                    {
                        assert_eq!(
                            previous,
                            (func_index, input.clone()),
                            "tag collision between distinct computations"
                        );
                    }
                }
            }
        },
    );
}

/// Hot-cache bounds: under any stream of repeated executions the in-enclave
/// cache never exceeds its configured entry or byte budget, and cached
/// replays return the exact computed bytes.
#[test]
fn hot_cache_respects_bounds_under_random_streams() {
    const CACHE: HotCacheConfig = HotCacheConfig { max_entries: 4, max_bytes: 2048 };
    check(
        "hot_cache_respects_bounds_under_random_streams",
        0x5EED_2005,
        |rng| {
            let len = rng.range_usize(1, 40);
            (0..len)
                .map(|_| (rng.byte() % 10, rng.range_usize(0, 300)))
                .collect::<Vec<(u8, usize)>>()
        },
        |ops: &Vec<(u8, usize)>| {
            let platform = Platform::new(CostModel::no_sgx());
            let store =
                Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
            let authority = Arc::new(SessionAuthority::new());
            let mut library = TrustedLibrary::new("lib", "1");
            library.register("f()", b"code");
            let rt = DedupRuntime::builder(Arc::clone(&platform), b"hot-cache-prop")
                .in_process_store(store, authority)
                .trusted_library(library)
                .hot_cache(CACHE)
                .build()
                .unwrap();
            let func = rt.resolve(&FuncDesc::new("lib", "1", "f()")).unwrap();
            for (index, &(input_seed, result_len)) in ops.iter().enumerate() {
                // Result bytes are a pure function of the input (the length
                // is part of the input), so every path — compute, store hit,
                // hot-cache hit — must agree.
                let mut input = vec![input_seed; 8];
                input.extend_from_slice(&(result_len as u64).to_le_bytes());
                let expected = vec![input_seed ^ 0x5A; result_len];
                let compute = |_: &[u8]| vec![input_seed ^ 0x5A; result_len];
                let (got, _) = rt.execute_raw(&func, &input, compute).unwrap();
                assert_eq!(got, expected, "op {index}: wrong result bytes");
                let (entries, bytes) = rt.hot_cache_usage().expect("hot cache enabled");
                assert!(
                    entries <= CACHE.max_entries,
                    "op {index}: {entries} entries exceed bound"
                );
                assert!(
                    bytes <= CACHE.max_bytes,
                    "op {index}: {bytes} accounted bytes exceed bound"
                );
            }
        },
    );
}

/// Chaos schedules are pure functions of (config, seed): two injectors with
/// the same seed agree on every fault decision, so any chaos test failure
/// replays exactly.
#[test]
fn chaos_schedule_replays_deterministically() {
    check(
        "chaos_schedule_replays_deterministically",
        0x5EED_2006,
        |rng| NoShrink(rng.next_u64()),
        |seed: &NoShrink<u64>| {
            let config = FaultConfig::default();
            let a = FaultInjector::new(config, seed.0);
            let b = FaultInjector::new(config, seed.0);
            let schedule_a: Vec<_> = (0..200).map(|_| a.next_fault()).collect();
            let schedule_b: Vec<_> = (0..200).map(|_| b.next_fault()).collect();
            assert_eq!(schedule_a, schedule_b, "same seed, different schedule");
            // And both replicas agree on what they injected.
            assert_eq!(a.counts(), b.counts(), "fault counters diverged");
        },
    );
}
