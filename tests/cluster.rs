//! Multi-node store mode, end to end: consistent-hash routing over real
//! replicated stores, killed-node chaos, partitions, hinted handoff, and
//! failover re-attestation. `docs/CLUSTER.md` is the spec these scenarios
//! are written against.
//!
//! The headline invariant (the CI `cluster` job's acceptance criterion):
//! a 3-node cluster survives a seeded kill-one-node chaos run with ZERO
//! lost acknowledged PUTs — every acknowledged record stays readable
//! throughout the outage and, once the node rejoins and hinted handoff
//! drains, is back on all R replicas.

use std::sync::Arc;
use std::time::Duration;

use speed_core::{
    BreakerConfig, ClusterClient, ClusterConfig, Connector, CoreError, DedupOutcome,
    DedupRuntime, FuncDesc, InProcessClient, NodeId, OutageSwitch, ResilienceConfig,
    RetryPolicy, StoreClient, SwitchedClient, TcpClient, TrustedLibrary,
};
use speed_enclave::{CostModel, Platform};
use speed_store::server::StoreServer;
use speed_store::{ResultStore, StoreConfig};
use speed_testkit::TestRng;
use speed_wire::{
    AppId, CompTag, Message, Record, RingBody, RingNodeBody, SessionAuthority,
};

const APP: AppId = AppId(0xC1A5);

fn tag_of(seed: u64) -> CompTag {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&seed.to_le_bytes());
    bytes[9] = 0x3C;
    CompTag::from_bytes(bytes)
}

fn record_of(seed: u64) -> Record {
    Record {
        challenge: vec![seed as u8; 24],
        wrapped_key: [seed as u8; 16],
        nonce: [(seed >> 8) as u8; 12],
        boxed_result: seed.to_le_bytes().repeat(4).to_vec(),
    }
}

/// Per-node resilience for tests: fail over immediately, never fast-fail
/// (the scenarios assert on clean failovers, not breaker windows).
fn node_resilience() -> ResilienceConfig {
    ResilienceConfig {
        retry: RetryPolicy::none(),
        breaker: BreakerConfig {
            failure_threshold: 1_000_000,
            cooldown: Duration::from_millis(1),
        },
        call_budget: Duration::from_secs(2),
        replay_capacity: 1,
        jitter_seed: Some(0x3C),
    }
}

struct Cluster {
    client: ClusterClient,
    stores: Vec<Arc<ResultStore>>,
    switches: Vec<Arc<OutageSwitch>>,
}

/// An `n`-node in-process cluster: each member is a real `ResultStore`
/// behind an attested channel, reachable through an [`OutageSwitch`] so
/// scenarios can kill and revive it deterministically.
fn in_process_cluster(n: u32) -> Cluster {
    let platform = Platform::new(CostModel::no_sgx());
    let authority = Arc::new(SessionAuthority::with_seed(0x3C0));
    let enclave = platform.create_enclave(b"cluster-it-client").unwrap();
    let mut builder = ClusterClient::builder(ClusterConfig {
        node_resilience: node_resilience(),
        ..ClusterConfig::default()
    });
    let mut stores = Vec::new();
    let mut switches = Vec::new();
    for id in 0..n {
        let store = Arc::new(
            ResultStore::new(&platform, StoreConfig::with_capacity(100_000, u64::MAX))
                .unwrap(),
        );
        let switch = Arc::new(OutageSwitch::new());
        let connector: Connector = {
            let store = Arc::clone(&store);
            let switch = Arc::clone(&switch);
            let authority = Arc::clone(&authority);
            let platform = Arc::clone(&platform);
            let enclave = Arc::clone(&enclave);
            Box::new(move || {
                if switch.is_down() {
                    return Err(CoreError::StoreUnavailable("node is down".into()));
                }
                let inner = InProcessClient::connect(
                    Arc::clone(&store),
                    &authority,
                    &platform,
                    &enclave,
                )?;
                Ok(Box::new(SwitchedClient::new(Box::new(inner), Arc::clone(&switch)))
                    as Box<dyn StoreClient>)
            })
        };
        builder = builder.node(id, connector);
        stores.push(store);
        switches.push(switch);
    }
    Cluster { client: builder.build().unwrap(), stores, switches }
}

fn holds(store: &ResultStore, seed: u64) -> bool {
    matches!(
        store.handle(Message::GetRequest { app: APP, tag: tag_of(seed) }),
        Message::GetResponse(body) if body.found
    )
}

/// The seeded kill-one-node chaos run. Drives a 3-node cluster through
/// `ops` random PUT/GET operations while one node at a time is killed and
/// revived on a random schedule; every acknowledged PUT must stay readable
/// at all times, and after the final rejoin + handoff drain every
/// acknowledged record must be back on exactly R = 2 replicas.
fn kill_one_node_chaos(seed: u64, ops: usize) {
    let mut cluster = in_process_cluster(3);
    let mut rng = TestRng::new(seed);
    let mut acked: Vec<u64> = Vec::new();
    let mut down: Option<usize> = None;
    let mut killed_ever = [false; 3];
    let mut next_seed = 0u64;

    for op in 0..ops {
        // Flip the outage state with small probability: at most one node
        // is down at a time, mirroring the single-fault-domain drill.
        match down {
            None if rng.chance(0.08) => {
                let node = rng.range_usize(0, 2);
                cluster.switches[node].set_down(true);
                killed_ever[node] = true;
                down = Some(node);
            }
            Some(node) if rng.chance(0.2) => {
                cluster.switches[node].set_down(false);
                down = None;
            }
            _ => {}
        }
        if rng.chance(0.6) || acked.is_empty() {
            let put_seed = next_seed;
            next_seed += 1;
            let response = cluster
                .client
                .roundtrip(&Message::PutRequest {
                    app: APP,
                    tag: tag_of(put_seed),
                    record: record_of(put_seed),
                })
                .unwrap_or_else(|e| {
                    panic!("op {op}: PUT failed with one node down: {e}")
                });
            assert!(
                matches!(response, Message::PutResponse(body) if body.accepted),
                "op {op}: PUT not acknowledged"
            );
            acked.push(put_seed);
        } else {
            // Zero-loss invariant, checked DURING the outage: any
            // acknowledged PUT is readable from some replica right now.
            let probe = acked[rng.range_usize(0, acked.len() - 1)];
            let response = cluster
                .client
                .roundtrip(&Message::GetRequest { app: APP, tag: tag_of(probe) })
                .unwrap_or_else(|e| panic!("op {op}: GET failed: {e}"));
            assert!(
                matches!(response, Message::GetResponse(body) if body.found),
                "op {op}: acknowledged PUT {probe} lost mid-run \
                 (seed {seed:#x}, down node {down:?})"
            );
        }
    }

    // Rejoin and drain: replication debt is repaid.
    for switch in &cluster.switches {
        switch.set_down(false);
    }
    cluster.client.drain_hints();
    assert_eq!(cluster.client.hint_depth(), 0, "hints left after full drain");
    for &put_seed in &acked {
        let replicas: usize =
            cluster.stores.iter().filter(|s| holds(s, put_seed)).count();
        assert_eq!(
            replicas, 2,
            "seed {seed:#x}: PUT {put_seed} on {replicas} replicas after drain"
        );
    }
    // Every node that was ever killed reconnected — and therefore ran the
    // full attestation handshake again — when it came back.
    for (node, was_killed) in killed_ever.iter().enumerate() {
        if *was_killed {
            assert!(
                cluster.client.reattestations(node as u32) >= 1,
                "killed node {node} never re-attested"
            );
        }
    }
    let counts = cluster.client.counts();
    assert_eq!(counts.hinted_puts, counts.hints_replayed, "hints leaked");
    assert_eq!(counts.hints_dropped, 0, "hint queue overflowed");
}

/// Pinned-seed arm of the chaos run (deterministic in CI).
#[test]
fn kill_one_node_chaos_pinned_seed() {
    kill_one_node_chaos(0xC1A0_5EED, 400);
}

/// Random-smoke arm: honors `SPEED_TESTKIT_SEED` so the CI `cluster` job
/// can roll a fresh seed per run; the failure message embeds the seed.
#[test]
fn kill_one_node_chaos_env_seed() {
    let seed = std::env::var("SPEED_TESTKIT_SEED")
        .ok()
        .and_then(|raw| {
            let raw = raw.trim().to_string();
            match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => raw.parse().ok(),
            }
        })
        .unwrap_or(0x3C0_5EED);
    kill_one_node_chaos(seed, 250);
}

/// A partition that cuts the client off from one member: keyed traffic
/// stays fully available (every tag keeps one reachable replica at R = 2),
/// while the filter fan-out — which needs the whole membership — fails
/// closed rather than serving a partial union.
#[test]
fn partition_keeps_keyed_traffic_available() {
    let mut cluster = in_process_cluster(3);
    for seed in 0..20 {
        assert!(cluster
            .client
            .roundtrip(&Message::PutRequest {
                app: APP,
                tag: tag_of(seed),
                record: record_of(seed),
            })
            .is_ok());
    }
    cluster.switches[2].set_down(true);

    // All 20 tags remain readable and writable across the partition.
    for seed in 0..20 {
        let response = cluster
            .client
            .roundtrip(&Message::GetRequest { app: APP, tag: tag_of(seed) })
            .expect("partitioned GET");
        assert!(matches!(response, Message::GetResponse(body) if body.found));
    }
    for seed in 20..30 {
        let response = cluster
            .client
            .roundtrip(&Message::PutRequest {
                app: APP,
                tag: tag_of(seed),
                record: record_of(seed),
            })
            .expect("partitioned PUT");
        assert!(matches!(response, Message::PutResponse(body) if body.accepted));
    }
    // Fan-outs that need every member fail closed during the partition.
    assert!(cluster.client.roundtrip(&Message::FilterRequest).is_err());

    // Heal: handoff repays the partitioned node's replication debt.
    cluster.switches[2].set_down(false);
    assert!(cluster.client.drain_hints() > 0 || cluster.client.hint_depth() == 0);
    assert_eq!(cluster.client.hint_depth(), 0);
    for seed in 0..30 {
        let replicas: usize = cluster.stores.iter().filter(|s| holds(s, seed)).count();
        assert_eq!(replicas, 2, "tag {seed} not fully replicated after heal");
    }
}

/// The full TCP stack: three `StoreServer`s advertising a shared topology,
/// a `ClusterClient` dialing them with attested `TcpClient` connectors,
/// `RING_REQUEST` bootstrap, failover past a dead server, and the
/// departed-node bugfix end to end — a hint queued for a node that then
/// leaves the ring is delivered to the tag's *current* owners at drain.
#[test]
fn tcp_cluster_ring_fetch_failover_and_departed_node_drain() {
    let platform = Platform::new(CostModel::default_sgx());
    let authority = Arc::new(SessionAuthority::with_seed(0x7C9));
    let enclave = platform.create_enclave(b"tcp-cluster-client").unwrap();

    let mut stores = Vec::new();
    let mut servers = Vec::new();
    for _ in 0..3 {
        let store =
            Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let server = StoreServer::spawn(
            Arc::clone(&store),
            Arc::clone(&platform),
            Arc::clone(&authority),
            "127.0.0.1:0",
        )
        .unwrap();
        stores.push(store);
        servers.push(Some(server));
    }
    let topology = RingBody {
        version: 1,
        nodes: (0..3u32)
            .map(|id| RingNodeBody {
                id,
                addr: servers[id as usize].as_ref().unwrap().addr().to_string(),
                weight: 1,
            })
            .collect(),
    };
    for store in &stores {
        assert!(store.set_topology(topology.clone()));
    }

    let mut builder = ClusterClient::builder(ClusterConfig {
        node_resilience: node_resilience(),
        ..ClusterConfig::default()
    });
    for node in &topology.nodes {
        let addr: std::net::SocketAddr = node.addr.parse().unwrap();
        let connector: Connector = {
            let platform = Arc::clone(&platform);
            let enclave = Arc::clone(&enclave);
            let authority = Arc::clone(&authority);
            Box::new(move || {
                let tcp = TcpClient::connect(addr, &platform, &enclave, &authority)?;
                Ok(Box::new(tcp) as Box<dyn StoreClient>)
            })
        };
        builder = builder.member(node.clone(), connector);
    }
    let mut client = builder.build().unwrap();

    // Bootstrap: any member serves the advertised membership over TCP.
    assert_eq!(client.fetch_ring().unwrap(), topology);

    // Replicated PUT/GET over real attested TCP connections.
    assert!(matches!(
        client
            .roundtrip(&Message::PutRequest {
                app: APP,
                tag: tag_of(1),
                record: record_of(1),
            })
            .unwrap(),
        Message::PutResponse(body) if body.accepted
    ));
    assert_eq!(stores.iter().filter(|s| holds(s, 1)).count(), 2);

    // Kill the primary server of tag 2 for good (process death: the port
    // goes away). The PUT is still acknowledged by the surviving replica
    // and a hint is parked for the dead node.
    let primary = client.replicas_of(&tag_of(2))[0].0;
    servers[primary as usize].take().unwrap().shutdown();
    assert!(matches!(
        client
            .roundtrip(&Message::PutRequest {
                app: APP,
                tag: tag_of(2),
                record: record_of(2),
            })
            .unwrap(),
        Message::PutResponse(body) if body.accepted
    ));
    assert_eq!(client.hint_depth(), 1);
    assert!(matches!(
        client.roundtrip(&Message::GetRequest { app: APP, tag: tag_of(2) }).unwrap(),
        Message::GetResponse(body) if body.found
    ));

    // The operator replaces the dead node: it leaves the ring. The parked
    // hint must re-route to the tag's current owners, not chase the
    // departed address.
    client.remove_node(primary);
    assert_eq!(client.drain_hints(), 1);
    assert_eq!(client.hint_depth(), 0);
    let current = client.replicas_of(&tag_of(2));
    assert!(!current.contains(&NodeId(primary)));
    for node in &current {
        assert!(
            holds(&stores[node.0 as usize], 2),
            "current replica {node:?} missing the re-routed PUT"
        );
    }
    assert!(
        !holds(&stores[primary as usize], 2),
        "departed node must never receive the replayed PUT"
    );

    for server in servers.into_iter().flatten() {
        server.shutdown();
    }
}

/// The runtime-level replay bugfix: a PUT parked by the *runtime's*
/// resilience layer during a whole-cluster outage is replayed through the
/// cluster client — i.e. routed by the ring current at replay time — so it
/// cannot land on a node that departed while the PUT sat in the queue.
#[test]
fn runtime_replay_reroutes_through_current_ring() {
    let mut library = TrustedLibrary::new("clusterlib", "1.0");
    library.register("bytes echo(bytes)", b"echo code");
    let desc = FuncDesc::new("clusterlib", "1.0", "bytes echo(bytes)");

    let cluster = in_process_cluster(3);
    let platform = Platform::new(CostModel::no_sgx());
    let rt = DedupRuntime::builder(Arc::clone(&platform), b"cluster-rt-app")
        .cluster_store(cluster.client.clone())
        .resilience(ResilienceConfig {
            retry: RetryPolicy::none(),
            breaker: BreakerConfig {
                failure_threshold: 1_000_000,
                cooldown: Duration::from_millis(1),
            },
            call_budget: Duration::from_secs(2),
            replay_capacity: 64,
            jitter_seed: Some(1),
        })
        .trusted_library(library)
        .build()
        .unwrap();
    let identity = rt.resolve(&desc).unwrap();

    // Whole-cluster outage: the call degrades to local execution and the
    // fresh result is parked in the runtime's replay queue.
    for switch in &cluster.switches {
        switch.set_down(true);
    }
    let (result, outcome) =
        rt.execute_raw(&identity, b"outage-input", |d| d.to_vec()).unwrap();
    assert_eq!(result, b"outage-input".to_vec());
    assert_eq!(outcome, DedupOutcome::Miss);
    assert!(rt.pending_replays() > 0, "outage PUT must be parked for replay");

    // While the PUT sits in the queue, node 0 is decommissioned and the
    // rest of the cluster comes back.
    cluster.client.remove_node(0);
    for switch in &cluster.switches {
        switch.set_down(false);
    }

    // The next successful round-trip drains the replay queue through the
    // cluster client, which routes by the CURRENT two-node ring.
    let mut drained = false;
    for _ in 0..10 {
        let _ = rt.execute_raw(&identity, b"drain-probe", |d| d.to_vec()).unwrap();
        if rt.pending_replays() == 0 {
            drained = true;
            break;
        }
    }
    assert!(drained, "replay queue never drained after the cluster came back");

    // The replayed record must be a store hit now — served by the
    // surviving nodes — and the departed node must have stayed empty.
    let (replayed, outcome) = rt
        .execute_raw(&identity, b"outage-input", |_| {
            panic!("must be served from the cluster")
        })
        .unwrap();
    assert_eq!(replayed, b"outage-input".to_vec());
    assert_eq!(outcome, DedupOutcome::Hit);
    assert_eq!(
        cluster.stores[0].stats().entries,
        0,
        "departed node received a replayed PUT"
    );
}

/// Ring metadata stays consistent through membership changes, and the
/// in-process cluster answers `RING_REQUEST` from the client's own view.
#[test]
fn membership_changes_bump_versions_and_move_few_keys() {
    let mut cluster = in_process_cluster(3);
    assert_eq!(cluster.client.ring_version(), 1);
    let before: Vec<NodeId> =
        (0..1000).map(|s| cluster.client.replicas_of(&tag_of(s))[0]).collect();

    // A fourth node joins (connector never used unless routed to).
    cluster.client.add_node(
        RingNodeBody { id: 3, addr: String::new(), weight: 1 },
        Box::new(|| Err(CoreError::StoreUnavailable("stub".into()))),
    );
    assert_eq!(cluster.client.ring_version(), 2);
    let moved = (0..1000)
        .filter(|&s| {
            let now = cluster.client.replicas_of(&tag_of(s))[0];
            now != before[s as usize]
        })
        .count();
    // Consistent hashing: ~K/N = 250 of 1000 primaries move, all to the
    // new node; well under half in any case.
    assert!(
        (100..=450).contains(&moved),
        "adding 1 of 4 nodes moved {moved}/1000 primaries"
    );

    cluster.client.remove_node(3);
    assert_eq!(cluster.client.ring_version(), 3);
    for s in 0..1000 {
        assert_eq!(
            cluster.client.replicas_of(&tag_of(s))[0],
            before[s as usize],
            "removing the node must restore the old placement"
        );
    }
    match cluster.client.roundtrip(&Message::RingRequest).unwrap() {
        Message::RingResponse(body) => {
            assert_eq!(body.version, 3);
            assert_eq!(body.nodes.len(), 3);
        }
        other => panic!("unexpected {other:?}"),
    }
}
