//! Event-loop server integration: per-server telemetry isolation, frame
//! deadlines against slow-loris peers, protocol-error containment, and
//! busy-frame backpressure riding the resilience layer.
//!
//! All tests in this binary share one process-global telemetry registry,
//! so registry assertions are written per-label or as monotonic deltas.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use speed_core::{
    CoreError, ReplayQueue, ResilienceConfig, ResilienceStats, ResilientClient,
    RetryPolicy, StoreClient, TcpClient,
};
use speed_enclave::attestation::{create_report, Quote, REPORT_DATA_LEN};
use speed_enclave::{CostModel, Platform};
use speed_store::server::{ServerConfig, StoreServer, TcpStoreClient};
use speed_store::{ResultStore, StoreConfig, StoreError};
use speed_telemetry::{names, MetricValue};
use speed_wire::frame::{read_frame, write_frame};
use speed_wire::{
    from_bytes, to_bytes, AppId, CompTag, Message, Record, Role, SecureChannel,
    SessionAuthority,
};

fn world(seed: u64) -> (Arc<Platform>, Arc<ResultStore>, Arc<SessionAuthority>) {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::with_seed(seed));
    (platform, store, authority)
}

fn spawn(
    store: &Arc<ResultStore>,
    platform: &Arc<Platform>,
    authority: &Arc<SessionAuthority>,
    config: ServerConfig,
) -> StoreServer {
    StoreServer::spawn_with_config(
        Arc::clone(store),
        Arc::clone(platform),
        Arc::clone(authority),
        "127.0.0.1:0",
        config,
    )
    .unwrap()
}

fn sample_record() -> Record {
    Record {
        challenge: vec![1u8; 32],
        wrapped_key: [2u8; 16],
        nonce: [3u8; 12],
        boxed_result: vec![4u8; 64],
    }
}

/// Runs the client side of the attested handshake by hand, returning the
/// raw stream and channel so tests can inject malformed traffic.
fn manual_handshake(
    server: &StoreServer,
    platform: &Platform,
    authority: &SessionAuthority,
    name: &[u8],
) -> (TcpStream, SecureChannel) {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let enclave = platform.create_enclave(name).unwrap();
    let report = create_report(platform, &enclave, &[0u8; REPORT_DATA_LEN]);
    let client_quote = authority.service().quote(platform, &report).unwrap();
    write_frame(&mut stream, &client_quote.to_bytes()).unwrap();
    let server_quote = Quote::from_bytes(&read_frame(&mut stream).unwrap()).unwrap();
    authority.service().verify_quote(&server_quote).unwrap();
    let key = authority.session_key(&client_quote, &server_quote).unwrap();
    (stream, SecureChannel::from_session_key(key, Role::Client))
}

/// Waits until `predicate` holds or five seconds pass.
fn eventually(mut predicate: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if predicate() {
            return true;
        }
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn two_servers_keep_distinct_telemetry_series() {
    // Regression: pool gauges used to be process-global, so the second
    // server's reaping zeroed the first server's active-connections gauge.
    let (platform, store, authority) = world(21);
    let server_a = spawn(&store, &platform, &authority, ServerConfig::default());
    let server_b = spawn(&store, &platform, &authority, ServerConfig::default());

    let e1 = platform.create_enclave(b"a-client-1").unwrap();
    let e2 = platform.create_enclave(b"a-client-2").unwrap();
    let mut a1 =
        TcpStoreClient::connect(server_a.addr(), &platform, &e1, &authority).unwrap();
    let mut a2 =
        TcpStoreClient::connect(server_a.addr(), &platform, &e2, &authority).unwrap();
    a1.roundtrip(&Message::StatsRequest).unwrap();
    a2.roundtrip(&Message::StatsRequest).unwrap();

    // Server B sees one connection come and go, then shuts down entirely —
    // none of which may disturb server A's accounting.
    {
        let e3 = platform.create_enclave(b"b-client").unwrap();
        let mut b1 =
            TcpStoreClient::connect(server_b.addr(), &platform, &e3, &authority).unwrap();
        b1.roundtrip(&Message::StatsRequest).unwrap();
    }
    assert!(eventually(|| server_b.stats().active == 0));
    server_b.shutdown();

    assert_eq!(server_a.stats().active, 2, "server A's own counter survives");
    // The registry must carry a series still reading 2 — with the old
    // shared gauge, B's reap left every server's series at 0.
    let snapshot = speed_telemetry::global().snapshot();
    let readings: Vec<u64> = snapshot
        .metrics
        .iter()
        .filter(|m| m.name == names::SERVER_CONNECTIONS_ACTIVE)
        .filter_map(|m| match m.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        })
        .collect();
    assert!(
        readings.contains(&2),
        "server A's labelled gauge must still read 2, got {readings:?}"
    );
    // Both servers registered distinct label sets.
    assert!(readings.len() >= 2, "each server owns its own series");

    a1.roundtrip(&Message::StatsRequest).unwrap();
    server_a.shutdown();
}

#[test]
fn slow_loris_cannot_stall_shutdown() {
    // Regression: a worker blocked in a frame read used to ignore shutdown
    // for up to the 5 s frame timeout when a client dribbled bytes.
    let (platform, store, authority) = world(22);
    let server = spawn(&store, &platform, &authority, ServerConfig::default());

    let mut loris = TcpStream::connect(server.addr()).unwrap();
    // One byte of the 4-byte frame header, then silence.
    loris.write_all(&[1u8]).unwrap();
    assert!(eventually(|| server.stats().accepted >= 1));

    let start = Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "shutdown must not wait out the frame timeout, took {:?}",
        start.elapsed()
    );
    drop(loris);
}

#[test]
fn mid_frame_stall_trips_deadline_and_frees_slot() {
    let (platform, store, authority) = world(23);
    let server = spawn(
        &store,
        &platform,
        &authority,
        ServerConfig {
            frame_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
    );

    let mut loris = TcpStream::connect(server.addr()).unwrap();
    loris.write_all(&[1u8]).unwrap();
    assert!(
        eventually(|| server.stats().frame_timeouts >= 1),
        "the per-frame deadline must fire"
    );
    assert!(eventually(|| server.stats().active == 0), "the slot must free");

    // The freed capacity serves a well-behaved client normally.
    let enclave = platform.create_enclave(b"after-loris").unwrap();
    let mut client =
        TcpStoreClient::connect(server.addr(), &platform, &enclave, &authority).unwrap();
    client.roundtrip(&Message::StatsRequest).unwrap();
    drop(loris);
    server.shutdown();
}

#[test]
fn protocol_errors_drop_one_connection_and_spare_the_rest() {
    let (platform, store, authority) = world(24);
    let server = spawn(&store, &platform, &authority, ServerConfig::default());

    // A healthy bystander connection that must survive every abuse below.
    let bystander_enclave = platform.create_enclave(b"bystander").unwrap();
    let mut bystander =
        TcpStoreClient::connect(server.addr(), &platform, &bystander_enclave, &authority)
            .unwrap();
    bystander.roundtrip(&Message::StatsRequest).unwrap();
    let baseline = server.stats().protocol_errors;

    // 1. Garbage where a sealed frame should be: opens fine as a frame,
    //    fails authenticated decryption.
    let (mut garbage, _channel) =
        manual_handshake(&server, &platform, &authority, b"garbage-client");
    write_frame(&mut garbage, &[0xABu8; 48]).unwrap();
    assert!(eventually(|| server.stats().protocol_errors > baseline));

    // 2. Oversized declared length: a header promising 3 GiB trips the
    //    frame cap before any payload is read.
    let (mut oversized, _channel) =
        manual_handshake(&server, &platform, &authority, b"oversized-client");
    oversized.write_all(&(3u32 << 30).to_le_bytes()).unwrap();
    assert!(eventually(|| server.stats().protocol_errors >= baseline + 2));

    // 3. Truncated frame mid-session: the peer vanishes halfway through a
    //    declared payload.
    let (mut truncated, _channel) =
        manual_handshake(&server, &platform, &authority, b"truncated-client");
    let mut partial = Vec::new();
    partial.extend_from_slice(&64u32.to_le_bytes()); // promises 64 bytes...
    partial.extend_from_slice(&[0x55u8; 20]); // ...delivers 20
    truncated.write_all(&partial).unwrap();
    drop(truncated); // FIN mid-frame
    assert!(eventually(|| server.stats().protocol_errors >= baseline + 3));

    // The bystander never noticed.
    bystander.roundtrip(&Message::StatsRequest).unwrap();
    let tag = CompTag::from_bytes([24u8; 32]);
    let put = bystander
        .roundtrip(&Message::PutRequest { app: AppId(9), tag, record: sample_record() })
        .unwrap();
    assert!(matches!(put, Message::PutResponse(b) if b.accepted));
    server.shutdown();
}

#[test]
fn busy_rejection_is_retryable_through_the_resilience_layer() {
    let (platform, store, authority) = world(25);
    let server = spawn(
        &store,
        &platform,
        &authority,
        ServerConfig { max_connections: 1, ..ServerConfig::default() },
    );

    let holder_enclave = platform.create_enclave(b"budget-holder").unwrap();
    let mut holder =
        TcpStoreClient::connect(server.addr(), &platform, &holder_enclave, &authority)
            .unwrap();
    holder.roundtrip(&Message::StatsRequest).unwrap();

    // Direct connect surfaces the typed busy error...
    let direct_enclave = platform.create_enclave(b"direct").unwrap();
    match TcpStoreClient::connect(server.addr(), &platform, &direct_enclave, &authority) {
        Err(StoreError::Busy(_)) => {}
        other => panic!("expected busy, got {other:?}"),
    }

    // ...and the resilience layer treats it as transient: retries span the
    // holder's release and the call ultimately succeeds.
    let addr = server.addr();
    let retry_platform = Arc::clone(&platform);
    let retry_authority = Arc::clone(&authority);
    let connector: speed_core::Connector = Box::new(move || {
        let enclave = retry_platform.create_enclave(b"retrying-client").unwrap();
        let client =
            TcpClient::connect(addr, &retry_platform, &enclave, &retry_authority)?;
        Ok(Box::new(client) as Box<dyn StoreClient>)
    });
    let mut resilient = ResilientClient::new(
        connector,
        ResilienceConfig {
            retry: RetryPolicy {
                max_attempts: 20,
                base_delay: Duration::from_millis(25),
                max_delay: Duration::from_millis(50),
                jitter: 0.0,
            },
            call_budget: Duration::from_secs(10),
            jitter_seed: Some(7),
            ..ResilienceConfig::default()
        },
        Arc::new(ResilienceStats::default()),
        Arc::new(ReplayQueue::new(16)),
    );

    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        drop(holder);
    });
    let response = resilient.roundtrip(&Message::StatsRequest);
    release.join().unwrap();
    match response {
        Ok(Message::StatsResponse(_)) => {}
        other => panic!("busy must be survivable via retry, got {other:?}"),
    }
    assert!(server.stats().rejected >= 1, "the busy path was actually exercised");
    server.shutdown();
}

#[test]
fn busy_error_converts_to_core_error() {
    // The From impl the resilience layer depends on: a connector returning
    // StoreError::Busy must flow through CoreError without losing the kind.
    let err: CoreError = StoreError::Busy("saturated".into()).into();
    assert!(err.to_string().contains("busy"));
    let _ = from_bytes::<Message>(&to_bytes(&Message::StatsRequest)).unwrap();
}
