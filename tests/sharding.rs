//! Concurrency stress tests for the sharded `ResultStore`.
//!
//! The dictionary is partitioned into lock shards routed by tag prefix;
//! these tests drive a mixed GET/PUT/batch workload from many threads and
//! check the invariants that sharding must not break: no entry is lost, the
//! byte accounting balances exactly, and eviction stays within each shard's
//! budget slice.

use std::sync::Arc;

use speed_enclave::{CostModel, Platform};
use speed_store::{QuotaPolicy, ResultStore, StoreConfig};
use speed_wire::{AppId, BatchItem, BatchStatus, CompTag, Message, Record};

fn tag(thread: u8, i: u16) -> CompTag {
    // Leading byte spreads tags across shards; the rest keeps tags unique
    // per (thread, i).
    let mut bytes = [0u8; 32];
    bytes[0] = (i % 251) as u8;
    bytes[1] = thread;
    bytes[2..4].copy_from_slice(&i.to_le_bytes());
    CompTag::from_bytes(bytes)
}

fn record(fill: u8, len: usize) -> Record {
    Record {
        challenge: vec![fill; 32],
        wrapped_key: [fill; 16],
        nonce: [fill; 12],
        boxed_result: vec![fill; len],
    }
}

const THREADS: u8 = 8;
const DIRECT_PUTS: u16 = 40;
const BATCHES: u16 = 10;
const BATCH_PUTS: u16 = 4;
const RECORD_LEN: usize = 64;

/// 8 threads hammer the store with direct PUTs, direct GETs, and mixed
/// batches. Every entry written must be retrievable afterwards and the
/// aggregate byte accounting must balance to the exact total.
#[test]
fn concurrent_mixed_workload_loses_nothing() {
    let platform = Platform::new(CostModel::default_sgx());
    let config =
        StoreConfig { quota: QuotaPolicy::unlimited(), ..StoreConfig::default() };
    let store = Arc::new(ResultStore::new(&platform, config).unwrap());
    assert!(store.shard_count() > 1, "stress test needs a sharded store");

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                let app = AppId(u64::from(thread));
                // Direct PUT + immediate GET-back.
                for i in 0..DIRECT_PUTS {
                    let t = tag(thread, i);
                    let put = store.handle(Message::PutRequest {
                        app,
                        tag: t,
                        record: record(thread, RECORD_LEN),
                    });
                    assert!(
                        matches!(put, Message::PutResponse(ref b) if b.accepted),
                        "thread {thread} put {i} rejected: {put:?}"
                    );
                    let get = store.handle(Message::GetRequest { app, tag: t });
                    assert!(
                        matches!(get, Message::GetResponse(ref b) if b.found),
                        "thread {thread} lost its own entry {i}"
                    );
                }
                // Batches mixing fresh PUTs with GETs of earlier entries.
                for batch in 0..BATCHES {
                    let mut items = Vec::new();
                    for p in 0..BATCH_PUTS {
                        let i = DIRECT_PUTS + batch * BATCH_PUTS + p;
                        items.push(BatchItem::Put {
                            tag: tag(thread, i),
                            record: record(thread, RECORD_LEN),
                        });
                    }
                    items.push(BatchItem::Get { tag: tag(thread, batch) });
                    let response = store.handle(Message::BatchRequest { app, items });
                    match response {
                        Message::BatchResponse(results) => {
                            for result in &results[..BATCH_PUTS as usize] {
                                assert_eq!(result.status, BatchStatus::Accepted);
                            }
                            assert_eq!(
                                results[BATCH_PUTS as usize].status,
                                BatchStatus::Found,
                                "thread {thread} batch {batch} lost an earlier entry"
                            );
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            });
        }
    });

    let per_thread = u64::from(DIRECT_PUTS) + u64::from(BATCHES * BATCH_PUTS);
    let expected_entries = u64::from(THREADS) * per_thread;
    let stats = store.stats();
    assert_eq!(stats.entries, expected_entries, "entries lost under concurrency");
    assert_eq!(
        stats.stored_bytes,
        expected_entries * RECORD_LEN as u64,
        "byte accounting drifted under concurrency"
    );
    // Per-shard counters must sum to the aggregate exactly.
    assert_eq!(stats.shards.iter().map(|s| s.entries).sum::<u64>(), stats.entries);
    assert_eq!(
        stats.shards.iter().map(|s| s.stored_bytes).sum::<u64>(),
        stats.stored_bytes
    );
    assert_eq!(stats.evictions, 0, "capacity was sized to avoid eviction");

    // Every single entry is still retrievable.
    for thread in 0..THREADS {
        let app = AppId(u64::from(thread));
        for i in 0..(DIRECT_PUTS + BATCHES * BATCH_PUTS) {
            let get = store.handle(Message::GetRequest { app, tag: tag(thread, i) });
            match get {
                Message::GetResponse(body) => {
                    let rec = body.record.unwrap_or_else(|| {
                        panic!("thread {thread} entry {i} missing after the storm")
                    });
                    assert_eq!(rec.boxed_result, vec![thread; RECORD_LEN]);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}

/// Under concurrent overload, each shard evicts against its own slice of
/// the store budget — no shard exceeds its per-shard cap, and the whole
/// store converges to at most the configured maximum.
#[test]
fn eviction_budgets_hold_under_concurrent_pressure() {
    let platform = Platform::new(CostModel::default_sgx());
    let shards = 4usize;
    let max_entries = 32usize; // 8 per shard
    let config = StoreConfig {
        max_entries,
        max_stored_bytes: u64::MAX,
        quota: QuotaPolicy::unlimited(),
        ttl_ms: None,
        access: speed_store::AccessControl::Open,
        shards,
    };
    let store = Arc::new(ResultStore::new(&platform, config).unwrap());
    let per_shard_budget = max_entries.div_ceil(shards) as u64;

    // 8 threads push 4x the total capacity.
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                let app = AppId(u64::from(thread));
                for i in 0..(max_entries as u16 / 2) {
                    store.handle(Message::PutRequest {
                        app,
                        tag: tag(thread, i),
                        record: record(thread, 16),
                    });
                }
            });
        }
    });

    let stats = store.stats();
    assert!(stats.evictions > 0, "overload must trigger eviction");
    assert!(
        stats.entries <= max_entries as u64,
        "store exceeded its entry budget: {}",
        stats.entries
    );
    for (index, shard) in stats.shards.iter().enumerate() {
        assert!(
            shard.entries <= per_shard_budget,
            "shard {index} exceeded its budget slice: {} > {per_shard_budget}",
            shard.entries
        );
    }
    // Quota accounting survived the eviction storm: evicted entries were
    // refunded, so every thread can still PUT.
    for thread in 0..THREADS {
        let response = store.handle(Message::PutRequest {
            app: AppId(u64::from(thread)),
            tag: tag(thread, 9999),
            record: record(thread, 16),
        });
        assert!(matches!(response, Message::PutResponse(ref b) if b.accepted));
    }
}
