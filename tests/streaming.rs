//! Streaming chunked dedup, end to end: `execute_stream` must produce
//! byte-identical reassembled output to whole-call `execute_raw` for any
//! chunk-local computation — over a seeded partial-overlap corpus, across
//! a mid-stream store outage, and across a crash-reload of the
//! log-structured backend.
//!
//! The corpus is the workload shape the streaming path exists for: no two
//! documents are byte-identical (whole-call dedup scores zero hits), but
//! they share long segments (chunk-level dedup scores many).

use std::sync::Arc;

use speed_core::{
    BreakerConfig, Connector, DedupOutcome, DedupRuntime, FuncDesc, InProcessClient,
    OutageSwitch, ResilienceConfig, RetryPolicy, StoreClient, StreamConfig,
    SwitchedClient, TrustedLibrary,
};
use speed_enclave::{CostModel, Platform};
use speed_store::{LogBackend, LogConfig, QuotaPolicy, ResultStore, StoreConfig};
use speed_wire::SessionAuthority;
use speed_workloads::{overlap_corpus, OverlapConfig};

fn library() -> TrustedLibrary {
    let mut lib = TrustedLibrary::new("streamlib", "1.0");
    lib.register("bytes shift(bytes)", b"shift code");
    lib
}

fn desc() -> FuncDesc {
    FuncDesc::new("streamlib", "1.0", "bytes shift(bytes)")
}

/// The marked computation: a byte-wise map, so it is chunk-local and the
/// concatenation of per-chunk outputs equals the whole-input output —
/// the precondition `open_stream` documents.
fn shift(input: &[u8]) -> Vec<u8> {
    input.iter().map(|b| b.wrapping_mul(31).wrapping_add(7)).collect()
}

/// Segments span several `ChunkerConfig::SMALL` max-lengths so shared
/// runs survive boundary effects at segment joins.
fn corpus(seed: u64) -> Vec<Vec<u8>> {
    overlap_corpus(
        OverlapConfig {
            documents: 10,
            segments_per_document: 6,
            segment_bytes: 4096,
            shared_pool: 8,
            overlap: 0.5,
        },
        seed,
    )
}

fn in_process_runtime(
    platform: &Arc<Platform>,
    store: &Arc<ResultStore>,
    authority: &Arc<SessionAuthority>,
    code: &[u8],
) -> Arc<DedupRuntime> {
    DedupRuntime::builder(Arc::clone(platform), code)
        .in_process_store(Arc::clone(store), Arc::clone(authority))
        .trusted_library(library())
        .build()
        .unwrap()
}

#[test]
fn stream_matches_whole_call_and_finds_partial_overlap() {
    let platform = Platform::new(CostModel::no_sgx());
    let authority = Arc::new(SessionAuthority::with_seed(21));
    // Separate stores so the two paths cannot feed each other results.
    let stream_store =
        Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let whole_store =
        Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let stream_rt = in_process_runtime(&platform, &stream_store, &authority, b"s-app");
    let whole_rt = in_process_runtime(&platform, &whole_store, &authority, b"w-app");
    let stream_id = stream_rt.resolve(&desc()).unwrap();
    let whole_id = whole_rt.resolve(&desc()).unwrap();

    let documents = corpus(0x5EED_2001);
    let mut chunk_hits = 0u64;
    let mut chunks = 0u64;
    for document in &documents {
        let outcome = stream_rt
            .execute_stream(stream_id, StreamConfig::SMALL, document, shift)
            .unwrap();
        let (whole, whole_outcome) =
            whole_rt.execute_raw(&whole_id, document, shift).unwrap();
        assert_eq!(
            outcome.concat(),
            whole,
            "streaming output diverged from whole-call output"
        );
        assert_eq!(whole, shift(document));
        assert_eq!(outcome.stats.bytes_in as usize, document.len());
        assert_eq!(outcome.stats.bytes_out as usize, document.len());
        // Documents are pairwise distinct, so the whole-call path never
        // hits...
        assert_eq!(whole_outcome, DedupOutcome::Miss);
        chunk_hits += outcome.stats.chunk_hits;
        chunks += outcome.stats.chunks;
    }
    // ...while shared segments make a healthy fraction of chunks hit.
    assert_eq!(whole_rt.stats().hits, 0, "whole-call dedup must score zero");
    assert!(
        chunk_hits * 5 >= chunks,
        "expected >=20% chunk-level hits on a 50%-overlap corpus, \
         got {chunk_hits}/{chunks}"
    );

    // Second pass: every chunk is now known, so streams are pure hits and
    // still reassemble correctly.
    for document in &documents {
        let outcome = stream_rt
            .execute_stream(stream_id, StreamConfig::SMALL, document, |_| {
                panic!("second pass must be served from dedup")
            })
            .unwrap();
        assert_eq!(outcome.concat(), shift(document));
        assert_eq!(outcome.stats.chunk_misses, 0);
    }
}

#[test]
fn stream_output_is_invariant_to_push_fragmentation() {
    let platform = Platform::new(CostModel::no_sgx());
    let authority = Arc::new(SessionAuthority::with_seed(22));
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let rt = in_process_runtime(&platform, &store, &authority, b"frag-app");
    let identity = rt.resolve(&desc()).unwrap();
    let document = corpus(0x5EED_2002).swap_remove(0);

    let whole =
        rt.execute_stream(identity, StreamConfig::SMALL, &document, shift).unwrap();
    for fragment in [1usize, 17, 1000, 4096] {
        let mut session = rt.open_stream(identity, StreamConfig::SMALL, shift);
        for piece in document.chunks(fragment) {
            session.push(piece).unwrap();
        }
        let pieced = session.finish().unwrap();
        assert_eq!(pieced.concat(), whole.concat(), "fragment size {fragment}");
        assert_eq!(pieced.stats.chunks, whole.stats.chunks);
    }
}

#[test]
fn stream_survives_mid_stream_store_outage() {
    let platform = Platform::new(CostModel::no_sgx());
    let authority = Arc::new(SessionAuthority::with_seed(23));
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let switch = Arc::new(OutageSwitch::new());
    let connector: Connector = {
        let platform = Arc::clone(&platform);
        let authority = Arc::clone(&authority);
        let store = Arc::clone(&store);
        let switch = Arc::clone(&switch);
        let enclave = platform.create_enclave(b"outage-client").unwrap();
        Box::new(move || {
            let inner = InProcessClient::connect(
                Arc::clone(&store),
                &authority,
                &platform,
                &enclave,
            )?;
            Ok(Box::new(SwitchedClient::new(Box::new(inner), Arc::clone(&switch)))
                as Box<dyn StoreClient>)
        })
    };
    let rt = DedupRuntime::builder(Arc::clone(&platform), b"outage-app")
        .client_factory(connector)
        .resilience(ResilienceConfig {
            retry: RetryPolicy::none(),
            breaker: BreakerConfig {
                failure_threshold: u32::MAX,
                cooldown: std::time::Duration::ZERO,
            },
            ..ResilienceConfig::default()
        })
        .trusted_library(library())
        .build()
        .unwrap();
    let identity = rt.resolve(&desc()).unwrap();
    let document = corpus(0x5EED_2003).swap_remove(1);
    let (head, tail) = document.split_at(document.len() / 2);

    // The store dies between two pushes of one session; the session must
    // stay usable and the reassembled output must be exact.
    let mut session = rt.open_stream(identity, StreamConfig::SMALL, shift);
    session.push(head).unwrap();
    let resolved_before_outage = session.chunks_resolved();
    switch.set_down(true);
    session.push(tail).unwrap();
    let outcome = session.finish().unwrap();
    assert_eq!(outcome.concat(), shift(&document));
    assert!(
        session_chunks(&outcome) > resolved_before_outage,
        "outage-side chunks must still resolve"
    );
    assert!(
        rt.stats().degraded_calls > 0,
        "outage chunks must be marked degraded, not silently retried"
    );

    // Store comes back: the same document streams again, and the chunks
    // computed *before* the outage (whose PUTs landed) hit.
    switch.set_down(false);
    let again =
        rt.execute_stream(identity, StreamConfig::SMALL, &document, shift).unwrap();
    assert_eq!(again.concat(), shift(&document));
    assert!(again.stats.chunk_hits > 0, "pre-outage chunks must hit after recovery");
}

fn session_chunks(outcome: &speed_core::StreamOutcome) -> usize {
    outcome.parts.len()
}

#[test]
fn stream_chunks_survive_log_backend_crash_reload() {
    let platform = Platform::with_seed(CostModel::no_sgx(), Some(0xC8A5_57E2));
    let authority = Arc::new(SessionAuthority::with_seed(24));
    let dir =
        std::env::temp_dir().join(format!("speed-stream-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = StoreConfig::with_capacity(100_000, u64::MAX);
    config.quota = QuotaPolicy::unlimited();

    let documents = corpus(0x5EED_2004);
    let (first_half, second_half) = documents.split_at(documents.len() / 2);

    // Run 1: stream the first half, then "crash" (drop without shutdown —
    // the WAL is the only survivor).
    {
        let backend = Arc::new(LogBackend::new(LogConfig::new(&dir)));
        let (store, _report) =
            ResultStore::open(&platform, config.clone(), backend).unwrap();
        let store = Arc::new(store);
        let rt = in_process_runtime(&platform, &store, &authority, b"crash-app");
        let identity = rt.resolve(&desc()).unwrap();
        for document in first_half {
            let outcome = rt
                .execute_stream(identity, StreamConfig::SMALL, document, shift)
                .unwrap();
            assert_eq!(outcome.concat(), shift(document));
        }
    }

    // Run 2: replay the WAL into a fresh store; chunks from run 1 must be
    // hits, and the rest of the corpus streams correctly.
    let backend = Arc::new(LogBackend::new(LogConfig::new(&dir)));
    let (store, _report) = ResultStore::open(&platform, config, backend).unwrap();
    let store = Arc::new(store);
    let rt = in_process_runtime(&platform, &store, &authority, b"crash-app");
    let identity = rt.resolve(&desc()).unwrap();
    let mut replayed_hits = 0u64;
    for document in first_half {
        let outcome =
            rt.execute_stream(identity, StreamConfig::SMALL, document, shift).unwrap();
        assert_eq!(outcome.concat(), shift(document));
        replayed_hits += outcome.stats.chunk_hits;
    }
    assert!(
        replayed_hits > 0,
        "chunks stored before the crash must hit after WAL replay"
    );
    for document in second_half {
        let outcome =
            rt.execute_stream(identity, StreamConfig::SMALL, document, shift).unwrap();
        assert_eq!(outcome.concat(), shift(document));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
