//! Wire-protocol fuzzing: round-trips, hostile bytes, and frames.
//!
//! Three layers of assault on `speed-wire`:
//! 1. every randomly generated [`Message`] must round-trip bit-exactly;
//! 2. mutated, truncated, and random buffers must produce a typed
//!    `WireError` — never a panic — and any buffer that *does* decode must
//!    be canonical (re-encoding reproduces the input bytes);
//! 3. the length-prefixed framing must reject oversized declarations and
//!    report truncation as `UnexpectedEof`.
//!
//! Inputs that once found bugs live on as the checked-in corpus under
//! `tests/fixtures/fuzz/` (see the `corpus_regressions` test).

use std::io::Cursor;
use std::path::PathBuf;

use speed_testkit::{check, corpus, mutate, wiregen, TestRng};
use speed_wire::frame::{read_frame, write_frame, MAX_FRAME_LEN};
use speed_wire::{from_bytes, to_bytes, Message};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fuzz")
}

/// Decoding must be total: Ok or typed error, never a panic. Returns the
/// decoded message when the bytes were valid.
fn decode_must_not_panic(bytes: &[u8], context: &str) -> Option<Message> {
    let result = std::panic::catch_unwind(|| from_bytes::<Message>(bytes));
    match result {
        Ok(decoded) => decoded.ok(),
        Err(_) => panic!("{context}: decoder panicked on {bytes:02x?}"),
    }
}

#[test]
fn every_message_roundtrips() {
    check(
        "every_message_roundtrips",
        0x5EED_1001,
        |rng| {
            let message = wiregen::message(rng, 64);
            speed_testkit::shrink::NoShrink(message)
        },
        |message| {
            let bytes = to_bytes(&message.0);
            let decoded = from_bytes::<Message>(&bytes).expect("valid encoding");
            assert_eq!(decoded, message.0, "round-trip changed the message");
        },
    );
}

/// Mutated valid encodings: never panic, and when the mutant still decodes
/// the codec must be canonical — re-encoding yields the exact mutant bytes
/// (no two byte strings decode to the same value).
#[test]
fn mutated_messages_error_cleanly_and_stay_canonical() {
    check(
        "mutated_messages_error_cleanly_and_stay_canonical",
        0x5EED_1002,
        |rng| {
            let message = wiregen::message(rng, 48);
            let bytes = to_bytes(&message);
            let mut fork = rng.fork();
            mutate::mutated(&mut fork, &bytes, 4)
        },
        |mutant: &Vec<u8>| {
            if let Some(decoded) = decode_must_not_panic(mutant, "mutant") {
                assert_eq!(
                    to_bytes(&decoded),
                    *mutant,
                    "non-canonical encoding accepted"
                );
            }
        },
    );
}

#[test]
fn random_bytes_never_panic_the_decoder() {
    check(
        "random_bytes_never_panic_the_decoder",
        0x5EED_1003,
        |rng| rng.bytes(256),
        |bytes: &Vec<u8>| {
            decode_must_not_panic(bytes, "random bytes");
        },
    );
}

/// Truncating a valid frame at every possible point yields `UnexpectedEof`
/// (or, for cuts inside the header, EOF as well) — never a panic, never a
/// short read that silently succeeds.
#[test]
fn truncated_frames_are_clean_eof() {
    check(
        "truncated_frames_are_clean_eof",
        0x5EED_1004,
        |rng| {
            let payload = rng.bytes(64);
            let cut_ratio = rng.next_u32();
            (payload, cut_ratio)
        },
        |case: &(Vec<u8>, u32)| {
            let (payload, cut_ratio) = case;
            let mut framed = Vec::new();
            write_frame(&mut framed, payload).expect("frame within limit");
            // Cut strictly before the end so the frame is always incomplete.
            let cut = (*cut_ratio as usize) % framed.len().max(1);
            framed.truncate(cut);
            let err = read_frame(Cursor::new(framed)).expect_err("truncated frame");
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        },
    );
}

/// Hostile 4-byte headers: any declared length over the cap is rejected as
/// `InvalidData` before any payload is read; in-cap declarations with a
/// short stream fail with EOF (the incremental reader never trusts the
/// header with a single allocation).
#[test]
fn hostile_frame_headers_are_rejected() {
    check(
        "hostile_frame_headers_are_rejected",
        0x5EED_1005,
        |rng| rng.next_u32(),
        |declared: &u32| {
            let mut buf = declared.to_le_bytes().to_vec();
            buf.extend_from_slice(&[0u8; 32]);
            match read_frame(Cursor::new(buf)) {
                Ok(payload) => assert_eq!(payload.len(), *declared as usize),
                Err(err) if (*declared as usize) > MAX_FRAME_LEN => {
                    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData)
                }
                Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof),
            }
        },
    );
}

/// Every checked-in corpus input decodes to a typed error (or, for the
/// canonical ones, decodes and re-encodes identically) without panicking.
/// These are permanent regression tests for past findings and hand-built
/// hostile inputs.
#[test]
fn corpus_regressions() {
    let entries = corpus::load_dir(&corpus_dir())
        .expect("fuzz corpus missing: run `cargo test -- --ignored regenerate_corpus`");
    assert!(!entries.is_empty(), "fuzz corpus is empty");
    for entry in entries {
        if let Some(decoded) = decode_must_not_panic(&entry.bytes, &entry.name) {
            assert_eq!(
                to_bytes(&decoded),
                entry.bytes,
                "{}: decoded non-canonically",
                entry.name
            );
        }
    }
}

/// Rebuilds the corpus from its recipes. Run explicitly after changing the
/// wire format: `cargo test --test wire_fuzz -- --ignored regenerate_corpus`
#[test]
#[ignore = "writes tests/fixtures/fuzz; run explicitly to regenerate"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    let mut rng = TestRng::new(0x5EED_C05E);

    // A valid message of each interesting shape, then targeted corruptions.
    let valid = to_bytes(&wiregen::message(&mut rng, 32));
    corpus::save(&dir, "valid_message.bin", &valid).unwrap();

    // Unknown envelope tag.
    let mut unknown_tag = valid.clone();
    unknown_tag[0] = 0xEE;
    corpus::save(&dir, "unknown_tag.bin", &unknown_tag).unwrap();

    // Truncated mid-structure.
    let put = to_bytes(&Message::PutRequest {
        app: speed_wire::AppId(7),
        tag: wiregen::comp_tag(&mut rng),
        record: wiregen::record(&mut rng, 32),
    });
    corpus::save(&dir, "truncated_put.bin", &put[..put.len() / 2]).unwrap();

    // Length prefix far beyond the remaining bytes.
    let mut overflow = put.clone();
    let at = overflow.len() - 8;
    overflow[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    corpus::save(&dir, "length_overflow.bin", &overflow).unwrap();

    // A SyncBatch claiming a huge entry count with no entries behind it.
    let sync = to_bytes(&Message::SyncBatch(vec![wiregen::sync_entry(&mut rng, 16)]));
    let mut hostile_count = sync.clone();
    hostile_count[1..5].copy_from_slice(&0xFFFF_FF00u32.to_le_bytes());
    corpus::save(&dir, "hostile_seq_count.bin", &hostile_count).unwrap();

    // A bool byte that is neither 0 nor 1 (strict decoders reject it).
    let get_response = to_bytes(&Message::GetResponse(speed_wire::GetResponseBody {
        found: false,
        record: None,
    }));
    let mut bad_bool = get_response.clone();
    bad_bool[1] = 0x02;
    corpus::save(&dir, "bool_junk.bin", &bad_bool).unwrap();

    // Trailing garbage after a complete message.
    let mut trailing = get_response.clone();
    trailing.extend_from_slice(b"junk");
    corpus::save(&dir, "trailing_garbage.bin", &trailing).unwrap();

    // Empty input.
    corpus::save(&dir, "empty.bin", &[]).unwrap();

    // A handful of seeded random mutants of a batch request, frozen.
    let batch = to_bytes(&Message::BatchRequest {
        app: speed_wire::AppId(1),
        items: (0..3).map(|_| wiregen::batch_item(&mut rng, 24)).collect(),
    });
    for i in 0..4 {
        let mutant = mutate::mutated(&mut rng, &batch, 3);
        corpus::save(&dir, &format!("mutant_batch_{i}.bin"), &mutant).unwrap();
    }
}
