//! Property suite for the tiered tag pipeline's negative-lookup filters.
//!
//! The load-bearing contract is conservatism: a filter may say "maybe" for
//! an absent key (false positive — wasted recompute), but must NEVER say
//! "definitely absent" for a present one (false negative — a correctness
//! bug, because the runtime skips the store round trip on that answer).
//! These properties drive random key sets, eviction pressure, shard
//! merging, and crash reloads at the filter, and assert the no-false-
//! negative side holds unconditionally while the false-positive side stays
//! within its design budget. Failures shrink and print a
//! `SPEED_TESTKIT_SEED=…` reproducer (see docs/TESTING.md).

use std::sync::Arc;

use speed_core::{prefilter_tag, DedupRuntime, FuncDesc, FuncIdentity, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_store::{LogBackend, LogConfig, ResultStore, StoreConfig};
use speed_testkit::{check, TestRng};
use speed_wire::{
    AppId, CompTag, Message, NegativeFilter, Record, SessionAuthority, COMP_TAG_LEN,
};

/// Builds function identities for each code blob via a throwaway runtime
/// (the only public path from code bytes to a `FuncIdentity`).
fn identities(codes: &[Vec<u8>]) -> Vec<FuncIdentity> {
    let platform = Platform::new(CostModel::no_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::new());
    let mut library = TrustedLibrary::new("lib", "1");
    for (index, code) in codes.iter().enumerate() {
        library.register(format!("f{index}()"), code);
    }
    let rt = DedupRuntime::builder(Arc::clone(&platform), b"filter-props")
        .in_process_store(store, authority)
        .trusted_library(library)
        .build()
        .unwrap();
    (0..codes.len())
        .map(|index| {
            rt.resolve(&FuncDesc::new("lib", "1", format!("f{index}()"))).unwrap()
        })
        .collect()
}

fn tag_of(seed: u8) -> CompTag {
    CompTag::from_bytes([seed; COMP_TAG_LEN])
}

fn record_of(seed: u8, len: usize) -> Record {
    Record {
        challenge: vec![seed; 32],
        wrapped_key: [seed; 16],
        nonce: [seed; 12],
        boxed_result: vec![seed; len],
    }
}

/// Merges a store's per-shard filters into the single client-side view the
/// runtime consults (OR of bits; incomplete if any shard is).
fn merged_filter(store: &ResultStore) -> Option<NegativeFilter> {
    let mut shards = store.filter_snapshot().shards.into_iter();
    let mut merged = shards.next()?;
    for shard in shards {
        merged.merge_from(&shard);
    }
    Some(merged)
}

/// No false negatives, ever: whatever the filter geometry and whatever the
/// key set, every inserted key answers "maybe".
#[test]
fn inserted_keys_are_never_denied() {
    check(
        "inserted_keys_are_never_denied",
        0x5EED_6001,
        |rng| {
            let bits = rng.range_usize(1, 4096);
            let hashes = rng.byte();
            let keys: Vec<u64> =
                (0..rng.range_usize(0, 600)).map(|_| rng.next_u64()).collect();
            (bits, hashes, keys)
        },
        |case: &(usize, u8, Vec<u64>)| {
            let (bits, hashes, keys) = case;
            let mut filter = NegativeFilter::new(*bits, *hashes);
            for &key in keys {
                filter.insert(key);
            }
            for &key in keys {
                assert!(
                    filter.may_contain(key),
                    "filter denied inserted key {key:#x} (bits={bits}, hashes={hashes})"
                );
            }
        },
    );
}

/// The same holds for real prefilter tags: keys produced by
/// [`prefilter_tag`] over adversarially similar (func, input) pairs are
/// never denied once inserted — including near-duplicate inputs that only
/// differ outside the sampled regions.
#[test]
fn prefilter_tags_are_never_denied() {
    check(
        "prefilter_tags_are_never_denied",
        0x5EED_6002,
        |rng| {
            let base_len = rng.range_usize(0, 2048);
            let base = rng.bytes(base_len);
            let cases: Vec<(Vec<u8>, Vec<u8>)> = (0..rng.range_usize(1, 12))
                .map(|_| {
                    let func_len = rng.range_usize(1, 24);
                    let func = rng.bytes(func_len);
                    let mut input = base.clone();
                    // Perturb one byte so inputs cluster around `base` —
                    // the regime where a weak sampler would collide or a
                    // buggy filter would bit-alias.
                    if !input.is_empty() {
                        let at = rng.range_usize(0, input.len() - 1);
                        input[at] = input[at].wrapping_add(rng.byte());
                    }
                    (func, input)
                })
                .collect();
            cases
        },
        |cases: &Vec<(Vec<u8>, Vec<u8>)>| {
            let funcs = identities(
                &cases.iter().map(|(func, _)| func.clone()).collect::<Vec<_>>(),
            );
            let mut filter = NegativeFilter::with_capacity(cases.len() as u64);
            let tags: Vec<u64> = cases
                .iter()
                .zip(&funcs)
                .map(|((_, input), func)| prefilter_tag(func, input))
                .collect();
            for &tag in &tags {
                filter.insert(tag);
            }
            for &tag in &tags {
                assert!(filter.may_contain(tag), "prefilter tag {tag:#x} denied");
            }
        },
    );
}

/// The false-positive side stays within the design budget: at the sized
/// load (`with_capacity`, ~10 bits/entry, k=4 gives a theoretical ~1.2%
/// rate), fresh keys are denied at least 95% of the time.
#[test]
fn false_positive_rate_stays_bounded() {
    let mut rng = TestRng::new(0x5EED_6003);
    for &n in &[64u64, 512, 4096] {
        let mut filter = NegativeFilter::with_capacity(n);
        let mut inserted = std::collections::HashSet::new();
        while inserted.len() < n as usize {
            let key = rng.next_u64();
            filter.insert(key);
            inserted.insert(key);
        }
        let probes = 10_000;
        let mut false_positives = 0u32;
        for _ in 0..probes {
            let key = rng.next_u64();
            if inserted.contains(&key) {
                continue; // astronomically unlikely; keep the count honest
            }
            if filter.may_contain(key) {
                false_positives += 1;
            }
        }
        let rate = f64::from(false_positives) / f64::from(probes);
        assert!(
            rate < 0.05,
            "FP rate {rate:.4} at n={n} exceeds the 5% budget \
             (sized at ~10 bits/entry, k=4 → ~1.2% theoretical)"
        );
    }
}

/// Filter/index agreement under eviction pressure: drive a tiny store with
/// prefiltered PUTs until entries churn out, and the merged filter must
/// still answer "maybe" for every prefilter ever inserted this generation
/// (eviction removes entries but never clears bits), while staying
/// complete — a store fed only prefiltered PUTs keeps its absence proofs.
#[test]
fn eviction_never_creates_false_negatives() {
    check(
        "eviction_never_creates_false_negatives",
        0x5EED_6004,
        |rng| {
            (0..rng.range_usize(1, 60))
                .map(|_| (rng.byte(), rng.range_usize(1, 120)))
                .collect::<Vec<(u8, usize)>>()
        },
        |puts: &Vec<(u8, usize)>| {
            let platform = Platform::new(CostModel::no_sgx());
            let store = ResultStore::new(
                &platform,
                StoreConfig::with_capacity(4, 400).with_shards(4),
            )
            .expect("store");
            let app = AppId(7);
            let mut inserted = Vec::new();
            for &(seed, len) in puts {
                let prefilter = u64::from(seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                store.handle(Message::PutPrefiltered {
                    app,
                    tag: tag_of(seed),
                    prefilter,
                    record: record_of(seed, len),
                });
                inserted.push(prefilter);
                let merged = merged_filter(&store).expect("shards");
                assert!(
                    merged.is_complete(),
                    "prefilter-only traffic must keep every shard complete"
                );
                for &tag in &inserted {
                    assert!(
                        merged.may_contain(tag),
                        "merged filter denies {tag:#x} after eviction churn"
                    );
                }
            }
        },
    );
}

/// Crash-reload conservatism: prefilter tags are deliberately not
/// persisted, so a store recovered from checkpoint + WAL rebuilds its
/// filters as *incomplete* — which must make them answer "maybe" for every
/// key (recovered entries included), never "definitely absent".
#[test]
fn reload_rebuilds_filters_conservatively() {
    use std::sync::atomic::{AtomicU64, Ordering};

    static CASE: AtomicU64 = AtomicU64::new(0);

    check(
        "reload_rebuilds_filters_conservatively",
        0x5EED_6005,
        |rng| {
            (0..rng.range_usize(1, 12))
                .map(|_| (rng.byte(), rng.range_usize(1, 64)))
                .collect::<Vec<(u8, usize)>>()
        },
        |puts: &Vec<(u8, usize)>| {
            let platform = Platform::with_seed(CostModel::no_sgx(), Some(0xF1_73D));
            let dir = std::env::temp_dir().join(format!(
                "speed-filter-props-{}-{}",
                std::process::id(),
                CASE.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let open = || {
                let backend = Arc::new(LogBackend::new(LogConfig::new(&dir)));
                ResultStore::open(&platform, StoreConfig::default(), backend)
                    .expect("open")
                    .0
            };
            let store = open();
            let app = AppId(7);
            for &(seed, len) in puts {
                store.handle(Message::PutPrefiltered {
                    app,
                    tag: tag_of(seed),
                    prefilter: u64::from(seed) << 17 | 1,
                    record: record_of(seed, len),
                });
            }
            assert!(
                merged_filter(&store).expect("shards").is_complete(),
                "pre-crash filter should be complete"
            );
            drop(store);

            let restored = open();
            let merged = merged_filter(&restored).expect("shards");
            for &(seed, _) in puts {
                assert!(
                    merged.may_contain(u64::from(seed) << 17 | 1),
                    "recovered entry's prefilter denied after reload"
                );
            }
            // Stronger: an incomplete rebuild answers "maybe" universally.
            assert!(
                merged.may_contain(0xDEAD_BEEF_0BAD_F00D),
                "rebuilt-from-recovery filter must stay conservative for all keys"
            );
            drop(restored);
            let _ = std::fs::remove_dir_all(&dir);
        },
    );
}
