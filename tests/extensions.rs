//! Integration tests for the extension features beyond the paper's
//! prototype: adaptive deduplication policy (§VII future work), sealed
//! store persistence, and controlled deduplication (§III-D authorization).

use std::sync::Arc;

use speed_core::{
    AdaptiveConfig, DedupOutcome, DedupPolicy, DedupRuntime, FuncDesc, TrustedLibrary,
};
use speed_enclave::{CostModel, Platform};
use speed_store::{persist, AccessControl, ResultStore, StoreConfig};
use speed_wire::SessionAuthority;

fn library() -> TrustedLibrary {
    let mut lib = TrustedLibrary::new("zlib", "1.2.11");
    lib.register("int deflate(...)", b"deflate code");
    lib
}

fn desc() -> FuncDesc {
    FuncDesc::new("zlib", "1.2.11", "int deflate(...)")
}

#[test]
fn store_survives_restart_via_sealed_snapshot() {
    let platform = Platform::new(CostModel::default_sgx());
    let authority = Arc::new(SessionAuthority::new());
    let input = b"document to survive a restart".to_vec();

    // Day 1: compute and publish, then snapshot and "shut down".
    let sealed = {
        let store =
            Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"persist-app")
            .in_process_store(Arc::clone(&store), Arc::clone(&authority))
            .trusted_library(library())
            .build()
            .unwrap();
        let identity = rt.resolve(&desc()).unwrap();
        rt.execute_raw(&identity, &input, |d| {
            speed_deflate::compress(d, speed_deflate::Level::Default)
        })
        .unwrap();
        persist::snapshot(&platform, &store).unwrap()
    };

    // Day 2: restore into a fresh store and reuse the result — without
    // ever recomputing.
    let restored =
        Arc::new(persist::restore(&platform, StoreConfig::default(), &sealed).unwrap());
    let rt = DedupRuntime::builder(Arc::clone(&platform), b"persist-app-reborn")
        .in_process_store(Arc::clone(&restored), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity = rt.resolve(&desc()).unwrap();
    let (result, outcome) = rt
        .execute_raw(&identity, &input, |_| panic!("must reuse restored result"))
        .unwrap();
    assert_eq!(outcome, DedupOutcome::Hit);
    assert_eq!(speed_deflate::decompress(&result).unwrap(), input);
}

#[test]
fn unauthorized_app_cannot_even_query() {
    let platform = Platform::new(CostModel::default_sgx());
    let authority = Arc::new(SessionAuthority::new());
    let config = StoreConfig {
        access: AccessControl::Allowlist([100u64].into_iter().collect()),
        ..StoreConfig::default()
    };
    let store = Arc::new(ResultStore::new(&platform, config).unwrap());

    // Authorized application (explicit app id 100) works end to end.
    let authorized = DedupRuntime::builder(Arc::clone(&platform), b"authorized")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(library())
        .app_id(100)
        .build()
        .unwrap();
    let identity = authorized.resolve(&desc()).unwrap();
    let (_, outcome) =
        authorized.execute_raw(&identity, b"data", |d| d.to_vec()).unwrap();
    assert_eq!(outcome, DedupOutcome::Miss);

    // Unauthorized application: the store refuses its GET, which surfaces
    // as an error — no information about stored computations leaks.
    let unauthorized = DedupRuntime::builder(Arc::clone(&platform), b"unauthorized")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(library())
        .app_id(999)
        .build()
        .unwrap();
    let identity = unauthorized.resolve(&desc()).unwrap();
    let result = unauthorized.execute_raw(&identity, b"data", |d| d.to_vec());
    assert!(result.is_err());
}

#[test]
fn adaptive_policy_full_stack() {
    let platform = Platform::new(CostModel::default_sgx());
    let authority = Arc::new(SessionAuthority::new());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let rt = DedupRuntime::builder(Arc::clone(&platform), b"adaptive-integration")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(library())
        .policy(DedupPolicy::Adaptive(AdaptiveConfig {
            min_speedup: 1.0,
            warmup_calls: 2,
            probe_interval: 8,
            ewma_alpha: 0.4,
        }))
        .build()
        .unwrap();
    let identity = rt.resolve(&desc()).unwrap();

    // Phase 1: cheap + distinct inputs → policy learns to bypass.
    for i in 0..30u32 {
        rt.execute_raw(&identity, &i.to_le_bytes(), |d| d.to_vec()).unwrap();
    }
    let bypasses_phase1 = rt.stats().bypasses;
    assert!(bypasses_phase1 > 0, "policy never bypassed a cheap function");

    // The store was spared most of the useless puts.
    assert!(store.stats().puts < 30);

    // Phase 2: despite bypassing, probes keep the runtime correct: a
    // repeated input through a probe call still round-trips properly.
    for _ in 0..20 {
        let (result, _) =
            rt.execute_raw(&identity, b"stable-input", |d| d.to_vec()).unwrap();
        assert_eq!(result, b"stable-input");
    }
}
