//! Distributed deployments: TCP store servers, the master-store
//! synchronization topology (§IV-B Remark), and concurrent applications.

use std::sync::Arc;
use std::time::Duration;

use speed_core::{DedupOutcome, DedupRuntime, FuncDesc, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_store::server::StoreServer;
use speed_store::sync::{sync_once, SyncDaemon};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::SessionAuthority;

fn library() -> TrustedLibrary {
    let mut lib = TrustedLibrary::new("zlib", "1.2.11");
    lib.register("int deflate(...)", b"deflate code");
    lib
}

fn desc() -> FuncDesc {
    FuncDesc::new("zlib", "1.2.11", "int deflate(...)")
}

#[test]
fn dedup_over_tcp_store() {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::new());
    let server = StoreServer::spawn(
        Arc::clone(&store),
        Arc::clone(&platform),
        Arc::clone(&authority),
        "127.0.0.1:0",
    )
    .unwrap();

    let make_runtime = |code: &[u8]| {
        DedupRuntime::builder(Arc::clone(&platform), code)
            .tcp_store(server.addr(), Arc::clone(&authority))
            .trusted_library(library())
            .build()
            .unwrap()
    };

    let rt_a = make_runtime(b"tcp-app-a");
    let rt_b = make_runtime(b"tcp-app-b");
    let input = b"document shipped over tcp".to_vec();

    let identity_a = rt_a.resolve(&desc()).unwrap();
    let (result_a, outcome_a) =
        rt_a.execute_raw(&identity_a, &input, |d| d.to_vec()).unwrap();
    assert_eq!(outcome_a, DedupOutcome::Miss);

    // A different process's runtime, over its own TCP connection, reuses.
    let identity_b = rt_b.resolve(&desc()).unwrap();
    let (result_b, outcome_b) =
        rt_b.execute_raw(&identity_b, &input, |_| panic!("must reuse over tcp")).unwrap();
    assert_eq!(outcome_b, DedupOutcome::Hit);
    assert_eq!(result_a, result_b);

    server.shutdown();
}

#[test]
fn async_put_over_tcp() {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::new());
    let server = StoreServer::spawn(
        Arc::clone(&store),
        Arc::clone(&platform),
        Arc::clone(&authority),
        "127.0.0.1:0",
    )
    .unwrap();

    let rt = DedupRuntime::builder(Arc::clone(&platform), b"tcp-async-app")
        .tcp_store(server.addr(), Arc::clone(&authority))
        .trusted_library(library())
        .async_put(true)
        .build()
        .unwrap();
    let identity = rt.resolve(&desc()).unwrap();
    for i in 0..10u8 {
        rt.execute_raw(&identity, &[i], |d| d.to_vec()).unwrap();
    }
    rt.flush();
    assert_eq!(store.stats().puts, 10);
    server.shutdown();
}

#[test]
fn two_machine_deployment_over_tcp() {
    // The paper's §V-A setup: applications on one SGX machine, the store
    // on another, connected over the network with mutual attestation.
    let app_machine = Platform::new(CostModel::default_sgx());
    let store_machine = Platform::new(CostModel::default_sgx());
    let store =
        Arc::new(ResultStore::new(&store_machine, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::new());
    let server = StoreServer::spawn(
        Arc::clone(&store),
        Arc::clone(&store_machine),
        Arc::clone(&authority),
        "127.0.0.1:0",
    )
    .unwrap();

    let rt = DedupRuntime::builder(Arc::clone(&app_machine), b"remote-app")
        .tcp_store(server.addr(), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity = rt.resolve(&desc()).unwrap();
    let (result, outcome) =
        rt.execute_raw(&identity, b"cross-machine input", |d| d.to_vec()).unwrap();
    assert_eq!(outcome, DedupOutcome::Miss);
    assert_eq!(result, b"cross-machine input");

    // Subsequent computation from a different app on the app machine.
    let rt2 = DedupRuntime::builder(Arc::clone(&app_machine), b"remote-app-2")
        .tcp_store(server.addr(), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity2 = rt2.resolve(&desc()).unwrap();
    let (_, outcome) = rt2
        .execute_raw(&identity2, b"cross-machine input", |_| panic!("must reuse"))
        .unwrap();
    assert_eq!(outcome, DedupOutcome::Hit);
    // The app machine's enclaves did the crypto; the store machine's
    // enclave served the dictionary.
    assert!(store.enclave().stats().ecalls >= 2);
    server.shutdown();
}

#[test]
fn master_store_collects_popular_results_from_machines() {
    // Two "machines", each with a local store; a master on a third.
    let machine_1 = Platform::new(CostModel::default_sgx());
    let machine_2 = Platform::new(CostModel::default_sgx());
    let master_machine = Platform::new(CostModel::default_sgx());
    let local_1 = Arc::new(ResultStore::new(&machine_1, StoreConfig::default()).unwrap());
    let local_2 = Arc::new(ResultStore::new(&machine_2, StoreConfig::default()).unwrap());
    let master =
        Arc::new(ResultStore::new(&master_machine, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::new());

    // Machine 1 computes a popular result (3 hits) and an unpopular one.
    let rt1 = DedupRuntime::builder(Arc::clone(&machine_1), b"app-m1")
        .in_process_store(Arc::clone(&local_1), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity = rt1.resolve(&desc()).unwrap();
    rt1.execute_raw(&identity, b"popular", |d| d.to_vec()).unwrap();
    for _ in 0..3 {
        rt1.execute_raw(&identity, b"popular", |_| panic!("hit")).unwrap();
    }
    rt1.execute_raw(&identity, b"unpopular", |d| d.to_vec()).unwrap();

    // Machine 2 computes another popular result.
    let rt2 = DedupRuntime::builder(Arc::clone(&machine_2), b"app-m2")
        .in_process_store(Arc::clone(&local_2), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity_2 = rt2.resolve(&desc()).unwrap();
    rt2.execute_raw(&identity_2, b"other popular", |d| d.to_vec()).unwrap();
    rt2.execute_raw(&identity_2, b"other popular", |_| panic!("hit")).unwrap();

    // Periodic sync pulls entries with ≥1 hit into the master.
    assert_eq!(sync_once(&local_1, &master, 1), 1);
    assert_eq!(sync_once(&local_2, &master, 1), 1);
    assert_eq!(master.stats().entries, 2);

    // An application attached to the master reuses machine 1's result —
    // RCE decryption works because the tag/key derivation is machine
    // independent.
    let rt3 = DedupRuntime::builder(Arc::clone(&master_machine), b"app-master")
        .in_process_store(Arc::clone(&master), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity_3 = rt3.resolve(&desc()).unwrap();
    let (result, outcome) = rt3
        .execute_raw(&identity_3, b"popular", |_| panic!("must reuse synced"))
        .unwrap();
    assert_eq!(outcome, DedupOutcome::Hit);
    assert_eq!(result, b"popular");
}

#[test]
fn sync_daemon_round_trips() {
    let machine = Platform::new(CostModel::no_sgx());
    let local = Arc::new(ResultStore::new(&machine, StoreConfig::default()).unwrap());
    let master = Arc::new(ResultStore::new(&machine, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::new());

    let rt = DedupRuntime::builder(Arc::clone(&machine), b"daemon-app")
        .in_process_store(Arc::clone(&local), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();
    let identity = rt.resolve(&desc()).unwrap();
    rt.execute_raw(&identity, b"data", |d| d.to_vec()).unwrap();
    rt.execute_raw(&identity, b"data", |_| panic!("hit")).unwrap();

    let daemon = SyncDaemon::spawn(
        vec![Arc::clone(&local)],
        Arc::clone(&master),
        1,
        Duration::from_millis(1),
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while master.stats().entries == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    daemon.shutdown();
    assert_eq!(master.stats().entries, 1);
}

#[test]
fn concurrent_applications_share_one_store() {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::new());

    let mut handles = Vec::new();
    for worker in 0..4u64 {
        let platform = Arc::clone(&platform);
        let store = Arc::clone(&store);
        let authority = Arc::clone(&authority);
        handles.push(std::thread::spawn(move || {
            let rt =
                DedupRuntime::builder(platform, format!("worker-{worker}").as_bytes())
                    .in_process_store(store, authority)
                    .trusted_library(library())
                    .build()
                    .unwrap();
            let identity = rt.resolve(&desc()).unwrap();
            let mut hits = 0u32;
            // All workers compute the same 20 inputs.
            for round in 0..3 {
                for i in 0..20u8 {
                    let (result, outcome) = rt
                        .execute_raw(&identity, &[i], |d| {
                            d.iter().map(|b| b.wrapping_add(1)).collect()
                        })
                        .unwrap();
                    assert_eq!(result, vec![i.wrapping_add(1)]);
                    if outcome == DedupOutcome::Hit {
                        hits += 1;
                    }
                    let _ = round;
                }
            }
            hits
        }));
    }
    let total_hits: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    // 4 workers × 3 rounds × 20 inputs = 240 calls over 20 distinct
    // computations: at least the 2nd and 3rd rounds of every worker hit.
    assert!(total_hits >= 160, "only {total_hits} hits");
    assert_eq!(store.stats().entries, 20);
}
