//! Security-property integration tests: the guarantees of §III-D exercised
//! against an active adversary controlling everything outside the
//! enclaves.

use std::sync::Arc;

use speed_core::{DedupOutcome, DedupRuntime, FuncDesc, TrustedLibrary};
use speed_enclave::{BlobId, CostModel, Platform};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::{AppId, CompTag, Message, SessionAuthority};

struct World {
    platform: Arc<Platform>,
    store: Arc<ResultStore>,
    authority: Arc<SessionAuthority>,
}

fn world() -> World {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::new());
    World { platform, store, authority }
}

fn library(code: &[u8]) -> TrustedLibrary {
    let mut lib = TrustedLibrary::new("zlib", "1.2.11");
    lib.register("int deflate(...)", code);
    lib
}

fn runtime(world: &World, app_code: &[u8], lib_code: &[u8]) -> Arc<DedupRuntime> {
    DedupRuntime::builder(Arc::clone(&world.platform), app_code)
        .in_process_store(Arc::clone(&world.store), Arc::clone(&world.authority))
        .trusted_library(library(lib_code))
        .build()
        .unwrap()
}

const DESCRIPTION: (&str, &str, &str) = ("zlib", "1.2.11", "int deflate(...)");

fn desc() -> FuncDesc {
    FuncDesc::new(DESCRIPTION.0, DESCRIPTION.1, DESCRIPTION.2)
}

/// Tampering with ciphertext outside the enclave is detected: the victim
/// recomputes instead of consuming a poisoned result (cache-poisoning
/// defence, §III-D).
#[test]
fn tampered_ciphertext_is_detected_not_consumed() {
    let world = world();
    let rt = runtime(&world, b"victim", b"genuine");
    let identity = rt.resolve(&desc()).unwrap();
    let input = b"input under attack".to_vec();

    rt.execute_raw(&identity, &input, |_| b"correct result".to_vec()).unwrap();

    // Adversary with root access flips bits in every untrusted blob.
    let mut tampered_any = false;
    for raw in 0..64u64 {
        tampered_any |=
            world.platform.untrusted().tamper(BlobId::from_raw(raw), |data| {
                if let Some(byte) = data.first_mut() {
                    *byte ^= 0xFF;
                }
            });
    }
    assert!(tampered_any, "no blobs found to tamper with");

    let (result, outcome) =
        rt.execute_raw(&identity, &input, |_| b"correct result".to_vec()).unwrap();
    assert_eq!(outcome, DedupOutcome::MissAfterFailedVerify);
    assert_eq!(result, b"correct result");
}

/// The query-forging attack (§III-D): an application that knows the *tag*
/// of someone else's computation can fetch `(r, [k], [res])` but cannot
/// decrypt, because it cannot recompute `h = H(func, m, r)` without owning
/// the same code and input.
#[test]
fn query_forging_attacker_cannot_decrypt() {
    let world = world();
    let victim = runtime(&world, b"victim-app", b"genuine code");
    let identity = victim.resolve(&desc()).unwrap();
    let secret_input = b"the victim's secret input".to_vec();
    victim.execute_raw(&identity, &secret_input, |_| b"secret result".to_vec()).unwrap();

    // The attacker somehow learned the tag (leakage setting) and queries
    // the store directly, getting the full record.
    let tag = speed_core::tag_for(&identity, &secret_input);
    let response = world.store.handle(Message::GetRequest { app: AppId(666), tag });
    let record = match response {
        Message::GetResponse(body) => body.record.expect("record leaked to attacker"),
        other => panic!("unexpected {other:?}"),
    };

    // Without the same (func, m) the key cannot be recovered: try with a
    // different function identity (attacker's own code)…
    let attacker = runtime(&world, b"attacker-app", b"attacker code");
    let attacker_identity = attacker.resolve(&desc()).unwrap();
    assert!(speed_core::rce::recover_result(&attacker_identity, &secret_input, &record)
        .is_err());
    // …and with the right code but a guessed input.
    assert!(
        speed_core::rce::recover_result(&identity, b"guessed input", &record).is_err()
    );
    // The eligible party still recovers fine.
    assert_eq!(
        speed_core::rce::recover_result(&identity, &secret_input, &record).unwrap(),
        b"secret result"
    );
}

/// Everything the store holds outside the enclave is ciphertext: the
/// plaintext result never appears in untrusted memory.
#[test]
fn untrusted_memory_never_sees_plaintext() {
    let world = world();
    let rt = runtime(&world, b"privacy-app", b"genuine");
    let identity = rt.resolve(&desc()).unwrap();
    let plaintext_result = b"EXTREMELY-RECOGNIZABLE-SECRET-RESULT-BYTES".to_vec();
    rt.execute_raw(&identity, b"in", |_| plaintext_result.clone()).unwrap();

    for raw in 0..64u64 {
        if let Some(blob) = world.platform.untrusted().load(BlobId::from_raw(raw)) {
            assert!(
                !blob
                    .windows(plaintext_result.len())
                    .any(|window| window == &plaintext_result[..]),
                "plaintext result leaked into untrusted blob {raw}"
            );
        }
    }
}

/// DoS mitigation (§III-D): a malicious application flooding PUTs is
/// rate-limited; a well-behaved application is unaffected.
#[test]
fn put_flood_is_rate_limited_per_app() {
    let platform = Platform::new(CostModel::default_sgx());
    let config = StoreConfig {
        max_entries: 1_000_000,
        max_stored_bytes: u64::MAX,
        quota: speed_store::QuotaPolicy {
            max_entries_per_app: 50,
            max_bytes_per_app: u64::MAX,
            max_puts_per_window: u64::MAX,
            window_ms: 1_000,
        },
        access: speed_store::AccessControl::Open,
        ttl_ms: None,
        shards: speed_store::DEFAULT_SHARDS,
    };
    let store = Arc::new(ResultStore::new(&platform, config).unwrap());

    let flood_record = || speed_wire::Record {
        challenge: vec![0; 32],
        wrapped_key: [0; 16],
        nonce: [0; 12],
        boxed_result: vec![0xEE; 128],
    };
    let mut rejected = 0;
    for i in 0..200u64 {
        let mut tag = [0u8; 32];
        tag[..8].copy_from_slice(&i.to_le_bytes());
        let response = store.handle(Message::PutRequest {
            app: AppId(666),
            tag: CompTag::from_bytes(tag),
            record: flood_record(),
        });
        if matches!(response, Message::PutResponse(body) if !body.accepted) {
            rejected += 1;
        }
    }
    assert_eq!(rejected, 150, "quota allowed the flood");

    // An honest app still gets service.
    let mut tag = [9u8; 32];
    tag[0] = 0xAA;
    let response = store.handle(Message::PutRequest {
        app: AppId(7),
        tag: CompTag::from_bytes(tag),
        record: flood_record(),
    });
    assert!(matches!(response, Message::PutResponse(body) if body.accepted));
}

/// Replay of secure-channel frames is rejected end to end.
#[test]
fn channel_replay_rejected() {
    let world = world();
    let enclave = world.platform.create_enclave(b"replay-app").unwrap();
    let (mut client, mut server) = world
        .authority
        .establish((&world.platform, &enclave), (&world.platform, world.store.enclave()))
        .unwrap();
    let frame = client.seal_message(b"GET something");
    assert!(server.open_message(&frame).is_ok());
    assert!(server.open_message(&frame).is_err());
}

/// The measurement binds code identity: same description, different code →
/// different tags, so a trojaned library can never address genuine entries.
#[test]
fn code_identity_separates_tag_spaces() {
    let world = world();
    let genuine = runtime(&world, b"app-1", b"genuine code");
    let trojaned = runtime(&world, b"app-2", b"trojan code");
    let input = b"same input".to_vec();

    let genuine_tag = speed_core::tag_for(&genuine.resolve(&desc()).unwrap(), &input);
    let trojan_tag = speed_core::tag_for(&trojaned.resolve(&desc()).unwrap(), &input);
    assert_ne!(genuine_tag, trojan_tag);
}

/// Sealing: store state sealed by the store enclave cannot be unsealed by
/// a different enclave or platform (used for at-rest persistence).
#[test]
fn sealed_state_bound_to_enclave_identity() {
    use speed_enclave::sealing::{seal, unseal, SealPolicy};
    let world = world();
    let other_platform = Platform::new(CostModel::default_sgx());
    let other_enclave = other_platform.create_enclave(b"other").unwrap();

    let store_enclave = world.store.enclave();
    let sealed = seal(
        &world.platform,
        store_enclave,
        &SealPolicy::MrEnclave,
        b"dict-snapshot",
        b"serialized dictionary",
    );
    assert_eq!(
        unseal(
            &world.platform,
            store_enclave,
            &SealPolicy::MrEnclave,
            b"dict-snapshot",
            &sealed
        )
        .unwrap(),
        b"serialized dictionary"
    );
    assert!(unseal(
        &other_platform,
        &other_enclave,
        &SealPolicy::MrEnclave,
        b"dict-snapshot",
        &sealed
    )
    .is_err());
}
