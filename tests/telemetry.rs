//! Telemetry integration: the process-global registry observes a dedup
//! workload end to end, the snapshot is served over the wire protocol in
//! both exposition formats, and `docs/METRICS.md` documents every metric
//! name the code can emit.
//!
//! All tests in this binary share one process-global registry, so workload
//! assertions are written as monotonic deltas (`after >= before + n`)
//! rather than exact values.

use std::sync::Arc;

use speed_core::{DedupOutcome, DedupRuntime, FuncDesc, HotCacheConfig, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_store::server::{StoreServer, TcpStoreClient};
use speed_store::{ResultStore, StoreConfig};
use speed_telemetry::{names, TelemetrySnapshot};
use speed_wire::{Message, MetricsFormat, SessionAuthority};

fn world() -> (Arc<Platform>, Arc<ResultStore>, Arc<SessionAuthority>) {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::with_seed(7));
    (platform, store, authority)
}

fn library() -> TrustedLibrary {
    let mut lib = TrustedLibrary::new("telemetrylib", "1.0");
    lib.register("bytes echo(bytes)", b"echo code");
    lib
}

fn desc() -> FuncDesc {
    FuncDesc::new("telemetrylib", "1.0", "bytes echo(bytes)")
}

fn snapshot() -> TelemetrySnapshot {
    speed_telemetry::global().snapshot()
}

/// Sum of a counter/gauge across all label combinations, 0 when absent.
fn total(name: &str) -> u64 {
    snapshot().scalar_sum(name)
}

#[test]
fn dedup_hit_workload_moves_global_counters() {
    let (platform, store, authority) = world();
    let rt = DedupRuntime::builder(Arc::clone(&platform), b"telemetry-app")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();

    let calls_before = total(names::DEDUP_CALLS_TOTAL);
    let hits_before = total(names::DEDUP_HITS_TOTAL);
    let misses_before = total(names::DEDUP_MISSES_TOTAL);
    let store_puts_before = total(names::STORE_PUTS_TOTAL);

    let (_, outcome) = rt.execute(&desc(), b"input-a", |i| i.to_vec()).unwrap();
    assert_eq!(outcome, DedupOutcome::Miss);
    for _ in 0..3 {
        let (_, outcome) =
            rt.execute(&desc(), b"input-a", |_| panic!("deduped")).unwrap();
        assert_eq!(outcome, DedupOutcome::Hit);
    }

    assert!(total(names::DEDUP_CALLS_TOTAL) >= calls_before + 4);
    assert!(total(names::DEDUP_HITS_TOTAL) >= hits_before + 3);
    assert!(total(names::DEDUP_MISSES_TOTAL) > misses_before);
    assert!(total(names::STORE_PUTS_TOTAL) > store_puts_before);
    // The span around each call observed at least the 4 calls above.
    let snap = snapshot();
    let call_hist = snap
        .metrics
        .iter()
        .find(|m| m.name == names::DEDUP_CALL_DURATION_NS)
        .expect("call-duration histogram registered");
    match &call_hist.value {
        speed_telemetry::MetricValue::Histogram { count, .. } => assert!(*count >= 4),
        other => panic!("expected histogram, got {other:?}"),
    }
}

#[test]
fn hot_cache_serves_count_and_skip_transitions() {
    let (platform, store, authority) = world();
    let rt = DedupRuntime::builder(Arc::clone(&platform), b"telemetry-cache-app")
        .in_process_store(Arc::clone(&store), Arc::clone(&authority))
        .trusted_library(library())
        .hot_cache(HotCacheConfig::default())
        .build()
        .unwrap();

    let (_, outcome) = rt.execute(&desc(), b"warm-me", |i| i.to_vec()).unwrap();
    assert_eq!(outcome, DedupOutcome::Miss);

    let cache_hits_before = total(names::DEDUP_CACHE_HITS_TOTAL);
    let enclave_before = rt.enclave().stats();
    let store_gets_before = store.stats().gets;

    let (_, outcome) = rt.execute(&desc(), b"warm-me", |_| panic!("cached")).unwrap();
    assert_eq!(outcome, DedupOutcome::HitLocalCache);

    // The cached serve is visible in the global registry...
    assert!(total(names::DEDUP_CACHE_HITS_TOTAL) > cache_hits_before);
    // ...and cost zero OCALLs and zero store traffic: the per-enclave
    // counters (race-free, unlike the process-global ones) show only the
    // single dedup ECALL.
    let enclave_after = rt.enclave().stats();
    assert_eq!(enclave_after.ocalls, enclave_before.ocalls);
    assert_eq!(enclave_after.ecalls, enclave_before.ecalls + 1);
    assert_eq!(store.stats().gets, store_gets_before);
}

#[test]
fn metrics_request_roundtrips_in_both_formats() {
    let (platform, store, authority) = world();
    let server = StoreServer::spawn(
        Arc::clone(&store),
        Arc::clone(&platform),
        Arc::clone(&authority),
        "127.0.0.1:0",
    )
    .unwrap();
    let rt = DedupRuntime::builder(Arc::clone(&platform), b"telemetry-tcp-app")
        .tcp_store(server.addr(), Arc::clone(&authority))
        .trusted_library(library())
        .build()
        .unwrap();
    let (_, first) = rt.execute(&desc(), b"wire-input", |i| i.to_vec()).unwrap();
    assert_eq!(first, DedupOutcome::Miss);
    let (_, second) = rt.execute(&desc(), b"wire-input", |_| panic!("hit")).unwrap();
    assert_eq!(second, DedupOutcome::Hit);

    let enclave = platform.create_enclave(b"metrics-scraper").unwrap();
    let mut client =
        TcpStoreClient::connect(server.addr(), &platform, &enclave, &authority).unwrap();

    // Prometheus text: well-formed lines, required families present.
    let response = client
        .roundtrip(&Message::MetricsRequest { format: MetricsFormat::Prometheus })
        .unwrap();
    let text = match response {
        Message::MetricsResponse(text) => text,
        other => panic!("unexpected response {other:?}"),
    };
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "malformed comment line: {line}"
            );
            continue;
        }
        let (series, value) =
            line.rsplit_once(' ').unwrap_or_else(|| panic!("malformed line: {line}"));
        assert!(!series.is_empty());
        assert!(value.parse::<u64>().is_ok(), "non-numeric value in: {line}");
    }
    for family in [
        names::ENCLAVE_TRANSITIONS_TOTAL,
        names::DEDUP_HITS_TOTAL,
        names::DEDUP_MISSES_TOTAL,
        names::STORE_GETS_TOTAL,
        names::STORE_SHARD_ENTRIES,
        names::SERVER_CONNECTIONS_ACTIVE,
    ] {
        assert!(text.contains(&format!("# TYPE {family} ")), "missing {family}");
    }
    assert!(
        text.contains(&format!("{}{{kind=\"ecall\"}}", names::ENCLAVE_TRANSITIONS_TOTAL)),
        "transition counter must be labelled by kind"
    );
    assert!(text.contains("shard=\"0\""), "per-shard series must be labelled");
    assert!(text.contains("_bucket{le=\"+Inf\"}"), "at least one histogram rendered");

    // JSONL: one object per line, same families present.
    let response = client
        .roundtrip(&Message::MetricsRequest { format: MetricsFormat::Jsonl })
        .unwrap();
    let jsonl = match response {
        Message::MetricsResponse(text) => text,
        other => panic!("unexpected response {other:?}"),
    };
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"name\":"), "malformed jsonl line: {line}");
        assert!(line.ends_with('}'), "malformed jsonl line: {line}");
        assert!(line.contains("\"type\":"), "missing type in: {line}");
        assert!(line.contains("\"labels\":{"), "missing labels in: {line}");
    }
    assert!(jsonl.contains(&format!("\"name\":\"{}\"", names::DEDUP_HITS_TOTAL)));
    assert!(jsonl.contains(&format!("\"name\":\"{}\"", names::ENCLAVE_TRANSITIONS_TOTAL)));
    assert!(jsonl.contains("\"type\":\"histogram\""));
    assert!(jsonl.contains("\"buckets\":["));

    server.shutdown();
}

#[test]
fn metrics_docs_cover_every_name() {
    let docs =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/METRICS.md"))
            .expect("docs/METRICS.md exists");
    let missing: Vec<&str> = names::ALL
        .iter()
        .copied()
        .filter(|name| !docs.contains(&format!("`{name}`")))
        .collect();
    assert!(missing.is_empty(), "metric names missing from docs/METRICS.md: {missing:?}");
}
