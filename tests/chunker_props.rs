//! Property suite for the content-defined chunker (`speed_core::chunker`).
//!
//! Three invariants the streaming dedup path depends on:
//!
//! 1. **Concatenation invariance** — chunk boundaries are a function of
//!    the byte stream alone; pushing the stream in arbitrary fragment
//!    sizes yields byte-identical chunks.
//! 2. **Bound respect** — every chunk is within `[min, max]`, except a
//!    final tail that may run short; chunks reassemble to the input.
//! 3. **Edit re-synchronization** — a single-byte insert or delete
//!    disturbs the chunking only locally: past a bounded window after
//!    the edit, the chunk sequence of the edited stream is identical to
//!    the original's.
//!
//! Failures print one-line `SPEED_TESTKIT_SEED=0x…` reproducers.

use speed_core::chunker::GEAR_WINDOW;
use speed_core::{chunk_all, Chunker, ChunkerConfig};
use speed_testkit::{check, TestRng};

const CONFIG: ChunkerConfig = ChunkerConfig::SMALL;

/// Random bytes with occasional repeated runs, so both content-found and
/// forced (max-bound) cuts are exercised.
fn gen_data(rng: &mut TestRng, min_len: usize, max_len: usize) -> Vec<u8> {
    let len = rng.range_usize(min_len, max_len);
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        if rng.chance(0.2) {
            let run = rng.range_usize(1, CONFIG.max * 2);
            let byte = rng.byte();
            data.extend(std::iter::repeat_n(byte, run.min(len - data.len())));
        } else {
            let fresh = rng.range_usize(1, 512).min(len - data.len());
            let mut piece = vec![0u8; fresh];
            rng.fill(&mut piece);
            data.extend_from_slice(&piece);
        }
    }
    data
}

/// Cuts `data` into random fragments (including empty ones).
fn gen_splits(rng: &mut TestRng, len: usize) -> Vec<usize> {
    let mut splits = Vec::new();
    let mut consumed = 0usize;
    while consumed < len {
        let piece = if rng.chance(0.1) {
            0
        } else {
            rng.range_usize(1, 1500).min(len - consumed)
        };
        splits.push(piece);
        consumed += piece;
    }
    splits
}

fn chunk_in_pieces(data: &[u8], splits: &[usize]) -> Vec<Vec<u8>> {
    let mut chunker = Chunker::new(CONFIG);
    let mut chunks = Vec::new();
    let mut offset = 0usize;
    for &piece in splits {
        let end = (offset + piece).min(data.len());
        chunker.push(&data[offset..end], |chunk| chunks.push(chunk));
        offset = end;
    }
    chunker.push(&data[offset..], |chunk| chunks.push(chunk));
    if let Some(tail) = chunker.finish() {
        chunks.push(tail);
    }
    chunks
}

#[test]
fn chunks_are_concatenation_invariant() {
    check(
        "chunker_concat_invariance",
        0x5EED_1001,
        |rng| {
            let data = gen_data(rng, 0, 32 * 1024);
            let splits = gen_splits(rng, data.len());
            (data, splits)
        },
        |(data, splits)| {
            let whole = chunk_all(CONFIG, data);
            let pieces = chunk_in_pieces(data, splits);
            assert_eq!(
                pieces, whole,
                "chunking in fragments diverged from whole-buffer chunking"
            );
        },
    );
}

#[test]
fn chunks_respect_bounds_and_reassemble() {
    check(
        "chunker_bounds",
        0x5EED_1002,
        |rng| gen_data(rng, 0, 48 * 1024),
        |data| {
            let chunks = chunk_all(CONFIG, data);
            let rebuilt: Vec<u8> = chunks.concat();
            assert_eq!(rebuilt, *data, "chunks must reassemble to the input");
            for (i, chunk) in chunks.iter().enumerate() {
                assert!(
                    chunk.len() <= CONFIG.max,
                    "chunk {i} length {} over max {}",
                    chunk.len(),
                    CONFIG.max
                );
                let is_tail = i + 1 == chunks.len();
                assert!(
                    is_tail || chunk.len() >= CONFIG.min,
                    "non-tail chunk {i} length {} under min {}",
                    chunk.len(),
                    CONFIG.min
                );
            }
        },
    );
}

#[test]
fn single_byte_edit_resynchronizes() {
    check(
        "chunker_edit_resync",
        0x5EED_1003,
        |rng| {
            let data = gen_data(rng, 16 * 1024, 48 * 1024);
            let pos = rng.range_usize(0, data.len() / 2);
            let insert = rng.chance(0.5);
            let byte = rng.byte();
            (data, pos, insert, byte)
        },
        |(data, pos, insert, byte)| {
            if data.is_empty() || *pos >= data.len() {
                return; // shrunk out of range: vacuously true
            }
            let mut edited = data.clone();
            if *insert {
                edited.insert(*pos, *byte);
            } else {
                edited.remove(*pos);
            }
            let original = chunk_all(CONFIG, data);
            let after = chunk_all(CONFIG, &edited);

            // Length of the common chunk-list suffix, in bytes.
            let common_suffix_bytes: usize = original
                .iter()
                .rev()
                .zip(after.iter().rev())
                .take_while(|(a, b)| a == b)
                .map(|(a, _)| a.len())
                .sum();
            let disturbed = edited.len() - common_suffix_bytes;
            // The edit may shift boundaries only while the rolling window
            // still covers it, plus slack for min/max coupling between
            // neighboring chunks. 8×max is deliberately generous — the
            // property pins down *locality*, not the exact constant.
            let bound = pos + 8 * CONFIG.max + GEAR_WINDOW + 1;
            assert!(
                disturbed <= bound,
                "edit at {pos} disturbed {disturbed} bytes of chunking \
                 (bound {bound}, stream {} bytes)",
                edited.len()
            );
        },
    );
}

#[test]
fn forced_cuts_are_counted() {
    // A constant stream has no content boundaries, so every full chunk is
    // a forced cut at max.
    let data = vec![7u8; CONFIG.max * 4];
    let mut chunker = Chunker::new(CONFIG);
    let mut chunks = Vec::new();
    chunker.push(&data, |c| chunks.push(c));
    let tail = chunker.finish();
    let stats = chunker.stats();
    assert_eq!(stats.bytes, data.len() as u64);
    assert!(stats.forced_cuts >= 3, "forced cuts {}", stats.forced_cuts);
    assert_eq!(stats.chunks as usize, chunks.len() + usize::from(tail.is_some()));
}
