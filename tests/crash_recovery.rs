//! Crash-recovery harness for the log-structured store backend.
//!
//! The durability contract under test, end to end:
//!
//! 1. **No acknowledged PUT is ever lost.** Once the store answered
//!    `accepted`, the record survives any crash — modeled here as killing
//!    the process at an arbitrary byte of WAL history (the truncation
//!    matrix) or as a filesystem operation failing mid-request (the
//!    fault-point matrix).
//! 2. **No phantom entries.** A PUT the store *rejected* (failed fsync,
//!    full disk) must never resurface after recovery, even though its
//!    bytes may have reached the file before the failure.
//! 3. **Read-only degradation.** When the disk stops accepting writes the
//!    store keeps serving GETs and refuses PUTs, instead of acknowledging
//!    writes it cannot make durable.
//!
//! The truncation matrix checks every recorded record boundary (±1 byte)
//! plus a stride of interior offsets by default; set
//! `SPEED_CRASH_EXHAUSTIVE=1` to check **every** byte offset of the WAL
//! (the CI crash-recovery job does, in release mode).

use std::collections::BTreeMap;
use std::sync::Arc;

use speed_enclave::{CostModel, Enclave, Platform};
use speed_store::persist::{restore_or_fresh_vfs, write_snapshot_file_vfs, SnapshotLoad};
use speed_store::vfs::{StdVfs, Vfs};
use speed_store::{
    LogBackend, LogConfig, QuotaPolicy, ResultStore, StoreBackend, StoreConfig,
};
use speed_testkit::fault::{FailMode, FaultOp, FaultVfs};
use speed_testkit::TestRng;
use speed_wire::{AppId, CompTag, Message, Record, SyncEntry, COMP_TAG_LEN};

/// One platform seed for the whole harness: recovery must model a restart
/// of the *same machine*, and sealing keys derive from the platform fuse
/// secret.
const PLATFORM_SEED: u64 = 0xC8A5_11F5;

fn platform() -> Arc<Platform> {
    Platform::with_seed(CostModel::no_sgx(), Some(PLATFORM_SEED))
}

fn scratch(label: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("speed-crash-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tag_of(seed: u8) -> CompTag {
    CompTag::from_bytes([seed; COMP_TAG_LEN])
}

/// Record content deterministic in the tag, so any recovered copy of an
/// acknowledged PUT is byte-comparable.
fn record_of(seed: u8) -> Record {
    Record {
        challenge: vec![seed; 32],
        wrapped_key: [seed; 16],
        nonce: [seed; 12],
        boxed_result: vec![seed.wrapping_mul(31); 8 + usize::from(seed % 64)],
    }
}

/// Ample-capacity config: no eviction and no TTL, so the only deletions
/// are the ones the harness performs itself.
fn roomy_config() -> StoreConfig {
    let mut config = StoreConfig::with_capacity(100_000, u64::MAX);
    config.quota = QuotaPolicy::unlimited();
    config
}

fn exhaustive() -> bool {
    std::env::var("SPEED_CRASH_EXHAUSTIVE").is_ok_and(|v| v == "1")
}

/// The test's base seed: the pinned default, or — when `SPEED_CRASH_SEED`
/// is set (CI's random smoke pass, hex with optional `0x`) — the default
/// XOR-folded with it, so each test still gets a distinct stream.
fn seed(default: u64) -> u64 {
    match std::env::var("SPEED_CRASH_SEED") {
        Ok(raw) => {
            let hex = raw.trim().trim_start_matches("0x");
            let base =
                u64::from_str_radix(hex, 16).expect("SPEED_CRASH_SEED is a hex u64");
            eprintln!(
                "crash harness seed override: SPEED_CRASH_SEED={raw} (base {default:#x})"
            );
            base ^ default
        }
        Err(_) => default,
    }
}

// ---------------------------------------------------------------------------
// Truncation matrix: kill the process at every byte of WAL history.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum WalOp {
    Put(u8),
    Ref(u8),
    Unref(u8),
    Delete(u8),
}

fn entry_of(seed: u8) -> SyncEntry {
    SyncEntry { tag: tag_of(seed), record: record_of(seed), hits: 0 }
}

/// Generates the seeded 200-op mutation sequence the acceptance criteria
/// name. Tags collide (pool of 24) so puts overwrite, refs/unrefs land on
/// live entries, and deletes hit real state.
fn gen_wal_ops(rng: &mut TestRng, count: usize) -> Vec<WalOp> {
    (0..count)
        .map(|_| {
            let tag = rng.byte() % 24;
            match rng.range_usize(0, 9) {
                0..=4 => WalOp::Put(tag),
                5 | 6 => WalOp::Ref(tag),
                7 => WalOp::Unref(tag),
                _ => WalOp::Delete(tag),
            }
        })
        .collect()
}

/// Reference refcount semantics, mirrored from the backend's replay rules.
#[derive(Clone, Default)]
struct WalModel {
    live: BTreeMap<[u8; COMP_TAG_LEN], (u32, SyncEntry)>,
}

impl WalModel {
    fn apply(&mut self, op: WalOp) {
        match op {
            WalOp::Put(seed) => {
                let entry = entry_of(seed);
                self.live.insert(*entry.tag.as_bytes(), (1, entry));
            }
            WalOp::Ref(seed) => {
                if let Some((rc, _)) = self.live.get_mut(tag_of(seed).as_bytes()) {
                    *rc += 1;
                }
            }
            WalOp::Unref(seed) => {
                let key = *tag_of(seed).as_bytes();
                if let Some((rc, _)) = self.live.get_mut(&key) {
                    *rc -= 1;
                    if *rc == 0 {
                        self.live.remove(&key);
                    }
                }
            }
            WalOp::Delete(seed) => {
                self.live.remove(tag_of(seed).as_bytes());
            }
        }
    }

    fn entries(&self) -> BTreeMap<[u8; COMP_TAG_LEN], SyncEntry> {
        self.live.iter().map(|(k, (_, e))| (*k, e.clone())).collect()
    }
}

fn apply_to_backend(backend: &LogBackend, op: WalOp) {
    match op {
        WalOp::Put(seed) => backend.record_put(&entry_of(seed)).unwrap(),
        WalOp::Ref(seed) => backend.record_ref(&tag_of(seed)).unwrap(),
        WalOp::Unref(seed) => backend.record_unref(&tag_of(seed)).unwrap(),
        WalOp::Delete(seed) => backend.record_delete(&tag_of(seed)).unwrap(),
    }
}

fn single_log_config(dir: &std::path::Path) -> LogConfig {
    let mut config = LogConfig::new(dir);
    config.logs = 1; // one WAL file: byte offsets map 1:1 to op history
    config.segment_bytes = u64::MAX; // never rotate
    config.checkpoint_every = 0;
    config
}

fn open_backend(
    dir: &std::path::Path,
    platform: &Arc<Platform>,
    enclave: &Arc<Enclave>,
) -> (LogBackend, Vec<SyncEntry>) {
    let backend = LogBackend::new(single_log_config(dir));
    let recovery = backend.open(platform, enclave).unwrap();
    (backend, recovery.entries)
}

/// The acceptance-criteria matrix: run a seeded 200-op sequence, then for
/// each truncation offset of the WAL file simulate a crash at that byte
/// and assert recovery lands exactly on the state after the last record
/// wholly below the cut — nothing acknowledged is lost, nothing torn is
/// half-applied.
#[test]
fn truncation_matrix_recovers_exact_acked_prefix() {
    let platform = platform();
    let enclave = platform.create_enclave(b"crash-matrix-enclave").unwrap();
    let dir = scratch("trunc-live");
    let (backend, initial) = open_backend(&dir, &platform, &enclave);
    assert!(initial.is_empty());

    let mut rng = TestRng::new(seed(0x200_0F5));
    let ops = gen_wal_ops(&mut rng, 200);
    let mut model = WalModel::default();
    // Boundary i = (durable WAL length, expected live state) after op i.
    let vfs = StdVfs;
    let wal_path = {
        // Ensure the file exists before measuring (first op creates it).
        apply_to_backend(&backend, ops[0]);
        backend.flush().unwrap();
        model.apply(ops[0]);
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "log"))
            .collect();
        assert_eq!(files.len(), 1, "single-log config must produce one WAL file");
        files[0].clone()
    };
    let mut boundaries: Vec<(u64, BTreeMap<[u8; COMP_TAG_LEN], SyncEntry>)> =
        vec![(0, BTreeMap::new()), (vfs.file_len(&wal_path).unwrap(), model.entries())];
    for &op in &ops[1..] {
        apply_to_backend(&backend, op);
        backend.flush().unwrap();
        model.apply(op);
        boundaries.push((vfs.file_len(&wal_path).unwrap(), model.entries()));
    }
    let full = std::fs::read(&wal_path).unwrap();
    assert_eq!(full.len() as u64, boundaries.last().unwrap().0);
    drop(backend);

    // Offsets to test: every boundary, boundary±1, plus interior strides —
    // or every single byte under SPEED_CRASH_EXHAUSTIVE=1.
    let total = full.len();
    let mut cuts: Vec<usize> = if exhaustive() {
        (0..=total).collect()
    } else {
        let mut cuts: Vec<usize> = boundaries
            .iter()
            .flat_map(|(len, _)| {
                let len = *len as usize;
                [len.saturating_sub(1), len, (len + 1).min(total)]
            })
            .collect();
        cuts.extend((0..total).step_by(13));
        cuts
    };
    cuts.sort_unstable();
    cuts.dedup();

    let crash_dir = scratch("trunc-crash");
    std::fs::create_dir_all(&crash_dir).unwrap();
    let crash_wal = crash_dir.join(wal_path.file_name().unwrap());
    for cut in cuts {
        std::fs::write(&crash_wal, &full[..cut]).unwrap();
        let (_backend, recovered) = open_backend(&crash_dir, &platform, &enclave);
        let expected = &boundaries
            .iter()
            .rev()
            .find(|(len, _)| *len as usize <= cut)
            .expect("boundary 0 always matches")
            .1;
        let got: BTreeMap<[u8; COMP_TAG_LEN], SyncEntry> =
            recovered.into_iter().map(|e| (*e.tag.as_bytes(), e)).collect();
        assert_eq!(
            &got, expected,
            "crash at byte {cut}/{total}: recovered state diverges from the \
             last durable prefix"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

// ---------------------------------------------------------------------------
// Fault-point matrix: fail the n-th fsync, for every n, through the full
// store (WAL-then-ack plus read-only degradation).
// ---------------------------------------------------------------------------

/// The seeded PUT/GET sequence the fault-point matrix replays. Tags repeat
/// (pool of 20) so duplicate PUTs exercise the Ref path too.
fn gen_store_ops(rng: &mut TestRng, count: usize) -> Vec<(bool, u8)> {
    (0..count).map(|_| (rng.chance(0.7), rng.byte() % 20)).collect()
}

/// Runs `ops` against a store on `vfs`, returning the set of tags whose
/// PUT was acknowledged. Panics if a GET diverges from the acked set's
/// first-writer-wins expectation while the store is healthy.
fn run_store_ops(
    platform: &Arc<Platform>,
    vfs: Arc<dyn Vfs>,
    dir: &std::path::Path,
    ops: &[(bool, u8)],
    checkpoint_every: u64,
) -> BTreeMap<[u8; COMP_TAG_LEN], Record> {
    let mut config = LogConfig::new(dir);
    config.checkpoint_every = checkpoint_every;
    let backend = Arc::new(LogBackend::with_vfs(vfs, config));
    let (store, _report) = ResultStore::open(platform, roomy_config(), backend).unwrap();
    let mut acked = BTreeMap::new();
    for &(is_put, seed) in ops {
        if is_put {
            let response = store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag_of(seed),
                record: record_of(seed),
            });
            match response {
                Message::PutResponse(body) if body.accepted => {
                    acked.insert(*tag_of(seed).as_bytes(), record_of(seed));
                }
                Message::PutResponse(_) => {} // rejected: must NOT survive
                other => panic!("unexpected PUT response {other:?}"),
            }
        } else {
            let response =
                store.handle(Message::GetRequest { app: AppId(1), tag: tag_of(seed) });
            match response {
                Message::GetResponse(body) => {
                    // A hit must always serve the acked content, even while
                    // the store is degraded read-only.
                    if let Some(record) = body.record {
                        assert_eq!(
                            Some(&record),
                            acked.get(tag_of(seed).as_bytes()),
                            "GET returned content that was never acknowledged"
                        );
                    }
                }
                other => panic!("unexpected GET response {other:?}"),
            }
        }
    }
    acked
}

/// Recovers the directory with a clean filesystem and returns the
/// recovered tag → record map.
fn recover_store(
    platform: &Arc<Platform>,
    dir: &std::path::Path,
) -> BTreeMap<[u8; COMP_TAG_LEN], Record> {
    let backend = Arc::new(LogBackend::new(LogConfig::new(dir)));
    let (store, _report) = ResultStore::open(platform, roomy_config(), backend).unwrap();
    let mut out = BTreeMap::new();
    for seed in 0..20u8 {
        if let Message::GetResponse(body) =
            store.handle(Message::GetRequest { app: AppId(1), tag: tag_of(seed) })
        {
            if let Some(record) = body.record {
                out.insert(*tag_of(seed).as_bytes(), record);
            }
        }
    }
    out
}

/// For every fsync index n: make the n-th and all later fsyncs fail, run
/// the seeded sequence, and assert the reopened store holds exactly the
/// acknowledged PUTs — none lost, none resurrected.
#[test]
fn fsync_fault_point_matrix_preserves_ack_contract() {
    let platform = platform();
    let mut rng = TestRng::new(seed(0xFA_517));
    let ops = gen_store_ops(&mut rng, 60);

    // Pass 1 (fault-free): count the fsyncs the sequence performs.
    let dir = scratch("fsync-count");
    let vfs = FaultVfs::new();
    run_store_ops(&platform, vfs.clone(), &dir, &ops, 0);
    let fsyncs = vfs.op_count(FaultOp::Fsync);
    assert!(fsyncs > 0, "sequence must fsync at least once");
    let _ = std::fs::remove_dir_all(&dir);

    let stride = if exhaustive() { 1 } else { 3 };
    for n in (0..fsyncs).step_by(stride) {
        let dir = scratch(&format!("fsync-{n}"));
        let vfs = FaultVfs::new();
        vfs.fail_nth(FaultOp::Fsync, n, FailMode::Sticky);
        let acked = run_store_ops(&platform, vfs.clone(), &dir, &ops, 0);
        let recovered = recover_store(&platform, &dir);
        assert_eq!(
            recovered, acked,
            "fsync fault at call {n}/{fsyncs}: recovered entries diverge from \
             the acknowledged set"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A failed checkpoint (rename denied) must lose nothing: the WAL still
/// holds every acknowledged record and the store keeps serving.
#[test]
fn checkpoint_rename_fault_loses_nothing() {
    let platform = platform();
    let mut rng = TestRng::new(seed(0xC4E_C12));
    let ops = gen_store_ops(&mut rng, 40);
    let dir = scratch("ckpt-rename");
    let vfs = FaultVfs::new();
    vfs.fail_nth(FaultOp::Rename, 0, FailMode::Sticky);
    // checkpoint_every=8: several checkpoint attempts fire mid-sequence,
    // all failing at the rename step.
    let acked = run_store_ops(&platform, vfs.clone(), &dir, &ops, 8);
    assert!(acked.len() > 8, "enough PUTs to cross the checkpoint threshold");
    assert!(vfs.injected_failures() > 0, "a checkpoint rename must have fired");
    assert!(
        !dir.join("checkpoint.snap").exists(),
        "no checkpoint can appear when every rename fails"
    );
    let recovered = recover_store(&platform, &dir);
    assert_eq!(recovered, acked, "failed checkpoints must not lose WAL records");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// ENOSPC: disk-full degradation and recovery on a bigger disk.
// ---------------------------------------------------------------------------

#[test]
fn enospc_degrades_read_only_then_recovers_on_bigger_disk() {
    let platform = platform();
    let dir = scratch("enospc");
    let vfs = FaultVfs::new();
    vfs.set_disk_capacity(Some(2048));
    let backend =
        Arc::new(LogBackend::with_vfs(vfs.clone() as Arc<dyn Vfs>, LogConfig::new(&dir)));
    let (store, _report) =
        ResultStore::open(&platform, roomy_config(), Arc::clone(&backend) as _).unwrap();

    let mut acked: Vec<u8> = Vec::new();
    let mut first_reject = None;
    for seed in 0..40u8 {
        let response = store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag_of(seed),
            record: record_of(seed),
        });
        match response {
            Message::PutResponse(body) if body.accepted => acked.push(seed),
            Message::PutResponse(body) => {
                first_reject.get_or_insert((seed, body.reason));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    let (rejected_seed, reason) = first_reject.expect("2 KiB disk must fill");
    assert!(!acked.is_empty(), "some PUTs must land before the disk fills");
    assert!(
        backend.read_only().is_some(),
        "disk-full must degrade the backend to read-only"
    );
    assert!(
        reason.is_some_and(|r| r.contains("read-only") || r.contains("fault")),
        "rejection reason should surface the degradation"
    );
    // GETs keep serving while degraded.
    let first = acked[0];
    match store.handle(Message::GetRequest { app: AppId(1), tag: tag_of(first) }) {
        Message::GetResponse(body) => {
            assert_eq!(body.record, Some(record_of(first)), "degraded GET must hit");
        }
        other => panic!("unexpected response {other:?}"),
    }
    drop(store);

    // Operator swaps in a bigger disk and restarts.
    vfs.set_disk_capacity(None);
    let backend =
        Arc::new(LogBackend::with_vfs(vfs.clone() as Arc<dyn Vfs>, LogConfig::new(&dir)));
    let (store, _report) =
        ResultStore::open(&platform, roomy_config(), Arc::clone(&backend) as _).unwrap();
    assert!(backend.read_only().is_none(), "restart clears degradation");
    for &seed in &acked {
        match store.handle(Message::GetRequest { app: AppId(1), tag: tag_of(seed) }) {
            Message::GetResponse(body) => {
                assert_eq!(body.record, Some(record_of(seed)), "acked PUT {seed} lost");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    match store.handle(Message::GetRequest { app: AppId(1), tag: tag_of(rejected_seed) })
    {
        Message::GetResponse(body) => {
            assert!(body.record.is_none(), "rejected PUT resurfaced as a phantom");
        }
        other => panic!("unexpected response {other:?}"),
    }
    // Writes flow again on the healthy disk.
    match store.handle(Message::PutRequest {
        app: AppId(1),
        tag: tag_of(200),
        record: record_of(200),
    }) {
        Message::PutResponse(body) => assert!(body.accepted, "{:?}", body.reason),
        other => panic!("unexpected response {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Snapshot path under injected faults.
// ---------------------------------------------------------------------------

/// An injected read error during restore quarantines the snapshot and
/// starts fresh — the store must come up, and the evidence must survive.
#[test]
fn snapshot_read_fault_quarantines_and_starts_fresh() {
    let platform = platform();
    let dir = scratch("snap-readfault");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.snap");
    let store = ResultStore::new(&platform, roomy_config()).unwrap();
    store.handle(Message::PutRequest {
        app: AppId(1),
        tag: tag_of(1),
        record: record_of(1),
    });
    write_snapshot_file_vfs(&platform, &store, &StdVfs, &path).unwrap();
    drop(store);

    let vfs = FaultVfs::new();
    vfs.fail_nth(FaultOp::Read, 0, FailMode::Once);
    let (fresh, outcome) =
        restore_or_fresh_vfs(&platform, roomy_config(), vfs.as_ref(), &path).unwrap();
    assert!(matches!(outcome, SnapshotLoad::FreshUnreadable(_)), "{outcome:?}");
    assert_eq!(fresh.stats().entries, 0);
    let corrupt = dir.join("store.snap.corrupt");
    assert!(corrupt.exists(), "unreadable snapshot must be quarantined");
    assert!(!path.exists());

    // The quarantined bytes are intact: an operator can move them back.
    std::fs::rename(&corrupt, &path).unwrap();
    let (restored, outcome) =
        restore_or_fresh_vfs(&platform, roomy_config(), &StdVfs, &path).unwrap();
    assert_eq!(outcome, SnapshotLoad::Restored);
    assert_eq!(restored.stats().entries, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
