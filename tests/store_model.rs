//! Model-based differential testing of the sharded `ResultStore`.
//!
//! A flat `BTreeMap` plus an explicit LRU list is the *reference model*:
//! simple enough to be obviously correct. Random operation sequences —
//! single GET/PUT, batches, quota-limited PUTs, and snapshot save/load in
//! the middle of a sequence — run against both the real store and the
//! model, and every response and every counter must agree. A divergence
//! shrinks to a short op list and prints a `SPEED_TESTKIT_SEED=…`
//! reproducer (see docs/TESTING.md).

use std::collections::BTreeMap;

use speed_enclave::{CostModel, Platform};
use speed_store::persist::{restore, snapshot};
use speed_store::{QuotaPolicy, ResultStore, StoreConfig};
use speed_testkit::{check, Shrink, TestRng};
use speed_wire::{
    AppId, BatchItem, BatchItemResult, CompTag, Message, Record, COMP_TAG_LEN,
};

/// Capacity used by the eviction-heavy differential config: small enough
/// that random sequences of a few dozen ops cross it repeatedly.
const MAX_ENTRIES: usize = 8;
const MAX_BYTES: u64 = 600;

/// Tags are drawn from this many distinct values so sequences collide.
const TAG_SPACE: u8 = 12;

#[derive(Clone, Debug, PartialEq)]
enum Op {
    Get {
        tag: u8,
    },
    Put {
        tag: u8,
        len: u8,
        fill: u8,
    },
    /// A PUT carrying its prefilter tag (`Message::PutPrefiltered`), which
    /// feeds the store's negative filter.
    PutPre {
        tag: u8,
        len: u8,
        fill: u8,
    },
    Batch {
        items: Vec<Item>,
    },
    /// Fetches the filter snapshot and asserts the no-false-negative
    /// invariant against every prefilter inserted this store generation.
    FilterCheck,
    Reload,
}

#[derive(Clone, Debug, PartialEq)]
enum Item {
    Get {
        tag: u8,
    },
    /// A batch GET carrying its prefilter tag
    /// (`BatchItem::GetPrefiltered`): semantically identical to `Get` —
    /// the store may answer it from the negative filter without touching
    /// the dictionary, and this model holds it to exactly `Get`'s answers.
    GetPre {
        tag: u8,
    },
    Put {
        tag: u8,
        len: u8,
        fill: u8,
    },
}

/// The deterministic prefilter tag a `PutPre { tag, .. }` op carries.
fn prefilter_of(tag: u8) -> u64 {
    u64::from(tag).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

/// Tracks which prefilter tags were fed to the current store generation,
/// and checks the store's merged filter never denies one of them (the
/// conservative no-false-negative contract — bits are never cleared within
/// a generation, not even by eviction).
#[derive(Default)]
struct FilterOracle {
    inserted: std::collections::BTreeSet<u64>,
}

impl FilterOracle {
    fn check(&self, store: &ResultStore, context: &str) {
        let snapshot = store.filter_snapshot();
        let mut shards = snapshot.shards.into_iter();
        let Some(mut merged) = shards.next() else { return };
        for shard in shards {
            merged.merge_from(&shard);
        }
        for &prefilter in &self.inserted {
            assert!(
                merged.may_contain(prefilter),
                "{context}: filter denies inserted prefilter {prefilter:#x} \
                 (false negative)"
            );
        }
    }
}

impl Shrink for Item {
    fn shrink(&self) -> Vec<Self> {
        match *self {
            Item::Get { tag } => {
                tag.shrink().into_iter().map(|tag| Item::Get { tag }).collect()
            }
            Item::GetPre { tag } => {
                // A prefiltered GET simplifies toward the legacy GET first.
                let mut out = vec![Item::Get { tag }];
                out.extend(tag.shrink().into_iter().map(|tag| Item::GetPre { tag }));
                out
            }
            Item::Put { tag, len, fill } => {
                let mut out = vec![Item::Get { tag }];
                out.extend(tag.shrink().into_iter().map(|tag| Item::Put {
                    tag,
                    len,
                    fill,
                }));
                out.extend(len.shrink().into_iter().map(|len| Item::Put {
                    tag,
                    len,
                    fill,
                }));
                out.extend(fill.shrink().into_iter().map(|fill| Item::Put {
                    tag,
                    len,
                    fill,
                }));
                out
            }
        }
    }
}

impl Shrink for Op {
    fn shrink(&self) -> Vec<Self> {
        match self {
            Op::Get { tag } => {
                tag.shrink().into_iter().map(|tag| Op::Get { tag }).collect()
            }
            Op::Put { tag, len, fill } => Item::Put { tag: *tag, len: *len, fill: *fill }
                .shrink()
                .into_iter()
                .map(item_to_op)
                .collect(),
            Op::PutPre { tag, len, fill } => {
                // A prefiltered PUT simplifies toward the legacy PUT first.
                let mut out = vec![Op::Put { tag: *tag, len: *len, fill: *fill }];
                out.extend(
                    Item::Put { tag: *tag, len: *len, fill: *fill }
                        .shrink()
                        .into_iter()
                        .map(|item| match item {
                            Item::Get { tag } | Item::GetPre { tag } => Op::Get { tag },
                            Item::Put { tag, len, fill } => Op::PutPre { tag, len, fill },
                        }),
                );
                out
            }
            Op::Batch { items } => {
                // A batch simplifies toward its unbatched single ops, then
                // element-wise via the Vec shrinker.
                let mut out: Vec<Op> = items.iter().cloned().map(item_to_op).collect();
                out.extend(items.shrink().into_iter().map(|items| Op::Batch { items }));
                out
            }
            Op::FilterCheck | Op::Reload => Vec::new(),
        }
    }
}

fn item_to_op(item: Item) -> Op {
    match item {
        // Single-message GETs have no prefiltered form; the prefiltered
        // shape only exists inside batches.
        Item::Get { tag } | Item::GetPre { tag } => Op::Get { tag },
        Item::Put { tag, len, fill } => Op::Put { tag, len, fill },
    }
}

fn gen_item(rng: &mut TestRng) -> Item {
    let tag = rng.byte() % TAG_SPACE;
    if rng.chance(0.45) {
        if rng.chance(0.5) {
            Item::GetPre { tag }
        } else {
            Item::Get { tag }
        }
    } else {
        Item::Put { tag, len: rng.byte(), fill: rng.byte() }
    }
}

fn gen_op(rng: &mut TestRng, with_reload: bool) -> Op {
    if with_reload && rng.chance(0.08) {
        return Op::Reload;
    }
    if rng.chance(0.08) {
        return Op::FilterCheck;
    }
    if rng.chance(0.2) {
        let count = rng.range_usize(0, 6);
        return Op::Batch { items: (0..count).map(|_| gen_item(rng)).collect() };
    }
    let op = item_to_op(gen_item(rng));
    // Half the single PUTs carry their prefilter tag.
    match op {
        Op::Put { tag, len, fill } if rng.chance(0.5) => Op::PutPre { tag, len, fill },
        other => other,
    }
}

fn gen_ops(rng: &mut TestRng, max_len: usize, with_reload: bool) -> Vec<Op> {
    let len = rng.range_usize(0, max_len);
    (0..len).map(|_| gen_op(rng, with_reload)).collect()
}

fn tag_of(seed: u8) -> CompTag {
    CompTag::from_bytes([seed; COMP_TAG_LEN])
}

/// The record a `Put { tag, len, fill }` op writes. Deterministic in the op
/// so first-writer-wins is observable: a second PUT of the same tag with a
/// different `fill` must NOT change what GET returns.
fn record_of(tag: u8, len: u8, fill: u8) -> Record {
    Record {
        challenge: vec![fill; 32],
        wrapped_key: [fill; 16],
        nonce: [tag; 12],
        boxed_result: vec![fill; usize::from(len)],
    }
}

/// The reference model: a flat map plus a precise LRU list (front = least
/// recently used). The real store's lazy atomic-touch LRU is observably
/// equivalent to this.
#[derive(Default)]
struct Model {
    entries: BTreeMap<[u8; COMP_TAG_LEN], (Record, u64)>, // tag -> (record, hits)
    lru: Vec<[u8; COMP_TAG_LEN]>,
    evictions: u64,
}

impl Model {
    fn touch(&mut self, tag: [u8; COMP_TAG_LEN]) {
        self.lru.retain(|t| *t != tag);
        self.lru.push(tag);
    }

    fn get(&mut self, tag: u8) -> Option<Record> {
        let key = [tag; COMP_TAG_LEN];
        let (record, hits) = self.entries.get_mut(&key)?;
        *hits += 1;
        let record = record.clone();
        self.touch(key);
        Some(record)
    }

    /// Returns whether the PUT inserted a new entry (false = duplicate).
    fn put(&mut self, tag: u8, len: u8, fill: u8) -> bool {
        let key = [tag; COMP_TAG_LEN];
        if self.entries.contains_key(&key) {
            return false; // first writer wins; no recency bump
        }
        self.entries.insert(key, (record_of(tag, len, fill), 0));
        self.lru.push(key);
        true
    }

    fn stored_bytes(&self) -> u64 {
        self.entries.values().map(|(r, _)| r.boxed_result.len() as u64).sum()
    }

    fn enforce_capacity(&mut self) {
        while self.entries.len() > MAX_ENTRIES || self.stored_bytes() > MAX_BYTES {
            let victim = self.lru.remove(0);
            self.entries.remove(&victim);
            self.evictions += 1;
        }
    }

    /// Mirrors a snapshot save/restore: entries and hits survive, but the
    /// LRU order resets to the snapshot's export order (hits descending,
    /// tag ascending — the `popular(0)` ordering), and the new store's
    /// eviction counter starts at zero.
    fn reload(&mut self) {
        let mut order: Vec<[u8; COMP_TAG_LEN]> = self.entries.keys().copied().collect();
        order.sort_by(|a, b| {
            let ha = self.entries[a].1;
            let hb = self.entries[b].1;
            hb.cmp(&ha).then(a.cmp(b))
        });
        self.lru = order;
        self.evictions = 0;
    }
}

fn check_counters(store: &ResultStore, model: &Model, context: &str) {
    let stats = store.stats();
    assert_eq!(stats.entries, model.entries.len() as u64, "{context}: entry count");
    assert_eq!(stats.stored_bytes, model.stored_bytes(), "{context}: stored bytes");
    assert_eq!(stats.evictions, model.evictions, "{context}: eviction count");
    assert!(stats.entries as usize <= MAX_ENTRIES, "{context}: entry budget");
    assert!(stats.stored_bytes <= MAX_BYTES, "{context}: byte budget");
}

/// Runs one op against both store and model, asserting the responses match.
/// Returns the possibly-replaced store (Reload swaps it).
fn apply_op(
    platform: &Platform,
    store: ResultStore,
    model: &mut Model,
    oracle: &mut FilterOracle,
    op: &Op,
    index: usize,
) -> ResultStore {
    let app = AppId(1);
    match op {
        Op::Get { tag } => {
            let response = store.handle(Message::GetRequest { app, tag: tag_of(*tag) });
            let expected = model.get(*tag);
            match response {
                Message::GetResponse(body) => {
                    assert_eq!(body.found, expected.is_some(), "op {index}: GET found");
                    assert_eq!(body.record, expected, "op {index}: GET record");
                }
                other => panic!("op {index}: unexpected GET response {other:?}"),
            }
        }
        Op::Put { tag, len, fill } => {
            let response = store.handle(Message::PutRequest {
                app,
                tag: tag_of(*tag),
                record: record_of(*tag, *len, *fill),
            });
            let inserted = model.put(*tag, *len, *fill);
            model.enforce_capacity();
            match response {
                Message::PutResponse(body) => {
                    assert!(body.accepted, "op {index}: PUT must be accepted");
                    if inserted {
                        assert_eq!(body.reason, None, "op {index}: fresh PUT reason");
                    } else {
                        assert!(
                            body.reason
                                .as_deref()
                                .is_some_and(|r| r.contains("duplicate")),
                            "op {index}: duplicate PUT reason, got {:?}",
                            body.reason
                        );
                    }
                }
                other => panic!("op {index}: unexpected PUT response {other:?}"),
            }
        }
        Op::PutPre { tag, len, fill } => {
            let response = store.handle(Message::PutPrefiltered {
                app,
                tag: tag_of(*tag),
                prefilter: prefilter_of(*tag),
                record: record_of(*tag, *len, *fill),
            });
            let inserted = model.put(*tag, *len, *fill);
            model.enforce_capacity();
            // Conservative contract: once a prefilter has been offered to
            // this generation, the filter may never deny it — duplicates
            // land on entries whose shard is either already carrying the
            // bits or marked incomplete (always-maybe), and eviction never
            // clears bits.
            oracle.inserted.insert(prefilter_of(*tag));
            match response {
                Message::PutResponse(body) => {
                    assert!(body.accepted, "op {index}: PUT must be accepted");
                    if inserted {
                        assert_eq!(body.reason, None, "op {index}: fresh PUT reason");
                    } else {
                        assert!(
                            body.reason
                                .as_deref()
                                .is_some_and(|r| r.contains("duplicate")),
                            "op {index}: duplicate PUT reason, got {:?}",
                            body.reason
                        );
                    }
                }
                other => panic!("op {index}: unexpected PUT response {other:?}"),
            }
        }
        Op::FilterCheck => {
            oracle.check(&store, &format!("op {index}"));
        }
        Op::Batch { items } => {
            let wire_items: Vec<BatchItem> = items
                .iter()
                .map(|item| match item {
                    Item::Get { tag } => BatchItem::Get { tag: tag_of(*tag) },
                    Item::GetPre { tag } => BatchItem::GetPrefiltered {
                        tag: tag_of(*tag),
                        prefilter: prefilter_of(*tag),
                    },
                    Item::Put { tag, len, fill } => BatchItem::Put {
                        tag: tag_of(*tag),
                        record: record_of(*tag, *len, *fill),
                    },
                })
                .collect();
            let response = store.handle(Message::BatchRequest { app, items: wire_items });
            // The model settles items in request order; capacity is enforced
            // once after the whole batch, exactly like the real store.
            let mut expected = Vec::with_capacity(items.len());
            let mut inserted_any = false;
            for item in items {
                match item {
                    Item::Get { tag } | Item::GetPre { tag } => {
                        expected.push(match model.get(*tag) {
                            Some(record) => BatchItemResult::found(record),
                            None => BatchItemResult::not_found(),
                        });
                    }
                    Item::Put { tag, len, fill } => {
                        if model.put(*tag, *len, *fill) {
                            inserted_any = true;
                            expected.push(BatchItemResult::accepted());
                        } else {
                            let mut dup = BatchItemResult::accepted();
                            dup.reason = Some("duplicate: existing entry kept".into());
                            expected.push(dup);
                        }
                    }
                }
            }
            if inserted_any {
                model.enforce_capacity();
            }
            match response {
                Message::BatchResponse(results) => {
                    assert_eq!(results, expected, "op {index}: batch results");
                }
                other => panic!("op {index}: unexpected batch response {other:?}"),
            }
        }
        Op::Reload => {
            let sealed = snapshot(platform, &store).expect("snapshot");
            drop(store);
            let restored = restore(
                platform,
                StoreConfig::with_capacity(MAX_ENTRIES, MAX_BYTES),
                &sealed,
            )
            .expect("restore");
            model.reload();
            // Restored entries import with unknown prefilters (shards go
            // incomplete), so the oracle restarts with the generation.
            oracle.inserted.clear();
            check_counters(&restored, model, &format!("op {index} (reload)"));
            return restored;
        }
    }
    check_counters(&store, model, &format!("op {index}"));
    store
}

/// The main differential property: store == model for every response and
/// counter, across GET/PUT/batch and mid-sequence snapshot reloads, under
/// eviction pressure.
#[test]
fn store_matches_reference_model() {
    check(
        "store_matches_reference_model",
        0x5EED_0001,
        |rng| gen_ops(rng, 40, true),
        |ops: &Vec<Op>| {
            let platform = Platform::new(CostModel::no_sgx());
            let mut store = ResultStore::new(
                &platform,
                StoreConfig::with_capacity(MAX_ENTRIES, MAX_BYTES),
            )
            .expect("store");
            let mut model = Model::default();
            let mut oracle = FilterOracle::default();
            for (index, op) in ops.iter().enumerate() {
                store = apply_op(&platform, store, &mut model, &mut oracle, op, index);
            }
        },
    );
}

/// Sharding must be invisible when nothing evicts: the same op sequence on
/// a 1-shard and an 8-shard store (both with ample capacity) produces
/// identical responses and aggregate counters.
#[test]
fn shard_count_is_transparent_without_eviction() {
    check(
        "shard_count_is_transparent_without_eviction",
        0x5EED_0002,
        |rng| gen_ops(rng, 30, false),
        |ops: &Vec<Op>| {
            let platform = Platform::new(CostModel::no_sgx());
            let roomy = |shards: usize| {
                StoreConfig::with_capacity(10_000, u64::MAX).with_shards(shards)
            };
            let single =
                ResultStore::new(&platform, roomy(1)).expect("single-shard store");
            let sharded = ResultStore::new(&platform, roomy(8)).expect("sharded store");
            let app = AppId(1);
            let mut oracle = FilterOracle::default();
            for (index, op) in ops.iter().enumerate() {
                if let Op::FilterCheck = op {
                    // Raw filter snapshots are NOT shard-transparent (shape
                    // and false-positive patterns differ by shard count);
                    // only the no-false-negative contract must hold on both.
                    oracle.check(&single, &format!("op {index} (single)"));
                    oracle.check(&sharded, &format!("op {index} (sharded)"));
                    continue;
                }
                let message = |()| match op {
                    Op::Get { tag } => Message::GetRequest { app, tag: tag_of(*tag) },
                    Op::Put { tag, len, fill } => Message::PutRequest {
                        app,
                        tag: tag_of(*tag),
                        record: record_of(*tag, *len, *fill),
                    },
                    Op::PutPre { tag, len, fill } => Message::PutPrefiltered {
                        app,
                        tag: tag_of(*tag),
                        prefilter: prefilter_of(*tag),
                        record: record_of(*tag, *len, *fill),
                    },
                    Op::Batch { items } => Message::BatchRequest {
                        app,
                        items: items
                            .iter()
                            .map(|item| match item {
                                Item::Get { tag } => BatchItem::Get { tag: tag_of(*tag) },
                                Item::GetPre { tag } => BatchItem::GetPrefiltered {
                                    tag: tag_of(*tag),
                                    prefilter: prefilter_of(*tag),
                                },
                                Item::Put { tag, len, fill } => BatchItem::Put {
                                    tag: tag_of(*tag),
                                    record: record_of(*tag, *len, *fill),
                                },
                            })
                            .collect(),
                    },
                    Op::FilterCheck | Op::Reload => {
                        unreachable!("handled above / disabled for this property")
                    }
                };
                if let Op::PutPre { tag, .. } = op {
                    oracle.inserted.insert(prefilter_of(*tag));
                }
                let a = single.handle(message(()));
                let b = sharded.handle(message(()));
                assert_eq!(a, b, "op {index}: shard-count divergence");
            }
            let (a, b) = (single.stats(), sharded.stats());
            assert_eq!(a.entries, b.entries, "entry counts diverged");
            assert_eq!(a.stored_bytes, b.stored_bytes, "stored bytes diverged");
            assert_eq!(a.hits, b.hits, "hit counts diverged");
        },
    );
}

/// The durable backend must be observably identical to the in-memory
/// store, including across restarts: random GET/PUT/batch sequences run
/// against a log-backed store, and every `Reload` drops the store and
/// recovers it from the checkpoint + WAL on disk. Responses must keep
/// matching the flat-map model the whole way (first-writer-wins included),
/// with checkpoints firing mid-sequence to exercise replay bounding.
#[test]
fn durable_backend_matches_model_across_crash_reloads() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use speed_store::{LogBackend, LogConfig};

    static CASE: AtomicU64 = AtomicU64::new(0);

    check(
        "durable_backend_matches_model_across_crash_reloads",
        0x5EED_0004,
        |rng| gen_ops(rng, 25, true),
        |ops: &Vec<Op>| {
            // Same platform seed across reloads: recovery models a restart
            // of the same machine, and sealing keys derive from it.
            let platform = Platform::with_seed(CostModel::no_sgx(), Some(0xD0_5EED));
            let dir = std::env::temp_dir().join(format!(
                "speed-store-model-durable-{}-{}",
                std::process::id(),
                CASE.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let config = || StoreConfig::with_capacity(10_000, u64::MAX);
            let mut log_config = LogConfig::new(&dir);
            log_config.checkpoint_every = 8; // checkpoints fire mid-sequence
            let open = || {
                let backend = Arc::new(LogBackend::new(log_config.clone()));
                ResultStore::open(&platform, config(), backend).expect("open").0
            };
            let mut store = open();
            // tag -> first-written record; no eviction, so entries only grow.
            let mut model: BTreeMap<u8, Record> = BTreeMap::new();
            let mut oracle = FilterOracle::default();
            let app = AppId(1);
            for (index, op) in ops.iter().enumerate() {
                match op {
                    Op::Get { tag } => {
                        let response =
                            store.handle(Message::GetRequest { app, tag: tag_of(*tag) });
                        match response {
                            Message::GetResponse(body) => assert_eq!(
                                body.record,
                                model.get(tag).cloned(),
                                "op {index}: GET diverged"
                            ),
                            other => panic!("op {index}: unexpected {other:?}"),
                        }
                    }
                    Op::Put { tag, len, fill } => {
                        let response = store.handle(Message::PutRequest {
                            app,
                            tag: tag_of(*tag),
                            record: record_of(*tag, *len, *fill),
                        });
                        match response {
                            Message::PutResponse(body) => {
                                assert!(body.accepted, "op {index}: {:?}", body.reason)
                            }
                            other => panic!("op {index}: unexpected {other:?}"),
                        }
                        model.entry(*tag).or_insert_with(|| record_of(*tag, *len, *fill));
                    }
                    Op::PutPre { tag, len, fill } => {
                        let response = store.handle(Message::PutPrefiltered {
                            app,
                            tag: tag_of(*tag),
                            prefilter: prefilter_of(*tag),
                            record: record_of(*tag, *len, *fill),
                        });
                        match response {
                            Message::PutResponse(body) => {
                                assert!(body.accepted, "op {index}: {:?}", body.reason)
                            }
                            other => panic!("op {index}: unexpected {other:?}"),
                        }
                        model.entry(*tag).or_insert_with(|| record_of(*tag, *len, *fill));
                        oracle.inserted.insert(prefilter_of(*tag));
                    }
                    Op::FilterCheck => oracle.check(&store, &format!("op {index}")),
                    Op::Batch { items } => {
                        let wire_items: Vec<BatchItem> = items
                            .iter()
                            .map(|item| match item {
                                Item::Get { tag } => BatchItem::Get { tag: tag_of(*tag) },
                                Item::GetPre { tag } => BatchItem::GetPrefiltered {
                                    tag: tag_of(*tag),
                                    prefilter: prefilter_of(*tag),
                                },
                                Item::Put { tag, len, fill } => BatchItem::Put {
                                    tag: tag_of(*tag),
                                    record: record_of(*tag, *len, *fill),
                                },
                            })
                            .collect();
                        let response = store
                            .handle(Message::BatchRequest { app, items: wire_items });
                        let mut expected = Vec::with_capacity(items.len());
                        for item in items {
                            match item {
                                Item::Get { tag } | Item::GetPre { tag } => {
                                    expected.push(match model.get(tag) {
                                        Some(record) => {
                                            BatchItemResult::found(record.clone())
                                        }
                                        None => BatchItemResult::not_found(),
                                    });
                                }
                                Item::Put { tag, len, fill } => {
                                    if model.contains_key(tag) {
                                        let mut dup = BatchItemResult::accepted();
                                        dup.reason =
                                            Some("duplicate: existing entry kept".into());
                                        expected.push(dup);
                                    } else {
                                        model.insert(*tag, record_of(*tag, *len, *fill));
                                        expected.push(BatchItemResult::accepted());
                                    }
                                }
                            }
                        }
                        match response {
                            Message::BatchResponse(results) => assert_eq!(
                                results, expected,
                                "op {index}: batch diverged"
                            ),
                            other => panic!("op {index}: unexpected {other:?}"),
                        }
                    }
                    Op::Reload => {
                        // Crash-restart: everything not on disk is gone.
                        drop(store);
                        store = open();
                        // Recovered entries re-enter via rebuild (prefilters
                        // are not persisted), so the oracle restarts too.
                        oracle.inserted.clear();
                        assert_eq!(
                            store.stats().entries,
                            model.len() as u64,
                            "op {index}: reload lost or invented entries"
                        );
                    }
                }
            }
            // Final restart: the complete model must survive.
            drop(store);
            let store = open();
            for (tag, record) in &model {
                let response =
                    store.handle(Message::GetRequest { app, tag: tag_of(*tag) });
                match response {
                    Message::GetResponse(body) => assert_eq!(
                        body.record.as_ref(),
                        Some(record),
                        "final reload: tag {tag} diverged"
                    ),
                    other => panic!("final reload: unexpected {other:?}"),
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        },
    );
}

/// An op stream for the multi-node arm: flat store ops interleaved with
/// node kills and rejoins. Execution semantics are defined for *any*
/// sequence (shrinking may drop a `Kill` or `Rejoin`): `Kill` first heals
/// the cluster (all up, hints drained) then downs one node, and `Rejoin`
/// heals the cluster, so at most one node is ever down.
#[derive(Clone, Debug, PartialEq)]
enum ClusterOp {
    Flat(Op),
    Kill { node: u8 },
    Rejoin,
}

impl Shrink for ClusterOp {
    fn shrink(&self) -> Vec<Self> {
        match self {
            ClusterOp::Flat(op) => op.shrink().into_iter().map(ClusterOp::Flat).collect(),
            ClusterOp::Kill { .. } | ClusterOp::Rejoin => Vec::new(),
        }
    }
}

fn gen_cluster_ops(rng: &mut TestRng) -> Vec<ClusterOp> {
    let len = rng.range_usize(0, 40);
    let mut down = false;
    let mut ops = Vec::with_capacity(len + 1);
    for _ in 0..len {
        if !down && rng.chance(0.12) {
            ops.push(ClusterOp::Kill { node: rng.byte() % 3 });
            down = true;
        } else if down && rng.chance(0.3) {
            ops.push(ClusterOp::Rejoin);
            down = false;
        } else {
            ops.push(ClusterOp::Flat(gen_op(rng, false)));
        }
    }
    // Converge at the end: the final state must match the flat model.
    ops.push(ClusterOp::Rejoin);
    ops
}

/// Multi-node arm of the differential tester: the same op sequence runs
/// against a 3-node `ClusterClient` (R = 2, in-process stores, roomy
/// capacity so eviction order cannot diverge across placements) and the
/// flat map model — with a node killed and rejoined mid-sequence. While a
/// node is down, write-quorum-1 PUTs and read-from-any GETs must keep
/// every response identical to the flat model's; each rejoin drains the
/// hinted PUTs, after which the killed node's replicas have converged.
#[test]
fn cluster_matches_flat_model_across_node_kill_and_rejoin() {
    use speed_core::{
        BreakerConfig, ClusterClient, ClusterConfig, Connector, InProcessClient,
        OutageSwitch, ResilienceConfig, RetryPolicy, StoreClient, SwitchedClient,
    };
    use speed_wire::SessionAuthority;
    use std::sync::Arc;

    check(
        "cluster_matches_flat_model_across_node_kill_and_rejoin",
        0x5EED_0005,
        gen_cluster_ops,
        |ops: &Vec<ClusterOp>| {
            let platform = Platform::new(CostModel::no_sgx());
            let authority = Arc::new(SessionAuthority::with_seed(55));
            let enclave = platform.create_enclave(b"cluster-model").unwrap();
            let mut builder = ClusterClient::builder(ClusterConfig {
                node_resilience: ResilienceConfig {
                    retry: RetryPolicy::none(),
                    breaker: BreakerConfig {
                        // The property wants every failure visible as a
                        // clean failover, never a fast-fail window.
                        failure_threshold: 1_000_000,
                        cooldown: std::time::Duration::from_millis(1),
                    },
                    ..ResilienceConfig::default()
                },
                ..ClusterConfig::default()
            });
            let mut switches = Vec::new();
            for _ in 0..3u32 {
                let store = Arc::new(
                    ResultStore::new(
                        &platform,
                        StoreConfig::with_capacity(10_000, u64::MAX),
                    )
                    .unwrap(),
                );
                let switch = Arc::new(OutageSwitch::new());
                let connector: Connector = {
                    let switch = Arc::clone(&switch);
                    let authority = Arc::clone(&authority);
                    let platform = Arc::clone(&platform);
                    let enclave = Arc::clone(&enclave);
                    Box::new(move || {
                        if switch.is_down() {
                            return Err(speed_core::CoreError::StoreUnavailable(
                                "node is down".into(),
                            ));
                        }
                        let inner = InProcessClient::connect(
                            Arc::clone(&store),
                            &authority,
                            &platform,
                            &enclave,
                        )?;
                        Ok(Box::new(SwitchedClient::new(
                            Box::new(inner),
                            Arc::clone(&switch),
                        )) as Box<dyn StoreClient>)
                    })
                };
                builder = builder.node(switches.len() as u32, connector);
                switches.push(switch);
            }
            let mut client = builder.build().unwrap();

            let heal = |client: &ClusterClient, switches: &[Arc<OutageSwitch>]| {
                for switch in switches {
                    switch.set_down(false);
                }
                client.drain_hints();
                assert_eq!(client.hint_depth(), 0, "heal left hints parked");
            };

            let mut model: BTreeMap<u8, Record> = BTreeMap::new();
            let mut oracle = FilterOracle::default();
            let mut any_down = false;
            let app = AppId(1);
            for (index, op) in ops.iter().enumerate() {
                let flat_op = match op {
                    ClusterOp::Kill { node } => {
                        heal(&client, &switches);
                        switches[usize::from(node % 3)].set_down(true);
                        any_down = true;
                        continue;
                    }
                    ClusterOp::Rejoin => {
                        heal(&client, &switches);
                        any_down = false;
                        continue;
                    }
                    ClusterOp::Flat(flat_op) => flat_op,
                };
                match flat_op {
                    Op::Get { tag } => {
                        let response = client
                            .roundtrip(&Message::GetRequest { app, tag: tag_of(*tag) })
                            .expect("one replica of every tag is reachable");
                        match response {
                            Message::GetResponse(body) => assert_eq!(
                                body.record,
                                model.get(tag).cloned(),
                                "op {index}: GET diverged"
                            ),
                            other => panic!("op {index}: unexpected {other:?}"),
                        }
                    }
                    Op::Put { tag, len, fill } | Op::PutPre { tag, len, fill } => {
                        let request = match flat_op {
                            Op::Put { .. } => Message::PutRequest {
                                app,
                                tag: tag_of(*tag),
                                record: record_of(*tag, *len, *fill),
                            },
                            _ => {
                                oracle.inserted.insert(prefilter_of(*tag));
                                Message::PutPrefiltered {
                                    app,
                                    tag: tag_of(*tag),
                                    prefilter: prefilter_of(*tag),
                                    record: record_of(*tag, *len, *fill),
                                }
                            }
                        };
                        let response = client
                            .roundtrip(&request)
                            .expect("write quorum 1 is always reachable");
                        let inserted = !model.contains_key(tag);
                        model.entry(*tag).or_insert_with(|| record_of(*tag, *len, *fill));
                        match response {
                            Message::PutResponse(body) => {
                                assert!(body.accepted, "op {index}: {:?}", body.reason);
                                // Up replicas hold complete data for their
                                // tags (kills drain first), so even the
                                // node-local duplicate verdict agrees.
                                assert_eq!(
                                    body.reason.is_none(),
                                    inserted,
                                    "op {index}: duplicate verdict diverged ({:?})",
                                    body.reason
                                );
                            }
                            other => panic!("op {index}: unexpected {other:?}"),
                        }
                    }
                    Op::FilterCheck => {
                        // The filter fan-out fails closed while a member is
                        // down; the contract is only checkable when whole.
                        match client.roundtrip(&Message::FilterRequest) {
                            Ok(Message::FilterResponse(body)) => {
                                let mut shards = body.shards.into_iter();
                                if let Some(mut merged) = shards.next() {
                                    for shard in shards {
                                        merged.merge_from(&shard);
                                    }
                                    for &prefilter in &oracle.inserted {
                                        assert!(
                                            merged.may_contain(prefilter),
                                            "op {index}: cluster filter union \
                                             denies {prefilter:#x}"
                                        );
                                    }
                                }
                            }
                            Ok(other) => panic!("op {index}: unexpected {other:?}"),
                            Err(_) => assert!(
                                any_down,
                                "op {index}: filter refresh failed with all nodes up"
                            ),
                        }
                    }
                    Op::Batch { items } => {
                        let wire_items: Vec<BatchItem> = items
                            .iter()
                            .map(|item| match item {
                                Item::Get { tag } => BatchItem::Get { tag: tag_of(*tag) },
                                Item::GetPre { tag } => BatchItem::GetPrefiltered {
                                    tag: tag_of(*tag),
                                    prefilter: prefilter_of(*tag),
                                },
                                Item::Put { tag, len, fill } => BatchItem::Put {
                                    tag: tag_of(*tag),
                                    record: record_of(*tag, *len, *fill),
                                },
                            })
                            .collect();
                        let response = client
                            .roundtrip(&Message::BatchRequest { app, items: wire_items })
                            .expect("every item has a reachable replica");
                        let mut expected = Vec::with_capacity(items.len());
                        for item in items {
                            match item {
                                Item::Get { tag } | Item::GetPre { tag } => {
                                    expected.push(match model.get(tag) {
                                        Some(record) => {
                                            BatchItemResult::found(record.clone())
                                        }
                                        None => BatchItemResult::not_found(),
                                    });
                                }
                                Item::Put { tag, len, fill } => {
                                    if model.contains_key(tag) {
                                        let mut dup = BatchItemResult::accepted();
                                        dup.reason =
                                            Some("duplicate: existing entry kept".into());
                                        expected.push(dup);
                                    } else {
                                        model.insert(*tag, record_of(*tag, *len, *fill));
                                        expected.push(BatchItemResult::accepted());
                                    }
                                }
                            }
                        }
                        match response {
                            Message::BatchResponse(results) => assert_eq!(
                                results, expected,
                                "op {index}: batch diverged"
                            ),
                            other => panic!("op {index}: unexpected {other:?}"),
                        }
                    }
                    Op::Reload => unreachable!("disabled for the cluster arm"),
                }
            }
            // Converged epilogue (the trailing Rejoin healed everything):
            // every model entry is present on ALL of its replicas, so the
            // kill + rejoin cycle lost nothing and handoff fully caught up.
            let aggregate = match client.roundtrip(&Message::StatsRequest) {
                Ok(Message::StatsResponse(stats)) => stats.entries,
                other => panic!("stats fan-out failed: {other:?}"),
            };
            assert_eq!(
                aggregate,
                2 * model.len() as u64,
                "every entry must live on exactly R = 2 replicas"
            );
            for (tag, record) in &model {
                match client
                    .roundtrip(&Message::GetRequest { app, tag: tag_of(*tag) })
                    .unwrap()
                {
                    Message::GetResponse(body) => assert_eq!(
                        body.record.as_ref(),
                        Some(record),
                        "epilogue: tag {tag} diverged"
                    ),
                    other => panic!("epilogue: unexpected {other:?}"),
                }
            }
        },
    );
}

/// The tag a chunk's bytes dedup under in the chunked-PUT arm: an FNV-1a
/// hash of the content, repeated to fill the tag width. Content-derived,
/// so the same chunk in two documents collides — which is the point.
fn chunk_tag(chunk: &[u8]) -> CompTag {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &byte in chunk {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    let mut bytes = [0u8; COMP_TAG_LEN];
    for slot in bytes.chunks_mut(8) {
        slot.copy_from_slice(&hash.to_le_bytes()[..slot.len()]);
    }
    CompTag::from_bytes(bytes)
}

/// The record a chunk stores: deterministic in the chunk content, so the
/// first-writer-wins rule is unobservable for identical chunks.
fn chunk_record(chunk: &[u8]) -> Record {
    let fill = chunk.first().copied().unwrap_or(0);
    Record {
        challenge: vec![fill; 32],
        wrapped_key: [fill; 16],
        nonce: [chunk.len() as u8; 12],
        boxed_result: vec![fill.wrapping_add(1); 8 + chunk.len() % 24],
    }
}

/// Chunked-PUT arm of the differential tester: documents assembled from a
/// shared segment pool are content-chunked and PUT chunk-by-chunk in one
/// batch per document. A flat model holding a per-chunk refcount predicts
/// every response: the first PUT of a chunk's content is a fresh insert,
/// every later one (same document, later document — any source) is a
/// duplicate; store entry/byte stats track *distinct* chunks only, and
/// every chunk reads back the first-written record.
#[test]
fn chunked_puts_match_flat_model_with_refcounts() {
    use speed_core::{chunk_all, ChunkerConfig};

    check(
        "chunked_puts_match_flat_model_with_refcounts",
        0x5EED_0006,
        |rng| {
            let pool_len = rng.range_usize(2, 6);
            let pool: Vec<Vec<u8>> = (0..pool_len)
                .map(|_| {
                    let mut segment = vec![0u8; rng.range_usize(256, 2048)];
                    rng.fill(&mut segment);
                    segment
                })
                .collect();
            let documents = rng.range_usize(1, 6);
            let plans: Vec<Vec<usize>> = (0..documents)
                .map(|_| {
                    (0..rng.range_usize(1, 5))
                        .map(|_| rng.range_usize(0, pool_len - 1))
                        .collect()
                })
                .collect();
            (pool, plans)
        },
        |(pool, plans): &(Vec<Vec<u8>>, Vec<Vec<usize>>)| {
            if pool.is_empty() {
                return; // shrunk to nothing: vacuously true
            }
            let platform = Platform::new(CostModel::no_sgx());
            let store = ResultStore::new(
                &platform,
                StoreConfig::with_capacity(100_000, u64::MAX),
            )
            .expect("store");
            let app = AppId(1);
            // chunk tag -> (record, refcount).
            let mut model: BTreeMap<CompTag, (Record, u64)> = BTreeMap::new();
            let mut total_chunks = 0u64;
            for (doc_index, plan) in plans.iter().enumerate() {
                let document: Vec<u8> = plan
                    .iter()
                    .flat_map(|&i| pool[i % pool.len()].iter().copied())
                    .collect();
                let chunks = chunk_all(ChunkerConfig::SMALL, &document);
                total_chunks += chunks.len() as u64;
                let items: Vec<BatchItem> = chunks
                    .iter()
                    .map(|chunk| BatchItem::Put {
                        tag: chunk_tag(chunk),
                        record: chunk_record(chunk),
                    })
                    .collect();
                let response = store.handle(Message::BatchRequest { app, items });
                let mut expected = Vec::with_capacity(chunks.len());
                for chunk in &chunks {
                    let slot = model
                        .entry(chunk_tag(chunk))
                        .or_insert_with(|| (chunk_record(chunk), 0));
                    slot.1 += 1;
                    if slot.1 == 1 {
                        expected.push(BatchItemResult::accepted());
                    } else {
                        let mut dup = BatchItemResult::accepted();
                        dup.reason = Some("duplicate: existing entry kept".into());
                        expected.push(dup);
                    }
                }
                match response {
                    Message::BatchResponse(results) => assert_eq!(
                        results, expected,
                        "document {doc_index}: chunked batch diverged"
                    ),
                    other => panic!("document {doc_index}: unexpected {other:?}"),
                }
            }
            // Stats charge distinct chunks only; refcounts account for the
            // rest of the traffic.
            let stats = store.stats();
            assert_eq!(stats.entries, model.len() as u64, "distinct-chunk count");
            assert_eq!(
                stats.stored_bytes,
                model.values().map(|(r, _)| r.boxed_result.len() as u64).sum::<u64>(),
                "stored bytes must charge each chunk once"
            );
            assert_eq!(
                model.values().map(|(_, refs)| refs).sum::<u64>(),
                total_chunks,
                "refcounts must account for every chunk PUT"
            );
            // Every distinct chunk reads back its first-written record.
            for (tag, (record, _)) in &model {
                match store.handle(Message::GetRequest { app, tag: *tag }) {
                    Message::GetResponse(body) => {
                        assert_eq!(body.record.as_ref(), Some(record), "chunk readback")
                    }
                    other => panic!("unexpected GET response {other:?}"),
                }
            }
        },
    );
}

/// Quota enforcement matches a simple prediction: with only
/// `max_entries_per_app` limited, a PUT is denied exactly when the app
/// already owns that many live entries (duplicates are charged then
/// refunded, so they never change the count).
#[test]
fn quota_denials_match_prediction() {
    const PER_APP: u64 = 3;
    check(
        "quota_denials_match_prediction",
        0x5EED_0003,
        |rng| {
            let len = rng.range_usize(0, 30);
            (0..len)
                .map(|_| {
                    let app = rng.byte() % 3;
                    let tag = rng.byte() % TAG_SPACE;
                    (app, tag, rng.byte())
                })
                .collect::<Vec<(u8, u8, u8)>>()
        },
        |puts: &Vec<(u8, u8, u8)>| {
            let platform = Platform::new(CostModel::no_sgx());
            let mut config = StoreConfig::with_capacity(10_000, u64::MAX);
            config.quota =
                QuotaPolicy { max_entries_per_app: PER_APP, ..QuotaPolicy::unlimited() };
            let store = ResultStore::new(&platform, config).expect("store");
            // tag -> owner, and per-app live entry counts.
            let mut owner: BTreeMap<u8, u8> = BTreeMap::new();
            let mut live = [0u64; 3];
            for (index, &(app, tag, fill)) in puts.iter().enumerate() {
                let response = store.handle(Message::PutRequest {
                    app: AppId(u64::from(app)),
                    tag: tag_of(tag),
                    record: record_of(tag, 16, fill),
                });
                let expect_deny = live[usize::from(app)] >= PER_APP;
                match response {
                    Message::PutResponse(body) => {
                        assert_eq!(
                            body.accepted,
                            !expect_deny,
                            "put {index}: app {app} with {} live entries, got {:?}",
                            live[usize::from(app)],
                            body.reason
                        );
                        if expect_deny {
                            assert!(
                                body.reason
                                    .as_deref()
                                    .is_some_and(|r| r.contains("entry quota")),
                                "put {index}: denial reason {:?}",
                                body.reason
                            );
                        } else if let std::collections::btree_map::Entry::Vacant(slot) =
                            owner.entry(tag)
                        {
                            slot.insert(app);
                            live[usize::from(app)] += 1;
                        }
                        // Duplicate: charged then refunded; counts unchanged.
                    }
                    other => panic!("put {index}: unexpected response {other:?}"),
                }
            }
        },
    );
}
