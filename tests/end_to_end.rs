//! End-to-end integration: the full SPEED stack (crypto → enclave → wire →
//! store → runtime) driving all four evaluation applications.

use std::sync::Arc;

use speed_core::{
    DedupMode, DedupOutcome, DedupRuntime, Deduplicable, FuncDesc, TrustedLibrary,
};
use speed_enclave::{CostModel, Platform};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::SessionAuthority;
use speed_workloads::{images, pages, text};

struct World {
    platform: Arc<Platform>,
    store: Arc<ResultStore>,
    authority: Arc<SessionAuthority>,
}

fn world() -> World {
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::new());
    World { platform, store, authority }
}

fn libraries() -> Vec<TrustedLibrary> {
    let mut sift = TrustedLibrary::new("libsiftpp", "0.8.1");
    sift.register("Keypoints sift(Image)", b"sift code");
    let mut zlib = TrustedLibrary::new("zlib", "1.2.11");
    zlib.register("int deflate(...)", b"deflate code");
    let mut mapreduce = TrustedLibrary::new("mapreduce", "1.0");
    mapreduce.register("Counts bow_mapper(Pages)", b"bow code");
    vec![sift, zlib, mapreduce]
}

fn runtime(world: &World, code: &[u8]) -> Arc<DedupRuntime> {
    let mut builder = DedupRuntime::builder(Arc::clone(&world.platform), code)
        .in_process_store(Arc::clone(&world.store), Arc::clone(&world.authority));
    for library in libraries() {
        builder = builder.trusted_library(library);
    }
    builder.build().unwrap()
}

#[test]
fn sift_pipeline_dedups_and_results_match() {
    let world = world();
    let rt = runtime(&world, b"sift-app");
    let dedup_sift = Deduplicable::new(
        &rt,
        FuncDesc::new("libsiftpp", "0.8.1", "Keypoints sift(Image)"),
        |bytes: &Vec<u8>| {
            let image = images::image_from_bytes(bytes).unwrap();
            speed_sift::features_to_bytes(&speed_sift::sift(
                &image,
                &speed_sift::SiftParams::default(),
            ))
        },
    )
    .unwrap();

    let image = images::image_to_bytes(&images::synthetic_image(64, 5));
    let (first, o1) = dedup_sift.call_traced(&image).unwrap();
    let (second, o2) = dedup_sift.call_traced(&image).unwrap();
    assert_eq!(o1, DedupOutcome::Miss);
    assert_eq!(o2, DedupOutcome::Hit);
    assert_eq!(first, second);
    assert!(!speed_sift::features_from_bytes(&first).unwrap().is_empty());
}

#[test]
fn compression_result_survives_dedup_and_decompresses() {
    let world = world();
    let rt = runtime(&world, b"deflate-app");
    let dedup_deflate = Deduplicable::new(
        &rt,
        FuncDesc::new("zlib", "1.2.11", "int deflate(...)"),
        |data: &Vec<u8>| speed_deflate::compress(data, speed_deflate::Level::Default),
    )
    .unwrap();

    let document = text::synthetic_text(100_000, 3).into_bytes();
    let compressed_first = dedup_deflate.call(&document).unwrap();
    let compressed_second = dedup_deflate.call(&document).unwrap();
    assert_eq!(compressed_first, compressed_second);
    assert_eq!(speed_deflate::decompress(&compressed_first).unwrap(), document);
}

#[test]
fn bow_over_pages_roundtrips_through_store() {
    let world = world();
    let rt = runtime(&world, b"bow-app");
    let dedup_bow = Deduplicable::new(
        &rt,
        FuncDesc::new("mapreduce", "1.0", "Counts bow_mapper(Pages)"),
        |batch: &Vec<String>| {
            speed_mapreduce::counts_to_bytes(&speed_mapreduce::bag_of_words(
                batch,
                &speed_mapreduce::BowConfig::default(),
            ))
        },
    )
    .unwrap();

    let batch = pages::page_corpus(10, 100, 8);
    let bytes_first = dedup_bow.call(&batch).unwrap();
    let bytes_second = dedup_bow.call(&batch).unwrap();
    assert_eq!(bytes_first, bytes_second);
    let counts = speed_mapreduce::counts_from_bytes(&bytes_first).unwrap();
    assert!(!counts.is_empty());
    assert_eq!(rt.stats().hits, 1);
}

#[test]
fn cross_application_reuse_without_shared_key() {
    let world = world();
    let app_a = runtime(&world, b"app-alpha");
    let app_b = runtime(&world, b"app-beta");
    let desc = FuncDesc::new("zlib", "1.2.11", "int deflate(...)");
    let input = text::synthetic_text(50_000, 9).into_bytes();

    let identity_a = app_a.resolve(&desc).unwrap();
    let (result_a, _) = app_a
        .execute_raw(&identity_a, &input, |data| {
            speed_deflate::compress(data, speed_deflate::Level::Default)
        })
        .unwrap();

    let identity_b = app_b.resolve(&desc).unwrap();
    let (result_b, outcome) =
        app_b.execute_raw(&identity_b, &input, |_| panic!("B must reuse")).unwrap();
    assert_eq!(outcome, DedupOutcome::Hit);
    assert_eq!(result_a, result_b);

    // Store shows one put, two gets, one hit each… exactly one entry.
    let stats = world.store.stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.puts, 1);
}

#[test]
fn single_key_mode_does_not_share_with_cross_app_mode() {
    let world = world();
    let desc = FuncDesc::new("zlib", "1.2.11", "int deflate(...)");
    let input = b"mixed mode corpus".to_vec();

    let single = {
        let mut builder =
            DedupRuntime::builder(Arc::clone(&world.platform), b"single-key-app")
                .in_process_store(Arc::clone(&world.store), Arc::clone(&world.authority))
                .mode(DedupMode::SingleKey(speed_crypto::Key128::from_bytes([1; 16])));
        for library in libraries() {
            builder = builder.trusted_library(library);
        }
        builder.build().unwrap()
    };
    let cross = runtime(&world, b"cross-app");

    let id_single = single.resolve(&desc).unwrap();
    single.execute_raw(&id_single, &input, |d| d.to_vec()).unwrap();

    // The cross-app runtime sees the record but cannot verify it (it was
    // encrypted under the single key, not RCE) — it recomputes.
    let id_cross = cross.resolve(&desc).unwrap();
    let (_, outcome) = cross.execute_raw(&id_cross, &input, |d| d.to_vec()).unwrap();
    assert_eq!(outcome, DedupOutcome::MissAfterFailedVerify);
    assert_eq!(cross.stats().verify_failures, 1);
}

#[test]
fn distinct_inputs_never_collide() {
    let world = world();
    let rt = runtime(&world, b"collision-app");
    let desc = FuncDesc::new("zlib", "1.2.11", "int deflate(...)");
    let identity = rt.resolve(&desc).unwrap();

    for i in 0..32u8 {
        let input = vec![i; 100];
        let (result, outcome) =
            rt.execute_raw(&identity, &input, |d| vec![d[0]]).unwrap();
        assert_eq!(outcome, DedupOutcome::Miss);
        assert_eq!(result, vec![i]);
    }
    // Re-query all 32: every one hits and returns its own result.
    for i in 0..32u8 {
        let input = vec![i; 100];
        let (result, outcome) =
            rt.execute_raw(&identity, &input, |_| panic!("hit expected")).unwrap();
        assert_eq!(outcome, DedupOutcome::Hit);
        assert_eq!(result, vec![i]);
    }
}

#[test]
fn epc_pressure_from_many_entries_is_bounded() {
    // Metadata stays small even as ciphertexts accumulate outside.
    let world = world();
    let rt = runtime(&world, b"epc-app");
    let desc = FuncDesc::new("zlib", "1.2.11", "int deflate(...)");
    let identity = rt.resolve(&desc).unwrap();

    let epc_before = world.platform.epc().stats().committed_pages;
    for i in 0..200u32 {
        let input = i.to_le_bytes().to_vec();
        rt.execute_raw(&identity, &input, |_| vec![0u8; 4096]).unwrap();
    }
    let epc_after = world.platform.epc().stats().committed_pages;
    let stats = world.store.stats();
    assert_eq!(stats.entries, 200);
    assert_eq!(stats.stored_bytes, 200 * (4096 + 16));
    // 200 results ≈ 800 KiB of ciphertext outside, but far fewer EPC pages
    // committed for metadata.
    let committed_delta_bytes = (epc_after - epc_before) * speed_enclave::PAGE_SIZE;
    assert!(
        committed_delta_bytes < 200 * 4096 / 2,
        "metadata used {committed_delta_bytes} bytes of EPC"
    );
}
