//! Cross-crate property-style tests: store invariants under randomized
//! operation sequences, RCE end-to-end properties, and wire-protocol
//! robustness against hostile bytes. Driven by a seeded `SystemRng` so the
//! suite is deterministic and needs no external property-testing crate.

use std::sync::Arc;

use speed_core::{DedupRuntime, FuncDesc, TrustedLibrary};
use speed_crypto::SystemRng;
use speed_enclave::{CostModel, Platform};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::{from_bytes, AppId, CompTag, Message, Record, SessionAuthority};

#[derive(Clone, Debug)]
enum StoreOp {
    Put { tag_seed: u8, len: u16 },
    Get { tag_seed: u8 },
}

fn random_ops(rng: &mut SystemRng, count: usize) -> Vec<StoreOp> {
    (0..count)
        .map(|_| {
            let tag_seed = (rng.next_u32() & 0xFF) as u8;
            if rng.gen_bool(0.5) {
                StoreOp::Put { tag_seed, len: rng.range_usize(1, 2048) as u16 }
            } else {
                StoreOp::Get { tag_seed }
            }
        })
        .collect()
}

fn tag(seed: u8) -> CompTag {
    CompTag::from_bytes([seed; 32])
}

/// Whatever sequence of GETs and PUTs arrives, the store's counters stay
/// consistent, stored bytes match live entries, and a GET after a
/// successful PUT always returns the first-written record.
#[test]
fn store_invariants_hold_under_arbitrary_ops() {
    let mut rng = SystemRng::seeded(0x07051);
    for _case in 0..32 {
        let platform = Platform::new(CostModel::no_sgx());
        let store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
        let mut expected: std::collections::HashMap<CompTag, Vec<u8>> =
            std::collections::HashMap::new();
        let mut puts = 0u64;
        let mut gets = 0u64;

        let op_count = rng.range_usize(1, 120);
        let ops = random_ops(&mut rng, op_count);
        for op in &ops {
            match *op {
                StoreOp::Put { tag_seed, len } => {
                    puts += 1;
                    let body = vec![tag_seed; usize::from(len)];
                    let response = store.handle(Message::PutRequest {
                        app: AppId(1),
                        tag: tag(tag_seed),
                        record: Record {
                            challenge: vec![tag_seed; 32],
                            wrapped_key: [tag_seed; 16],
                            nonce: [tag_seed; 12],
                            boxed_result: body.clone(),
                        },
                    });
                    assert!(
                        matches!(response, Message::PutResponse(ref b) if b.accepted)
                    );
                    expected.entry(tag(tag_seed)).or_insert(body);
                }
                StoreOp::Get { tag_seed } => {
                    gets += 1;
                    let response = store.handle(Message::GetRequest {
                        app: AppId(2),
                        tag: tag(tag_seed),
                    });
                    match response {
                        Message::GetResponse(body) => {
                            match expected.get(&tag(tag_seed)) {
                                Some(first_written) => {
                                    assert!(body.found);
                                    assert_eq!(
                                        &body.record.unwrap().boxed_result,
                                        first_written
                                    );
                                }
                                None => assert!(!body.found),
                            }
                        }
                        other => panic!("{other:?}"),
                    }
                }
            }
        }

        let stats = store.stats();
        assert_eq!(stats.puts, puts);
        assert_eq!(stats.gets, gets);
        assert_eq!(stats.entries as usize, expected.len());
        let expected_bytes: u64 = expected.values().map(|v| v.len() as u64).sum();
        assert_eq!(stats.stored_bytes, expected_bytes);
    }
}

/// Dedup end-to-end with arbitrary inputs: the reused result always equals
/// the computed result, for any input bytes.
#[test]
fn dedup_roundtrip_any_input() {
    let mut rng = SystemRng::seeded(0x07052);
    for _case in 0..16 {
        let platform = Platform::new(CostModel::no_sgx());
        let store =
            Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let authority = Arc::new(SessionAuthority::new());
        let mut library = TrustedLibrary::new("lib", "1");
        library.register("f()", b"code");
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"prop-app")
            .in_process_store(store, authority)
            .trusted_library(library)
            .build()
            .unwrap();
        let identity = rt.resolve(&FuncDesc::new("lib", "1", "f()")).unwrap();

        let mut input = vec![0u8; rng.range_usize_inclusive(0, 4096)];
        rng.fill(&mut input);
        let compute = |d: &[u8]| {
            let mut out = d.to_vec();
            out.reverse();
            out
        };
        let (first, _) = rt.execute_raw(&identity, &input, compute).unwrap();
        let (second, outcome) =
            rt.execute_raw(&identity, &input, |_| panic!("must hit")).unwrap();
        assert_eq!(outcome, speed_core::DedupOutcome::Hit);
        assert_eq!(first, second);
    }
}

/// Hostile bytes fed to the protocol decoder never panic and never produce
/// a structurally invalid message.
#[test]
fn protocol_decoder_handles_hostile_bytes() {
    let mut rng = SystemRng::seeded(0x07053);
    for _case in 0..256 {
        let mut bytes = vec![0u8; rng.range_usize_inclusive(0, 512)];
        rng.fill(&mut bytes);
        if let Ok(message) = from_bytes::<Message>(&bytes) {
            // Decoded messages must re-encode to a decodable form.
            let reencoded = speed_wire::to_bytes(&message);
            let redecoded: Message = from_bytes(&reencoded).unwrap();
            assert_eq!(message, redecoded);
        }
    }
}

/// Sealed data tampered at any single byte never unseals.
#[test]
fn sealing_detects_any_single_byte_flip() {
    use speed_enclave::sealing::{seal, unseal, SealPolicy, SealedData};
    let platform = Platform::with_seed(CostModel::no_sgx(), Some(3));
    let enclave = platform.create_enclave(b"prop-seal").unwrap();
    let sealed = seal(&platform, &enclave, &SealPolicy::MrEnclave, b"aad", &[0x42; 150]);
    let reference = sealed.to_bytes();

    let mut rng = SystemRng::seeded(0x07054);
    for _case in 0..64 {
        let mut bytes = reference.clone();
        let at = rng.range_usize(0, bytes.len());
        let bit = rng.range_usize(0, 8) as u8;
        bytes[at] ^= 1 << bit;
        let Ok(tampered) = SealedData::from_bytes(&bytes) else {
            continue; // header corruption may fail to parse — also a detection
        };
        assert!(
            unseal(&platform, &enclave, &SealPolicy::MrEnclave, b"aad", &tampered)
                .is_err(),
            "flip at byte {at} bit {bit} unsealed"
        );
    }
}
