//! Cross-crate property-based tests: store invariants under arbitrary
//! operation sequences, RCE end-to-end properties, and wire-protocol
//! robustness against hostile bytes.

use std::sync::Arc;

use proptest::prelude::*;
use speed_core::{DedupRuntime, FuncDesc, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::{from_bytes, AppId, CompTag, Message, Record, SessionAuthority};

#[derive(Clone, Debug)]
enum StoreOp {
    Put { tag_seed: u8, len: u16 },
    Get { tag_seed: u8 },
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (any::<u8>(), 1u16..2048).prop_map(|(tag_seed, len)| StoreOp::Put { tag_seed, len }),
        any::<u8>().prop_map(|tag_seed| StoreOp::Get { tag_seed }),
    ]
}

fn tag(seed: u8) -> CompTag {
    CompTag::from_bytes([seed; 32])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever sequence of GETs and PUTs arrives, the store's counters
    /// stay consistent, stored bytes match live entries, and a GET after
    /// a successful PUT always returns the first-written record.
    #[test]
    fn store_invariants_hold_under_arbitrary_ops(ops in prop::collection::vec(store_op(), 1..120)) {
        let platform = Platform::new(CostModel::no_sgx());
        let store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
        let mut expected: std::collections::HashMap<CompTag, Vec<u8>> =
            std::collections::HashMap::new();
        let mut puts = 0u64;
        let mut gets = 0u64;

        for op in &ops {
            match *op {
                StoreOp::Put { tag_seed, len } => {
                    puts += 1;
                    let body = vec![tag_seed; usize::from(len)];
                    let response = store.handle(Message::PutRequest {
                        app: AppId(1),
                        tag: tag(tag_seed),
                        record: Record {
                            challenge: vec![tag_seed; 32],
                            wrapped_key: [tag_seed; 16],
                            nonce: [tag_seed; 12],
                            boxed_result: body.clone(),
                        },
                    });
                    prop_assert!(matches!(response, Message::PutResponse(ref b) if b.accepted));
                    expected.entry(tag(tag_seed)).or_insert(body);
                }
                StoreOp::Get { tag_seed } => {
                    gets += 1;
                    let response =
                        store.handle(Message::GetRequest { app: AppId(2), tag: tag(tag_seed) });
                    match response {
                        Message::GetResponse(body) => match expected.get(&tag(tag_seed)) {
                            Some(first_written) => {
                                prop_assert!(body.found);
                                prop_assert_eq!(
                                    &body.record.unwrap().boxed_result,
                                    first_written
                                );
                            }
                            None => prop_assert!(!body.found),
                        },
                        other => return Err(TestCaseError::fail(format!("{other:?}"))),
                    }
                }
            }
        }

        let stats = store.stats();
        prop_assert_eq!(stats.puts, puts);
        prop_assert_eq!(stats.gets, gets);
        prop_assert_eq!(stats.entries as usize, expected.len());
        let expected_bytes: u64 =
            expected.values().map(|v| v.len() as u64).sum();
        prop_assert_eq!(stats.stored_bytes, expected_bytes);
    }

    /// Dedup end-to-end with arbitrary inputs: the reused result always
    /// equals the computed result, for any input bytes.
    #[test]
    fn dedup_roundtrip_any_input(input in prop::collection::vec(any::<u8>(), 0..4096)) {
        let platform = Platform::new(CostModel::no_sgx());
        let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let authority = Arc::new(SessionAuthority::new());
        let mut library = TrustedLibrary::new("lib", "1");
        library.register("f()", b"code");
        let rt = DedupRuntime::builder(Arc::clone(&platform), b"prop-app")
            .in_process_store(store, authority)
            .trusted_library(library)
            .build()
            .unwrap();
        let identity = rt.resolve(&FuncDesc::new("lib", "1", "f()")).unwrap();

        let compute = |d: &[u8]| {
            let mut out = d.to_vec();
            out.reverse();
            out
        };
        let (first, _) = rt.execute_raw(&identity, &input, compute).unwrap();
        let (second, outcome) = rt
            .execute_raw(&identity, &input, |_| panic!("must hit"))
            .unwrap();
        prop_assert_eq!(outcome, speed_core::DedupOutcome::Hit);
        prop_assert_eq!(first, second);
    }

    /// Hostile bytes fed to the protocol decoder never panic and never
    /// produce a structurally invalid message.
    #[test]
    fn protocol_decoder_handles_hostile_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(message) = from_bytes::<Message>(&bytes) {
            // Decoded messages must re-encode to a decodable form.
            let reencoded = speed_wire::to_bytes(&message);
            let redecoded: Message = from_bytes(&reencoded).unwrap();
            prop_assert_eq!(message, redecoded);
        }
    }

    /// Sealed data tampered at any single byte never unseals.
    #[test]
    fn sealing_detects_any_single_byte_flip(flip_at in 0usize..200, flip_bit in 0u8..8) {
        use speed_enclave::sealing::{seal, unseal, SealedData, SealPolicy};
        let platform = Platform::with_seed(CostModel::no_sgx(), Some(3));
        let enclave = platform.create_enclave(b"prop-seal").unwrap();
        let sealed =
            seal(&platform, &enclave, &SealPolicy::MrEnclave, b"aad", &[0x42; 150]);
        let mut bytes = sealed.to_bytes();
        let at = flip_at % bytes.len();
        bytes[at] ^= 1 << flip_bit;
        let tampered = SealedData::from_bytes(&bytes).unwrap();
        prop_assert!(unseal(
            &platform,
            &enclave,
            &SealPolicy::MrEnclave,
            b"aad",
            &tampered
        )
        .is_err());
    }
}
