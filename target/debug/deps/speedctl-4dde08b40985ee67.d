/root/repo/target/debug/deps/speedctl-4dde08b40985ee67.d: crates/store/src/bin/speedctl.rs

/root/repo/target/debug/deps/speedctl-4dde08b40985ee67: crates/store/src/bin/speedctl.rs

crates/store/src/bin/speedctl.rs:
