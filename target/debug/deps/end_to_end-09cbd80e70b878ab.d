/root/repo/target/debug/deps/end_to_end-09cbd80e70b878ab.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-09cbd80e70b878ab: tests/end_to_end.rs

tests/end_to_end.rs:
