/root/repo/target/debug/deps/security-6e287189642569ae.d: tests/security.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity-6e287189642569ae.rmeta: tests/security.rs Cargo.toml

tests/security.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
