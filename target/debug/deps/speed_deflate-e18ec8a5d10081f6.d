/root/repo/target/debug/deps/speed_deflate-e18ec8a5d10081f6.d: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/error.rs crates/deflate/src/huffman.rs crates/deflate/src/lz77.rs

/root/repo/target/debug/deps/libspeed_deflate-e18ec8a5d10081f6.rlib: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/error.rs crates/deflate/src/huffman.rs crates/deflate/src/lz77.rs

/root/repo/target/debug/deps/libspeed_deflate-e18ec8a5d10081f6.rmeta: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/error.rs crates/deflate/src/huffman.rs crates/deflate/src/lz77.rs

crates/deflate/src/lib.rs:
crates/deflate/src/bitio.rs:
crates/deflate/src/error.rs:
crates/deflate/src/huffman.rs:
crates/deflate/src/lz77.rs:
