/root/repo/target/debug/deps/speed_repro-a578e646492bac80.d: src/lib.rs

/root/repo/target/debug/deps/speed_repro-a578e646492bac80: src/lib.rs

src/lib.rs:
