/root/repo/target/debug/deps/properties-e5e07aa68e60d8c2.d: tests/properties.rs

/root/repo/target/debug/deps/properties-e5e07aa68e60d8c2: tests/properties.rs

tests/properties.rs:
