/root/repo/target/debug/deps/speed_store-ba0994596a40e822.d: crates/store/src/lib.rs crates/store/src/dict.rs crates/store/src/error.rs crates/store/src/persist.rs crates/store/src/quota.rs crates/store/src/server.rs crates/store/src/store.rs crates/store/src/sync.rs

/root/repo/target/debug/deps/speed_store-ba0994596a40e822: crates/store/src/lib.rs crates/store/src/dict.rs crates/store/src/error.rs crates/store/src/persist.rs crates/store/src/quota.rs crates/store/src/server.rs crates/store/src/store.rs crates/store/src/sync.rs

crates/store/src/lib.rs:
crates/store/src/dict.rs:
crates/store/src/error.rs:
crates/store/src/persist.rs:
crates/store/src/quota.rs:
crates/store/src/server.rs:
crates/store/src/store.rs:
crates/store/src/sync.rs:
