/root/repo/target/debug/deps/speed_workloads-c3da6ea1abd58a29.d: crates/workloads/src/lib.rs crates/workloads/src/evolving.rs crates/workloads/src/images.rs crates/workloads/src/packets.rs crates/workloads/src/pages.rs crates/workloads/src/rules.rs crates/workloads/src/text.rs crates/workloads/src/stream.rs

/root/repo/target/debug/deps/speed_workloads-c3da6ea1abd58a29: crates/workloads/src/lib.rs crates/workloads/src/evolving.rs crates/workloads/src/images.rs crates/workloads/src/packets.rs crates/workloads/src/pages.rs crates/workloads/src/rules.rs crates/workloads/src/text.rs crates/workloads/src/stream.rs

crates/workloads/src/lib.rs:
crates/workloads/src/evolving.rs:
crates/workloads/src/images.rs:
crates/workloads/src/packets.rs:
crates/workloads/src/pages.rs:
crates/workloads/src/rules.rs:
crates/workloads/src/text.rs:
crates/workloads/src/stream.rs:
