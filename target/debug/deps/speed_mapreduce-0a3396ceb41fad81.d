/root/repo/target/debug/deps/speed_mapreduce-0a3396ceb41fad81.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/bow.rs crates/mapreduce/src/framework.rs crates/mapreduce/src/index.rs

/root/repo/target/debug/deps/libspeed_mapreduce-0a3396ceb41fad81.rlib: crates/mapreduce/src/lib.rs crates/mapreduce/src/bow.rs crates/mapreduce/src/framework.rs crates/mapreduce/src/index.rs

/root/repo/target/debug/deps/libspeed_mapreduce-0a3396ceb41fad81.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/bow.rs crates/mapreduce/src/framework.rs crates/mapreduce/src/index.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/bow.rs:
crates/mapreduce/src/framework.rs:
crates/mapreduce/src/index.rs:
