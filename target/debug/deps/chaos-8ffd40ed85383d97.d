/root/repo/target/debug/deps/chaos-8ffd40ed85383d97.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-8ffd40ed85383d97: tests/chaos.rs

tests/chaos.rs:
