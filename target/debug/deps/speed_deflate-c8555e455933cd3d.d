/root/repo/target/debug/deps/speed_deflate-c8555e455933cd3d.d: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/error.rs crates/deflate/src/huffman.rs crates/deflate/src/lz77.rs

/root/repo/target/debug/deps/speed_deflate-c8555e455933cd3d: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/error.rs crates/deflate/src/huffman.rs crates/deflate/src/lz77.rs

crates/deflate/src/lib.rs:
crates/deflate/src/bitio.rs:
crates/deflate/src/error.rs:
crates/deflate/src/huffman.rs:
crates/deflate/src/lz77.rs:
