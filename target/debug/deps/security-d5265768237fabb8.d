/root/repo/target/debug/deps/security-d5265768237fabb8.d: tests/security.rs

/root/repo/target/debug/deps/security-d5265768237fabb8: tests/security.rs

tests/security.rs:
