/root/repo/target/debug/deps/speed_wire-627c6127306e274f.d: crates/wire/src/lib.rs crates/wire/src/channel.rs crates/wire/src/codec.rs crates/wire/src/frame.rs crates/wire/src/messages.rs

/root/repo/target/debug/deps/speed_wire-627c6127306e274f: crates/wire/src/lib.rs crates/wire/src/channel.rs crates/wire/src/codec.rs crates/wire/src/frame.rs crates/wire/src/messages.rs

crates/wire/src/lib.rs:
crates/wire/src/channel.rs:
crates/wire/src/codec.rs:
crates/wire/src/frame.rs:
crates/wire/src/messages.rs:
