/root/repo/target/debug/deps/speed_matcher-31df9433800bf9da.d: crates/matcher/src/lib.rs crates/matcher/src/aho.rs crates/matcher/src/error.rs crates/matcher/src/regex.rs crates/matcher/src/rules.rs

/root/repo/target/debug/deps/speed_matcher-31df9433800bf9da: crates/matcher/src/lib.rs crates/matcher/src/aho.rs crates/matcher/src/error.rs crates/matcher/src/regex.rs crates/matcher/src/rules.rs

crates/matcher/src/lib.rs:
crates/matcher/src/aho.rs:
crates/matcher/src/error.rs:
crates/matcher/src/regex.rs:
crates/matcher/src/rules.rs:
