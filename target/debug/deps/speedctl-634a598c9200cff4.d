/root/repo/target/debug/deps/speedctl-634a598c9200cff4.d: crates/store/src/bin/speedctl.rs Cargo.toml

/root/repo/target/debug/deps/libspeedctl-634a598c9200cff4.rmeta: crates/store/src/bin/speedctl.rs Cargo.toml

crates/store/src/bin/speedctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
