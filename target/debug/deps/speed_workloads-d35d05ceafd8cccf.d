/root/repo/target/debug/deps/speed_workloads-d35d05ceafd8cccf.d: crates/workloads/src/lib.rs crates/workloads/src/evolving.rs crates/workloads/src/images.rs crates/workloads/src/packets.rs crates/workloads/src/pages.rs crates/workloads/src/rules.rs crates/workloads/src/text.rs crates/workloads/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_workloads-d35d05ceafd8cccf.rmeta: crates/workloads/src/lib.rs crates/workloads/src/evolving.rs crates/workloads/src/images.rs crates/workloads/src/packets.rs crates/workloads/src/pages.rs crates/workloads/src/rules.rs crates/workloads/src/text.rs crates/workloads/src/stream.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/evolving.rs:
crates/workloads/src/images.rs:
crates/workloads/src/packets.rs:
crates/workloads/src/pages.rs:
crates/workloads/src/rules.rs:
crates/workloads/src/text.rs:
crates/workloads/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
