/root/repo/target/debug/deps/speed_enclave-ee7a473e341565de.d: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/cost.rs crates/enclave/src/enclave.rs crates/enclave/src/epc.rs crates/enclave/src/error.rs crates/enclave/src/measurement.rs crates/enclave/src/platform.rs crates/enclave/src/sealing.rs crates/enclave/src/untrusted.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_enclave-ee7a473e341565de.rmeta: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/cost.rs crates/enclave/src/enclave.rs crates/enclave/src/epc.rs crates/enclave/src/error.rs crates/enclave/src/measurement.rs crates/enclave/src/platform.rs crates/enclave/src/sealing.rs crates/enclave/src/untrusted.rs Cargo.toml

crates/enclave/src/lib.rs:
crates/enclave/src/attestation.rs:
crates/enclave/src/cost.rs:
crates/enclave/src/enclave.rs:
crates/enclave/src/epc.rs:
crates/enclave/src/error.rs:
crates/enclave/src/measurement.rs:
crates/enclave/src/platform.rs:
crates/enclave/src/sealing.rs:
crates/enclave/src/untrusted.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
