/root/repo/target/debug/deps/speed_mapreduce-d18b9df28b75308d.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/bow.rs crates/mapreduce/src/framework.rs crates/mapreduce/src/index.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_mapreduce-d18b9df28b75308d.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/bow.rs crates/mapreduce/src/framework.rs crates/mapreduce/src/index.rs Cargo.toml

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/bow.rs:
crates/mapreduce/src/framework.rs:
crates/mapreduce/src/index.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
