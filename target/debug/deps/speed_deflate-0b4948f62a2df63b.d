/root/repo/target/debug/deps/speed_deflate-0b4948f62a2df63b.d: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/error.rs crates/deflate/src/huffman.rs crates/deflate/src/lz77.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_deflate-0b4948f62a2df63b.rmeta: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/error.rs crates/deflate/src/huffman.rs crates/deflate/src/lz77.rs Cargo.toml

crates/deflate/src/lib.rs:
crates/deflate/src/bitio.rs:
crates/deflate/src/error.rs:
crates/deflate/src/huffman.rs:
crates/deflate/src/lz77.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
