/root/repo/target/debug/deps/speed_wire-b832007fed22b6c8.d: crates/wire/src/lib.rs crates/wire/src/channel.rs crates/wire/src/codec.rs crates/wire/src/frame.rs crates/wire/src/messages.rs

/root/repo/target/debug/deps/libspeed_wire-b832007fed22b6c8.rlib: crates/wire/src/lib.rs crates/wire/src/channel.rs crates/wire/src/codec.rs crates/wire/src/frame.rs crates/wire/src/messages.rs

/root/repo/target/debug/deps/libspeed_wire-b832007fed22b6c8.rmeta: crates/wire/src/lib.rs crates/wire/src/channel.rs crates/wire/src/codec.rs crates/wire/src/frame.rs crates/wire/src/messages.rs

crates/wire/src/lib.rs:
crates/wire/src/channel.rs:
crates/wire/src/codec.rs:
crates/wire/src/frame.rs:
crates/wire/src/messages.rs:
