/root/repo/target/debug/deps/speed_repro-e756681ea3e5be50.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_repro-e756681ea3e5be50.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
