/root/repo/target/debug/deps/speed_crypto-f6a32f4155357417.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ct.rs crates/crypto/src/error.rs crates/crypto/src/gcm.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha256.rs crates/crypto/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_crypto-f6a32f4155357417.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ct.rs crates/crypto/src/error.rs crates/crypto/src/gcm.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha256.rs crates/crypto/src/types.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/error.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/hkdf.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/rng.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
