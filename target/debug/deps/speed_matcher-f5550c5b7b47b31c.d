/root/repo/target/debug/deps/speed_matcher-f5550c5b7b47b31c.d: crates/matcher/src/lib.rs crates/matcher/src/aho.rs crates/matcher/src/error.rs crates/matcher/src/regex.rs crates/matcher/src/rules.rs

/root/repo/target/debug/deps/libspeed_matcher-f5550c5b7b47b31c.rlib: crates/matcher/src/lib.rs crates/matcher/src/aho.rs crates/matcher/src/error.rs crates/matcher/src/regex.rs crates/matcher/src/rules.rs

/root/repo/target/debug/deps/libspeed_matcher-f5550c5b7b47b31c.rmeta: crates/matcher/src/lib.rs crates/matcher/src/aho.rs crates/matcher/src/error.rs crates/matcher/src/regex.rs crates/matcher/src/rules.rs

crates/matcher/src/lib.rs:
crates/matcher/src/aho.rs:
crates/matcher/src/error.rs:
crates/matcher/src/regex.rs:
crates/matcher/src/rules.rs:
