/root/repo/target/debug/deps/speed_crypto-053533e8502ac150.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ct.rs crates/crypto/src/error.rs crates/crypto/src/gcm.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha256.rs crates/crypto/src/types.rs

/root/repo/target/debug/deps/libspeed_crypto-053533e8502ac150.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ct.rs crates/crypto/src/error.rs crates/crypto/src/gcm.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha256.rs crates/crypto/src/types.rs

/root/repo/target/debug/deps/libspeed_crypto-053533e8502ac150.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ct.rs crates/crypto/src/error.rs crates/crypto/src/gcm.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha256.rs crates/crypto/src/types.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/error.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/hkdf.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/rng.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/types.rs:
