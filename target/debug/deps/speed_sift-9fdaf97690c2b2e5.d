/root/repo/target/debug/deps/speed_sift-9fdaf97690c2b2e5.d: crates/sift/src/lib.rs crates/sift/src/descriptor.rs crates/sift/src/gaussian.rs crates/sift/src/image.rs crates/sift/src/keypoint.rs crates/sift/src/matching.rs crates/sift/src/pyramid.rs

/root/repo/target/debug/deps/libspeed_sift-9fdaf97690c2b2e5.rlib: crates/sift/src/lib.rs crates/sift/src/descriptor.rs crates/sift/src/gaussian.rs crates/sift/src/image.rs crates/sift/src/keypoint.rs crates/sift/src/matching.rs crates/sift/src/pyramid.rs

/root/repo/target/debug/deps/libspeed_sift-9fdaf97690c2b2e5.rmeta: crates/sift/src/lib.rs crates/sift/src/descriptor.rs crates/sift/src/gaussian.rs crates/sift/src/image.rs crates/sift/src/keypoint.rs crates/sift/src/matching.rs crates/sift/src/pyramid.rs

crates/sift/src/lib.rs:
crates/sift/src/descriptor.rs:
crates/sift/src/gaussian.rs:
crates/sift/src/image.rs:
crates/sift/src/keypoint.rs:
crates/sift/src/matching.rs:
crates/sift/src/pyramid.rs:
