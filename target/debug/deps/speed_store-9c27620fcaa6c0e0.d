/root/repo/target/debug/deps/speed_store-9c27620fcaa6c0e0.d: crates/store/src/lib.rs crates/store/src/dict.rs crates/store/src/error.rs crates/store/src/persist.rs crates/store/src/quota.rs crates/store/src/server.rs crates/store/src/store.rs crates/store/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_store-9c27620fcaa6c0e0.rmeta: crates/store/src/lib.rs crates/store/src/dict.rs crates/store/src/error.rs crates/store/src/persist.rs crates/store/src/quota.rs crates/store/src/server.rs crates/store/src/store.rs crates/store/src/sync.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/dict.rs:
crates/store/src/error.rs:
crates/store/src/persist.rs:
crates/store/src/quota.rs:
crates/store/src/server.rs:
crates/store/src/store.rs:
crates/store/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
