/root/repo/target/debug/deps/extensions-011d315123afffdb.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-011d315123afffdb.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
