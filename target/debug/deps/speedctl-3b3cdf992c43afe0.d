/root/repo/target/debug/deps/speedctl-3b3cdf992c43afe0.d: crates/store/src/bin/speedctl.rs Cargo.toml

/root/repo/target/debug/deps/libspeedctl-3b3cdf992c43afe0.rmeta: crates/store/src/bin/speedctl.rs Cargo.toml

crates/store/src/bin/speedctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
