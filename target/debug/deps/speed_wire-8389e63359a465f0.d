/root/repo/target/debug/deps/speed_wire-8389e63359a465f0.d: crates/wire/src/lib.rs crates/wire/src/channel.rs crates/wire/src/codec.rs crates/wire/src/frame.rs crates/wire/src/messages.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_wire-8389e63359a465f0.rmeta: crates/wire/src/lib.rs crates/wire/src/channel.rs crates/wire/src/codec.rs crates/wire/src/frame.rs crates/wire/src/messages.rs Cargo.toml

crates/wire/src/lib.rs:
crates/wire/src/channel.rs:
crates/wire/src/codec.rs:
crates/wire/src/frame.rs:
crates/wire/src/messages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
