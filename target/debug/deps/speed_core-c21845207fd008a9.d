/root/repo/target/debug/deps/speed_core-c21845207fd008a9.d: crates/core/src/lib.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/deduplicable.rs crates/core/src/error.rs crates/core/src/func.rs crates/core/src/policy.rs crates/core/src/rce.rs crates/core/src/resilience.rs crates/core/src/runtime.rs crates/core/src/tag.rs

/root/repo/target/debug/deps/speed_core-c21845207fd008a9: crates/core/src/lib.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/deduplicable.rs crates/core/src/error.rs crates/core/src/func.rs crates/core/src/policy.rs crates/core/src/rce.rs crates/core/src/resilience.rs crates/core/src/runtime.rs crates/core/src/tag.rs

crates/core/src/lib.rs:
crates/core/src/chaos.rs:
crates/core/src/client.rs:
crates/core/src/deduplicable.rs:
crates/core/src/error.rs:
crates/core/src/func.rs:
crates/core/src/policy.rs:
crates/core/src/rce.rs:
crates/core/src/resilience.rs:
crates/core/src/runtime.rs:
crates/core/src/tag.rs:
