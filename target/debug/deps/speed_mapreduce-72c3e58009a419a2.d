/root/repo/target/debug/deps/speed_mapreduce-72c3e58009a419a2.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/bow.rs crates/mapreduce/src/framework.rs crates/mapreduce/src/index.rs

/root/repo/target/debug/deps/speed_mapreduce-72c3e58009a419a2: crates/mapreduce/src/lib.rs crates/mapreduce/src/bow.rs crates/mapreduce/src/framework.rs crates/mapreduce/src/index.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/bow.rs:
crates/mapreduce/src/framework.rs:
crates/mapreduce/src/index.rs:
