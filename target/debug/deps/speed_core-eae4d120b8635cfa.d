/root/repo/target/debug/deps/speed_core-eae4d120b8635cfa.d: crates/core/src/lib.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/deduplicable.rs crates/core/src/error.rs crates/core/src/func.rs crates/core/src/policy.rs crates/core/src/rce.rs crates/core/src/resilience.rs crates/core/src/runtime.rs crates/core/src/tag.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_core-eae4d120b8635cfa.rmeta: crates/core/src/lib.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/deduplicable.rs crates/core/src/error.rs crates/core/src/func.rs crates/core/src/policy.rs crates/core/src/rce.rs crates/core/src/resilience.rs crates/core/src/runtime.rs crates/core/src/tag.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/chaos.rs:
crates/core/src/client.rs:
crates/core/src/deduplicable.rs:
crates/core/src/error.rs:
crates/core/src/func.rs:
crates/core/src/policy.rs:
crates/core/src/rce.rs:
crates/core/src/resilience.rs:
crates/core/src/runtime.rs:
crates/core/src/tag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
