/root/repo/target/debug/deps/speed_sift-814b318e9b392497.d: crates/sift/src/lib.rs crates/sift/src/descriptor.rs crates/sift/src/gaussian.rs crates/sift/src/image.rs crates/sift/src/keypoint.rs crates/sift/src/matching.rs crates/sift/src/pyramid.rs

/root/repo/target/debug/deps/speed_sift-814b318e9b392497: crates/sift/src/lib.rs crates/sift/src/descriptor.rs crates/sift/src/gaussian.rs crates/sift/src/image.rs crates/sift/src/keypoint.rs crates/sift/src/matching.rs crates/sift/src/pyramid.rs

crates/sift/src/lib.rs:
crates/sift/src/descriptor.rs:
crates/sift/src/gaussian.rs:
crates/sift/src/image.rs:
crates/sift/src/keypoint.rs:
crates/sift/src/matching.rs:
crates/sift/src/pyramid.rs:
