/root/repo/target/debug/deps/distributed-0b56fd26bd431f17.d: tests/distributed.rs Cargo.toml

/root/repo/target/debug/deps/libdistributed-0b56fd26bd431f17.rmeta: tests/distributed.rs Cargo.toml

tests/distributed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
