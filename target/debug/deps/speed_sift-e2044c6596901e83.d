/root/repo/target/debug/deps/speed_sift-e2044c6596901e83.d: crates/sift/src/lib.rs crates/sift/src/descriptor.rs crates/sift/src/gaussian.rs crates/sift/src/image.rs crates/sift/src/keypoint.rs crates/sift/src/matching.rs crates/sift/src/pyramid.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_sift-e2044c6596901e83.rmeta: crates/sift/src/lib.rs crates/sift/src/descriptor.rs crates/sift/src/gaussian.rs crates/sift/src/image.rs crates/sift/src/keypoint.rs crates/sift/src/matching.rs crates/sift/src/pyramid.rs Cargo.toml

crates/sift/src/lib.rs:
crates/sift/src/descriptor.rs:
crates/sift/src/gaussian.rs:
crates/sift/src/image.rs:
crates/sift/src/keypoint.rs:
crates/sift/src/matching.rs:
crates/sift/src/pyramid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
