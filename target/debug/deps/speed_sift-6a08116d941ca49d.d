/root/repo/target/debug/deps/speed_sift-6a08116d941ca49d.d: crates/sift/src/lib.rs crates/sift/src/descriptor.rs crates/sift/src/gaussian.rs crates/sift/src/image.rs crates/sift/src/keypoint.rs crates/sift/src/matching.rs crates/sift/src/pyramid.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_sift-6a08116d941ca49d.rmeta: crates/sift/src/lib.rs crates/sift/src/descriptor.rs crates/sift/src/gaussian.rs crates/sift/src/image.rs crates/sift/src/keypoint.rs crates/sift/src/matching.rs crates/sift/src/pyramid.rs Cargo.toml

crates/sift/src/lib.rs:
crates/sift/src/descriptor.rs:
crates/sift/src/gaussian.rs:
crates/sift/src/image.rs:
crates/sift/src/keypoint.rs:
crates/sift/src/matching.rs:
crates/sift/src/pyramid.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
