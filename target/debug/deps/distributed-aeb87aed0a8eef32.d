/root/repo/target/debug/deps/distributed-aeb87aed0a8eef32.d: tests/distributed.rs

/root/repo/target/debug/deps/distributed-aeb87aed0a8eef32: tests/distributed.rs

tests/distributed.rs:
