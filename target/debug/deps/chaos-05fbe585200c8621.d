/root/repo/target/debug/deps/chaos-05fbe585200c8621.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-05fbe585200c8621.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
