/root/repo/target/debug/deps/speed_enclave-61a066ee09b8b3b8.d: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/cost.rs crates/enclave/src/enclave.rs crates/enclave/src/epc.rs crates/enclave/src/error.rs crates/enclave/src/measurement.rs crates/enclave/src/platform.rs crates/enclave/src/sealing.rs crates/enclave/src/untrusted.rs

/root/repo/target/debug/deps/libspeed_enclave-61a066ee09b8b3b8.rlib: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/cost.rs crates/enclave/src/enclave.rs crates/enclave/src/epc.rs crates/enclave/src/error.rs crates/enclave/src/measurement.rs crates/enclave/src/platform.rs crates/enclave/src/sealing.rs crates/enclave/src/untrusted.rs

/root/repo/target/debug/deps/libspeed_enclave-61a066ee09b8b3b8.rmeta: crates/enclave/src/lib.rs crates/enclave/src/attestation.rs crates/enclave/src/cost.rs crates/enclave/src/enclave.rs crates/enclave/src/epc.rs crates/enclave/src/error.rs crates/enclave/src/measurement.rs crates/enclave/src/platform.rs crates/enclave/src/sealing.rs crates/enclave/src/untrusted.rs

crates/enclave/src/lib.rs:
crates/enclave/src/attestation.rs:
crates/enclave/src/cost.rs:
crates/enclave/src/enclave.rs:
crates/enclave/src/epc.rs:
crates/enclave/src/error.rs:
crates/enclave/src/measurement.rs:
crates/enclave/src/platform.rs:
crates/enclave/src/sealing.rs:
crates/enclave/src/untrusted.rs:
