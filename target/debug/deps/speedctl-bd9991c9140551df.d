/root/repo/target/debug/deps/speedctl-bd9991c9140551df.d: crates/store/src/bin/speedctl.rs

/root/repo/target/debug/deps/speedctl-bd9991c9140551df: crates/store/src/bin/speedctl.rs

crates/store/src/bin/speedctl.rs:
