/root/repo/target/debug/deps/extensions-1ec25271e2743d1b.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-1ec25271e2743d1b: tests/extensions.rs

tests/extensions.rs:
