/root/repo/target/debug/deps/speed_store-cb5fb3036d4ad670.d: crates/store/src/lib.rs crates/store/src/dict.rs crates/store/src/error.rs crates/store/src/persist.rs crates/store/src/quota.rs crates/store/src/server.rs crates/store/src/store.rs crates/store/src/sync.rs

/root/repo/target/debug/deps/libspeed_store-cb5fb3036d4ad670.rlib: crates/store/src/lib.rs crates/store/src/dict.rs crates/store/src/error.rs crates/store/src/persist.rs crates/store/src/quota.rs crates/store/src/server.rs crates/store/src/store.rs crates/store/src/sync.rs

/root/repo/target/debug/deps/libspeed_store-cb5fb3036d4ad670.rmeta: crates/store/src/lib.rs crates/store/src/dict.rs crates/store/src/error.rs crates/store/src/persist.rs crates/store/src/quota.rs crates/store/src/server.rs crates/store/src/store.rs crates/store/src/sync.rs

crates/store/src/lib.rs:
crates/store/src/dict.rs:
crates/store/src/error.rs:
crates/store/src/persist.rs:
crates/store/src/quota.rs:
crates/store/src/server.rs:
crates/store/src/store.rs:
crates/store/src/sync.rs:
