/root/repo/target/debug/deps/speed_workloads-340d506a0f327d67.d: crates/workloads/src/lib.rs crates/workloads/src/evolving.rs crates/workloads/src/images.rs crates/workloads/src/packets.rs crates/workloads/src/pages.rs crates/workloads/src/rules.rs crates/workloads/src/text.rs crates/workloads/src/stream.rs

/root/repo/target/debug/deps/libspeed_workloads-340d506a0f327d67.rlib: crates/workloads/src/lib.rs crates/workloads/src/evolving.rs crates/workloads/src/images.rs crates/workloads/src/packets.rs crates/workloads/src/pages.rs crates/workloads/src/rules.rs crates/workloads/src/text.rs crates/workloads/src/stream.rs

/root/repo/target/debug/deps/libspeed_workloads-340d506a0f327d67.rmeta: crates/workloads/src/lib.rs crates/workloads/src/evolving.rs crates/workloads/src/images.rs crates/workloads/src/packets.rs crates/workloads/src/pages.rs crates/workloads/src/rules.rs crates/workloads/src/text.rs crates/workloads/src/stream.rs

crates/workloads/src/lib.rs:
crates/workloads/src/evolving.rs:
crates/workloads/src/images.rs:
crates/workloads/src/packets.rs:
crates/workloads/src/pages.rs:
crates/workloads/src/rules.rs:
crates/workloads/src/text.rs:
crates/workloads/src/stream.rs:
