/root/repo/target/debug/deps/speed_repro-c99527554efa5cd7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_repro-c99527554efa5cd7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
