/root/repo/target/debug/deps/speed_repro-c1802808eb205d59.d: src/lib.rs

/root/repo/target/debug/deps/libspeed_repro-c1802808eb205d59.rlib: src/lib.rs

/root/repo/target/debug/deps/libspeed_repro-c1802808eb205d59.rmeta: src/lib.rs

src/lib.rs:
