/root/repo/target/debug/deps/properties-832ac8db32cc7dd3.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-832ac8db32cc7dd3.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
