/root/repo/target/debug/deps/speed_matcher-c860cecdbb2fcb72.d: crates/matcher/src/lib.rs crates/matcher/src/aho.rs crates/matcher/src/error.rs crates/matcher/src/regex.rs crates/matcher/src/rules.rs Cargo.toml

/root/repo/target/debug/deps/libspeed_matcher-c860cecdbb2fcb72.rmeta: crates/matcher/src/lib.rs crates/matcher/src/aho.rs crates/matcher/src/error.rs crates/matcher/src/regex.rs crates/matcher/src/rules.rs Cargo.toml

crates/matcher/src/lib.rs:
crates/matcher/src/aho.rs:
crates/matcher/src/error.rs:
crates/matcher/src/regex.rs:
crates/matcher/src/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
