/root/repo/target/debug/examples/virus_scanner-1ce65f40185845c9.d: examples/virus_scanner.rs

/root/repo/target/debug/examples/virus_scanner-1ce65f40185845c9: examples/virus_scanner.rs

examples/virus_scanner.rs:
