/root/repo/target/debug/examples/bow_analytics-0132529b16cfde72.d: examples/bow_analytics.rs Cargo.toml

/root/repo/target/debug/examples/libbow_analytics-0132529b16cfde72.rmeta: examples/bow_analytics.rs Cargo.toml

examples/bow_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
