/root/repo/target/debug/examples/degraded_mode-992bb34a3e1a04b8.d: examples/degraded_mode.rs Cargo.toml

/root/repo/target/debug/examples/libdegraded_mode-992bb34a3e1a04b8.rmeta: examples/degraded_mode.rs Cargo.toml

examples/degraded_mode.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
