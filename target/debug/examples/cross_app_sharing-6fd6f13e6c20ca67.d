/root/repo/target/debug/examples/cross_app_sharing-6fd6f13e6c20ca67.d: examples/cross_app_sharing.rs Cargo.toml

/root/repo/target/debug/examples/libcross_app_sharing-6fd6f13e6c20ca67.rmeta: examples/cross_app_sharing.rs Cargo.toml

examples/cross_app_sharing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
