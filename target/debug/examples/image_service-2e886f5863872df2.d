/root/repo/target/debug/examples/image_service-2e886f5863872df2.d: examples/image_service.rs Cargo.toml

/root/repo/target/debug/examples/libimage_service-2e886f5863872df2.rmeta: examples/image_service.rs Cargo.toml

examples/image_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
