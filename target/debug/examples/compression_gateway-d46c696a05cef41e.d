/root/repo/target/debug/examples/compression_gateway-d46c696a05cef41e.d: examples/compression_gateway.rs

/root/repo/target/debug/examples/compression_gateway-d46c696a05cef41e: examples/compression_gateway.rs

examples/compression_gateway.rs:
