/root/repo/target/debug/examples/image_service-f27068f92efb88e1.d: examples/image_service.rs

/root/repo/target/debug/examples/image_service-f27068f92efb88e1: examples/image_service.rs

examples/image_service.rs:
