/root/repo/target/debug/examples/bow_analytics-5ea999a8129f9566.d: examples/bow_analytics.rs

/root/repo/target/debug/examples/bow_analytics-5ea999a8129f9566: examples/bow_analytics.rs

examples/bow_analytics.rs:
