/root/repo/target/debug/examples/quickstart-d747a3490e6e5e44.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d747a3490e6e5e44: examples/quickstart.rs

examples/quickstart.rs:
