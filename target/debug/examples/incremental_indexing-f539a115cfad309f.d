/root/repo/target/debug/examples/incremental_indexing-f539a115cfad309f.d: examples/incremental_indexing.rs Cargo.toml

/root/repo/target/debug/examples/libincremental_indexing-f539a115cfad309f.rmeta: examples/incremental_indexing.rs Cargo.toml

examples/incremental_indexing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
