/root/repo/target/debug/examples/cross_app_sharing-f3942871b4e7d103.d: examples/cross_app_sharing.rs

/root/repo/target/debug/examples/cross_app_sharing-f3942871b4e7d103: examples/cross_app_sharing.rs

examples/cross_app_sharing.rs:
