/root/repo/target/debug/examples/compression_gateway-f77f803af41ad6cf.d: examples/compression_gateway.rs Cargo.toml

/root/repo/target/debug/examples/libcompression_gateway-f77f803af41ad6cf.rmeta: examples/compression_gateway.rs Cargo.toml

examples/compression_gateway.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
