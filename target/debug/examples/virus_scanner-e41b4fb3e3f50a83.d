/root/repo/target/debug/examples/virus_scanner-e41b4fb3e3f50a83.d: examples/virus_scanner.rs Cargo.toml

/root/repo/target/debug/examples/libvirus_scanner-e41b4fb3e3f50a83.rmeta: examples/virus_scanner.rs Cargo.toml

examples/virus_scanner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
