/root/repo/target/debug/examples/incremental_indexing-c99906f0bf378587.d: examples/incremental_indexing.rs

/root/repo/target/debug/examples/incremental_indexing-c99906f0bf378587: examples/incremental_indexing.rs

examples/incremental_indexing.rs:
