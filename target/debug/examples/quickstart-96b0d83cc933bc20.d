/root/repo/target/debug/examples/quickstart-96b0d83cc933bc20.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-96b0d83cc933bc20.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
