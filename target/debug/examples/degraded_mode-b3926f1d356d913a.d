/root/repo/target/debug/examples/degraded_mode-b3926f1d356d913a.d: examples/degraded_mode.rs

/root/repo/target/debug/examples/degraded_mode-b3926f1d356d913a: examples/degraded_mode.rs

examples/degraded_mode.rs:
