/root/repo/target/release/examples/degraded_mode-1fdaebb77641c93b.d: examples/degraded_mode.rs

/root/repo/target/release/examples/degraded_mode-1fdaebb77641c93b: examples/degraded_mode.rs

examples/degraded_mode.rs:
