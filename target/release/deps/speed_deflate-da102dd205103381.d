/root/repo/target/release/deps/speed_deflate-da102dd205103381.d: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/error.rs crates/deflate/src/huffman.rs crates/deflate/src/lz77.rs

/root/repo/target/release/deps/libspeed_deflate-da102dd205103381.rlib: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/error.rs crates/deflate/src/huffman.rs crates/deflate/src/lz77.rs

/root/repo/target/release/deps/libspeed_deflate-da102dd205103381.rmeta: crates/deflate/src/lib.rs crates/deflate/src/bitio.rs crates/deflate/src/error.rs crates/deflate/src/huffman.rs crates/deflate/src/lz77.rs

crates/deflate/src/lib.rs:
crates/deflate/src/bitio.rs:
crates/deflate/src/error.rs:
crates/deflate/src/huffman.rs:
crates/deflate/src/lz77.rs:
