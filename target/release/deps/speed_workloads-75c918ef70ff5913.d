/root/repo/target/release/deps/speed_workloads-75c918ef70ff5913.d: crates/workloads/src/lib.rs crates/workloads/src/evolving.rs crates/workloads/src/images.rs crates/workloads/src/packets.rs crates/workloads/src/pages.rs crates/workloads/src/rules.rs crates/workloads/src/text.rs crates/workloads/src/stream.rs

/root/repo/target/release/deps/libspeed_workloads-75c918ef70ff5913.rlib: crates/workloads/src/lib.rs crates/workloads/src/evolving.rs crates/workloads/src/images.rs crates/workloads/src/packets.rs crates/workloads/src/pages.rs crates/workloads/src/rules.rs crates/workloads/src/text.rs crates/workloads/src/stream.rs

/root/repo/target/release/deps/libspeed_workloads-75c918ef70ff5913.rmeta: crates/workloads/src/lib.rs crates/workloads/src/evolving.rs crates/workloads/src/images.rs crates/workloads/src/packets.rs crates/workloads/src/pages.rs crates/workloads/src/rules.rs crates/workloads/src/text.rs crates/workloads/src/stream.rs

crates/workloads/src/lib.rs:
crates/workloads/src/evolving.rs:
crates/workloads/src/images.rs:
crates/workloads/src/packets.rs:
crates/workloads/src/pages.rs:
crates/workloads/src/rules.rs:
crates/workloads/src/text.rs:
crates/workloads/src/stream.rs:
