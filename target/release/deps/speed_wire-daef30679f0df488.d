/root/repo/target/release/deps/speed_wire-daef30679f0df488.d: crates/wire/src/lib.rs crates/wire/src/channel.rs crates/wire/src/codec.rs crates/wire/src/frame.rs crates/wire/src/messages.rs

/root/repo/target/release/deps/libspeed_wire-daef30679f0df488.rlib: crates/wire/src/lib.rs crates/wire/src/channel.rs crates/wire/src/codec.rs crates/wire/src/frame.rs crates/wire/src/messages.rs

/root/repo/target/release/deps/libspeed_wire-daef30679f0df488.rmeta: crates/wire/src/lib.rs crates/wire/src/channel.rs crates/wire/src/codec.rs crates/wire/src/frame.rs crates/wire/src/messages.rs

crates/wire/src/lib.rs:
crates/wire/src/channel.rs:
crates/wire/src/codec.rs:
crates/wire/src/frame.rs:
crates/wire/src/messages.rs:
