/root/repo/target/release/deps/speedctl-7f7cbb23428264fc.d: crates/store/src/bin/speedctl.rs

/root/repo/target/release/deps/speedctl-7f7cbb23428264fc: crates/store/src/bin/speedctl.rs

crates/store/src/bin/speedctl.rs:
