/root/repo/target/release/deps/speed_core-8f2694a424147861.d: crates/core/src/lib.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/deduplicable.rs crates/core/src/error.rs crates/core/src/func.rs crates/core/src/policy.rs crates/core/src/rce.rs crates/core/src/resilience.rs crates/core/src/runtime.rs crates/core/src/tag.rs

/root/repo/target/release/deps/libspeed_core-8f2694a424147861.rlib: crates/core/src/lib.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/deduplicable.rs crates/core/src/error.rs crates/core/src/func.rs crates/core/src/policy.rs crates/core/src/rce.rs crates/core/src/resilience.rs crates/core/src/runtime.rs crates/core/src/tag.rs

/root/repo/target/release/deps/libspeed_core-8f2694a424147861.rmeta: crates/core/src/lib.rs crates/core/src/chaos.rs crates/core/src/client.rs crates/core/src/deduplicable.rs crates/core/src/error.rs crates/core/src/func.rs crates/core/src/policy.rs crates/core/src/rce.rs crates/core/src/resilience.rs crates/core/src/runtime.rs crates/core/src/tag.rs

crates/core/src/lib.rs:
crates/core/src/chaos.rs:
crates/core/src/client.rs:
crates/core/src/deduplicable.rs:
crates/core/src/error.rs:
crates/core/src/func.rs:
crates/core/src/policy.rs:
crates/core/src/rce.rs:
crates/core/src/resilience.rs:
crates/core/src/runtime.rs:
crates/core/src/tag.rs:
