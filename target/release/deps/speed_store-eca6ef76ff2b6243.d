/root/repo/target/release/deps/speed_store-eca6ef76ff2b6243.d: crates/store/src/lib.rs crates/store/src/dict.rs crates/store/src/error.rs crates/store/src/persist.rs crates/store/src/quota.rs crates/store/src/server.rs crates/store/src/store.rs crates/store/src/sync.rs

/root/repo/target/release/deps/libspeed_store-eca6ef76ff2b6243.rlib: crates/store/src/lib.rs crates/store/src/dict.rs crates/store/src/error.rs crates/store/src/persist.rs crates/store/src/quota.rs crates/store/src/server.rs crates/store/src/store.rs crates/store/src/sync.rs

/root/repo/target/release/deps/libspeed_store-eca6ef76ff2b6243.rmeta: crates/store/src/lib.rs crates/store/src/dict.rs crates/store/src/error.rs crates/store/src/persist.rs crates/store/src/quota.rs crates/store/src/server.rs crates/store/src/store.rs crates/store/src/sync.rs

crates/store/src/lib.rs:
crates/store/src/dict.rs:
crates/store/src/error.rs:
crates/store/src/persist.rs:
crates/store/src/quota.rs:
crates/store/src/server.rs:
crates/store/src/store.rs:
crates/store/src/sync.rs:
