/root/repo/target/release/deps/speed_matcher-a6cfd5bef41b3628.d: crates/matcher/src/lib.rs crates/matcher/src/aho.rs crates/matcher/src/error.rs crates/matcher/src/regex.rs crates/matcher/src/rules.rs

/root/repo/target/release/deps/libspeed_matcher-a6cfd5bef41b3628.rlib: crates/matcher/src/lib.rs crates/matcher/src/aho.rs crates/matcher/src/error.rs crates/matcher/src/regex.rs crates/matcher/src/rules.rs

/root/repo/target/release/deps/libspeed_matcher-a6cfd5bef41b3628.rmeta: crates/matcher/src/lib.rs crates/matcher/src/aho.rs crates/matcher/src/error.rs crates/matcher/src/regex.rs crates/matcher/src/rules.rs

crates/matcher/src/lib.rs:
crates/matcher/src/aho.rs:
crates/matcher/src/error.rs:
crates/matcher/src/regex.rs:
crates/matcher/src/rules.rs:
