/root/repo/target/release/deps/speed_mapreduce-a14af53a22b0acc8.d: crates/mapreduce/src/lib.rs crates/mapreduce/src/bow.rs crates/mapreduce/src/framework.rs crates/mapreduce/src/index.rs

/root/repo/target/release/deps/libspeed_mapreduce-a14af53a22b0acc8.rlib: crates/mapreduce/src/lib.rs crates/mapreduce/src/bow.rs crates/mapreduce/src/framework.rs crates/mapreduce/src/index.rs

/root/repo/target/release/deps/libspeed_mapreduce-a14af53a22b0acc8.rmeta: crates/mapreduce/src/lib.rs crates/mapreduce/src/bow.rs crates/mapreduce/src/framework.rs crates/mapreduce/src/index.rs

crates/mapreduce/src/lib.rs:
crates/mapreduce/src/bow.rs:
crates/mapreduce/src/framework.rs:
crates/mapreduce/src/index.rs:
