/root/repo/target/release/deps/speed_crypto-fd1bb991c8696b0b.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ct.rs crates/crypto/src/error.rs crates/crypto/src/gcm.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha256.rs crates/crypto/src/types.rs

/root/repo/target/release/deps/libspeed_crypto-fd1bb991c8696b0b.rlib: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ct.rs crates/crypto/src/error.rs crates/crypto/src/gcm.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha256.rs crates/crypto/src/types.rs

/root/repo/target/release/deps/libspeed_crypto-fd1bb991c8696b0b.rmeta: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/ct.rs crates/crypto/src/error.rs crates/crypto/src/gcm.rs crates/crypto/src/hkdf.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha256.rs crates/crypto/src/types.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/ct.rs:
crates/crypto/src/error.rs:
crates/crypto/src/gcm.rs:
crates/crypto/src/hkdf.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/rng.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/types.rs:
