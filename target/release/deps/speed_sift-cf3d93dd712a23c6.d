/root/repo/target/release/deps/speed_sift-cf3d93dd712a23c6.d: crates/sift/src/lib.rs crates/sift/src/descriptor.rs crates/sift/src/gaussian.rs crates/sift/src/image.rs crates/sift/src/keypoint.rs crates/sift/src/matching.rs crates/sift/src/pyramid.rs

/root/repo/target/release/deps/libspeed_sift-cf3d93dd712a23c6.rlib: crates/sift/src/lib.rs crates/sift/src/descriptor.rs crates/sift/src/gaussian.rs crates/sift/src/image.rs crates/sift/src/keypoint.rs crates/sift/src/matching.rs crates/sift/src/pyramid.rs

/root/repo/target/release/deps/libspeed_sift-cf3d93dd712a23c6.rmeta: crates/sift/src/lib.rs crates/sift/src/descriptor.rs crates/sift/src/gaussian.rs crates/sift/src/image.rs crates/sift/src/keypoint.rs crates/sift/src/matching.rs crates/sift/src/pyramid.rs

crates/sift/src/lib.rs:
crates/sift/src/descriptor.rs:
crates/sift/src/gaussian.rs:
crates/sift/src/image.rs:
crates/sift/src/keypoint.rs:
crates/sift/src/matching.rs:
crates/sift/src/pyramid.rs:
