/root/repo/target/release/deps/speed_repro-c31aa5c38bb60a3f.d: src/lib.rs

/root/repo/target/release/deps/libspeed_repro-c31aa5c38bb60a3f.rlib: src/lib.rs

/root/repo/target/release/deps/libspeed_repro-c31aa5c38bb60a3f.rmeta: src/lib.rs

src/lib.rs:
