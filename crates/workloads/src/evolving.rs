//! Evolving datasets: the paper's second motivating redundancy source —
//! "incrementally updated datasets are constantly being processed by the
//! same or similar computing tasks, such as feature extraction for machine
//! learning, index building for fast queries, and data aggregation for
//! truth discovery" (§I).
//!
//! An [`EvolvingCorpus`] starts from a base set of documents and produces
//! *epochs*: at each epoch a configurable fraction of documents is mutated
//! (or replaced) while the rest stay byte-identical — so per-document
//! computations over consecutive epochs deduplicate on the unchanged part.

use speed_crypto::SystemRng;

use crate::text::synthetic_text;

/// Configuration for corpus evolution.
#[derive(Clone, Debug)]
pub struct EvolutionConfig {
    /// Number of documents in the corpus.
    pub documents: usize,
    /// Bytes per document.
    pub document_bytes: usize,
    /// Fraction of documents changed per epoch, in `[0, 1]`.
    pub churn: f64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        EvolutionConfig { documents: 50, document_bytes: 4096, churn: 0.1 }
    }
}

/// A corpus that changes a little every epoch.
#[derive(Clone, Debug)]
pub struct EvolvingCorpus {
    documents: Vec<Vec<u8>>,
    rng: SystemRng,
    config: EvolutionConfig,
    epoch: u64,
    changed_last_epoch: usize,
}

impl EvolvingCorpus {
    /// Builds the epoch-0 corpus.
    ///
    /// # Panics
    ///
    /// Panics if `documents` is zero or `churn` is outside `[0, 1]`.
    pub fn new(config: EvolutionConfig, seed: u64) -> Self {
        assert!(config.documents > 0, "corpus must be nonempty");
        assert!((0.0..=1.0).contains(&config.churn), "churn must be in [0, 1]");
        let documents = (0..config.documents)
            .map(|i| {
                synthetic_text(config.document_bytes, seed.wrapping_add(i as u64))
                    .into_bytes()
            })
            .collect();
        EvolvingCorpus {
            documents,
            rng: SystemRng::seeded(seed ^ 0x5EED),
            config,
            epoch: 0,
            changed_last_epoch: 0,
        }
    }

    /// The current epoch number (0 before any [`advance`](Self::advance)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Documents of the current epoch.
    pub fn documents(&self) -> &[Vec<u8>] {
        &self.documents
    }

    /// How many documents changed in the last [`advance`](Self::advance).
    pub fn changed_last_epoch(&self) -> usize {
        self.changed_last_epoch
    }

    /// Advances one epoch: roughly `churn × documents` entries are
    /// regenerated; all others stay byte-identical.
    pub fn advance(&mut self) {
        self.epoch += 1;
        let mut changed = 0usize;
        for i in 0..self.documents.len() {
            if self.rng.gen_bool(self.config.churn) {
                let fresh_seed = self.rng.next_u64();
                self.documents[i] =
                    synthetic_text(self.config.document_bytes, fresh_seed).into_bytes();
                changed += 1;
            }
        }
        self.changed_last_epoch = changed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(churn: f64) -> EvolvingCorpus {
        EvolvingCorpus::new(
            EvolutionConfig { documents: 100, document_bytes: 512, churn },
            7,
        )
    }

    #[test]
    fn deterministic_evolution() {
        let mut a = corpus(0.2);
        let mut b = corpus(0.2);
        for _ in 0..3 {
            a.advance();
            b.advance();
        }
        assert_eq!(a.documents(), b.documents());
        assert_eq!(a.epoch(), 3);
    }

    #[test]
    fn churn_controls_change_fraction() {
        let mut c = corpus(0.2);
        let before = c.documents().to_vec();
        c.advance();
        let changed =
            c.documents().iter().zip(&before).filter(|(now, was)| now != was).count();
        assert_eq!(changed, c.changed_last_epoch());
        assert!((5..=40).contains(&changed), "changed {changed}/100");
    }

    #[test]
    fn zero_churn_is_static() {
        let mut c = corpus(0.0);
        let before = c.documents().to_vec();
        c.advance();
        assert_eq!(c.documents(), &before[..]);
        assert_eq!(c.changed_last_epoch(), 0);
    }

    #[test]
    fn full_churn_replaces_everything_eventually() {
        let mut c = corpus(1.0);
        let before = c.documents().to_vec();
        c.advance();
        let unchanged =
            c.documents().iter().zip(&before).filter(|(now, was)| now == was).count();
        assert_eq!(unchanged, 0);
    }

    #[test]
    #[should_panic(expected = "churn")]
    fn invalid_churn_panics() {
        let _ = EvolvingCorpus::new(
            EvolutionConfig { documents: 1, document_bytes: 8, churn: 2.0 },
            1,
        );
    }
}
