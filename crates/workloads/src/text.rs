//! Word-bank prose generation for the compression workload.

use speed_crypto::SystemRng;

const WORD_BANK: &[&str] = &[
    "the",
    "of",
    "and",
    "a",
    "to",
    "in",
    "is",
    "you",
    "that",
    "it",
    "he",
    "was",
    "for",
    "on",
    "are",
    "as",
    "with",
    "his",
    "they",
    "at",
    "be",
    "this",
    "have",
    "from",
    "or",
    "one",
    "had",
    "by",
    "word",
    "but",
    "not",
    "what",
    "all",
    "were",
    "we",
    "when",
    "your",
    "can",
    "said",
    "there",
    "use",
    "an",
    "each",
    "which",
    "she",
    "do",
    "how",
    "their",
    "if",
    "will",
    "up",
    "other",
    "about",
    "out",
    "many",
    "then",
    "them",
    "these",
    "so",
    "some",
    "her",
    "would",
    "make",
    "like",
    "him",
    "into",
    "time",
    "has",
    "look",
    "two",
    "more",
    "write",
    "go",
    "see",
    "number",
    "no",
    "way",
    "could",
    "people",
    "my",
    "than",
    "first",
    "water",
    "been",
    "call",
    "who",
    "oil",
    "its",
    "now",
    "find",
    "long",
    "down",
    "day",
    "did",
    "get",
    "come",
    "made",
    "may",
    "part",
    "system",
    "compression",
    "deduplication",
    "enclave",
    "computation",
    "library",
    "function",
    "result",
];

/// Generates roughly `target_bytes` of sentence-structured prose. Real text
/// compresses 2.5–4× with DEFLATE-class compressors; this does too.
pub fn synthetic_text(target_bytes: usize, seed: u64) -> String {
    let mut rng = SystemRng::seeded(seed);
    let mut out = String::with_capacity(target_bytes + 64);
    let mut sentence_len = 0usize;
    while out.len() < target_bytes {
        let word = WORD_BANK[rng.range_usize(0, WORD_BANK.len())];
        if sentence_len == 0 {
            let mut chars = word.chars();
            if let Some(first) = chars.next() {
                out.extend(first.to_uppercase());
                out.push_str(chars.as_str());
            }
        } else {
            out.push_str(word);
        }
        sentence_len += 1;
        if sentence_len >= rng.range_usize(6, 18) {
            out.push_str(". ");
            sentence_len = 0;
        } else {
            out.push(' ');
        }
    }
    out.truncate(target_bytes);
    out
}

/// A corpus of `count` distinct texts of `target_bytes` each.
pub fn text_corpus(count: usize, target_bytes: usize, seed: u64) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            synthetic_text(target_bytes, seed.wrapping_add(i as u64 * 0x51AB))
                .into_bytes()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(synthetic_text(1000, 1), synthetic_text(1000, 1));
        assert_ne!(synthetic_text(1000, 1), synthetic_text(1000, 2));
    }

    #[test]
    fn length_is_exact() {
        for len in [0, 1, 100, 10_000] {
            assert_eq!(synthetic_text(len, 3).len(), len);
        }
    }

    #[test]
    fn text_is_compressible_like_prose() {
        let text = synthetic_text(64 * 1024, 4);
        let packed =
            speed_deflate::compress(text.as_bytes(), speed_deflate::Level::Default);
        let ratio = packed.len() as f64 / text.len() as f64;
        assert!(ratio < 0.5, "ratio {ratio}");
        assert!(ratio > 0.05, "suspiciously compressible: {ratio}");
    }

    #[test]
    fn corpus_items_differ() {
        let corpus = text_corpus(4, 512, 5);
        for i in 0..corpus.len() {
            for j in i + 1..corpus.len() {
                assert_ne!(corpus[i], corpus[j]);
            }
        }
    }

    #[test]
    fn sentences_are_structured() {
        let text = synthetic_text(5000, 6);
        assert!(text.contains(". "));
        assert!(text.starts_with(|c: char| c.is_uppercase()));
    }
}
