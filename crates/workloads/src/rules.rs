//! Snort-like rule-set generation (standing in for the paper's ~3,700
//! Snort rules).

use speed_crypto::SystemRng;
use speed_matcher::{Rule, RuleSet};

const PREFIXES: &[&str] =
    &["TROJAN", "WORM", "EXPLOIT", "SCAN", "BACKDOOR", "SHELLCODE", "POLICY", "BOTNET"];
const REGEX_TEMPLATES: &[&str] = &[
    r"GET /[a-z]{{N}}/.*\.(php|cgi|asp)",
    r"User-Agent: [A-Za-z]{{N}}bot",
    r"\x90{{N}}",
    r"(SELECT|UNION).{1,{N}}FROM",
    r"cmd=[a-z0-9]{{N}}",
];

/// Generates `literal_count` literal rules plus `regex_count` regex rules.
///
/// Literal signatures look like `"TROJAN-1a2b3c4d"`; regex rules are
/// instantiated from IDS-style templates. Rule ids are dense from 1.
pub fn rule_corpus(literal_count: usize, regex_count: usize, seed: u64) -> Vec<Rule> {
    let mut rng = SystemRng::seeded(seed);
    let mut rules = Vec::with_capacity(literal_count + regex_count);
    for i in 0..literal_count {
        let prefix = PREFIXES[rng.range_usize(0, PREFIXES.len())];
        let token: String = (0..8)
            .map(|_| char::from(b"0123456789abcdef"[rng.range_usize(0, 16)]))
            .collect();
        rules.push(
            Rule::literal((i + 1) as u32, format!("{prefix}-{token}"))
                .with_message(format!("{prefix} signature {token}")),
        );
    }
    for j in 0..regex_count {
        let template = REGEX_TEMPLATES[j % REGEX_TEMPLATES.len()];
        let n = rng.range_usize(2, 9).to_string();
        let pattern = template.replace("{N}", &n);
        let rule = Rule::regex((literal_count + j + 1) as u32, &pattern)
            .expect("template patterns always compile");
        rules.push(rule);
    }
    rules
}

/// Generates and compiles a rule set in one step.
pub fn compiled_rules(literal_count: usize, regex_count: usize, seed: u64) -> RuleSet {
    RuleSet::compile(rule_corpus(literal_count, regex_count, seed))
        .expect("generated rules are valid")
}

/// Extracts the literal signature strings, for planting into packet traces.
pub fn signatures(rules: &[Rule]) -> Vec<Vec<u8>> {
    // Regenerate from messages: literal rules carry "<PREFIX> signature
    // <token>" messages.
    rules
        .iter()
        .filter_map(|rule| {
            let msg = rule.message();
            let mut parts = msg.split(" signature ");
            let prefix = parts.next()?;
            let token = parts.next()?;
            if PREFIXES.contains(&prefix) {
                Some(format!("{prefix}-{token}").into_bytes())
            } else {
                None
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_sizes_and_ids() {
        let rules = rule_corpus(100, 20, 1);
        assert_eq!(rules.len(), 120);
        let ids: Vec<u32> = rules.iter().map(|r| r.id()).collect();
        assert_eq!(ids, (1..=120).collect::<Vec<_>>());
    }

    #[test]
    fn compiles_at_paper_scale() {
        // The paper uses >3,700 rules; make sure that scale compiles.
        let rules = compiled_rules(3500, 200, 2);
        assert_eq!(rules.len(), 3700);
    }

    #[test]
    fn deterministic() {
        let a = rule_corpus(50, 10, 3);
        let b = rule_corpus(50, 10, 3);
        let sig_a = signatures(&a);
        let sig_b = signatures(&b);
        assert_eq!(sig_a, sig_b);
        assert_eq!(sig_a.len(), 50);
    }

    #[test]
    fn planted_signature_fires() {
        let rules = rule_corpus(30, 5, 4);
        let sigs = signatures(&rules);
        let compiled = RuleSet::compile(rules).unwrap();
        let mut payload = b"innocent traffic ".to_vec();
        payload.extend_from_slice(&sigs[7]);
        payload.extend_from_slice(b" more traffic");
        let matches = compiled.scan(&payload);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].rule_id, 8);
    }

    #[test]
    fn regex_rules_function() {
        let compiled = compiled_rules(0, 10, 5);
        // The `cmd=[a-z0-9]{n}` template (n ≤ 8) always fires on this.
        let matches = compiled.scan(b"payload cmd=abcdefgh09 end");
        assert!(!matches.is_empty());
    }
}
