//! Request streams with controllable redundancy, and streaming corpora
//! with controllable *partial* overlap.

use speed_crypto::SystemRng;

use crate::text::synthetic_text;

/// Generates a sequence of indices into a base corpus such that a target
/// fraction of requests are repeats of earlier ones — the workload shape
/// that makes computation deduplication pay off.
///
/// # Example
///
/// ```
/// use speed_workloads::RequestStream;
///
/// let stream = RequestStream::new(10, 100, 0.8, 42);
/// let indices = stream.indices();
/// assert_eq!(indices.len(), 100);
/// assert!(indices.iter().all(|&i| i < 10));
/// ```
#[derive(Clone, Debug)]
pub struct RequestStream {
    indices: Vec<usize>,
    distinct: usize,
}

impl RequestStream {
    /// Builds a stream of `total` requests over `distinct` base items where
    /// roughly `duplicate_ratio` of requests (after each item's first
    /// appearance) repeat an already-seen item.
    ///
    /// # Panics
    ///
    /// Panics if `distinct` is zero or `duplicate_ratio` is outside
    /// `[0, 1]`.
    pub fn new(distinct: usize, total: usize, duplicate_ratio: f64, seed: u64) -> Self {
        assert!(distinct > 0, "need at least one distinct item");
        assert!(
            (0.0..=1.0).contains(&duplicate_ratio),
            "duplicate ratio must be in [0, 1]"
        );
        let mut rng = SystemRng::seeded(seed);
        let mut indices = Vec::with_capacity(total);
        let mut seen: Vec<usize> = Vec::new();
        let mut next_fresh = 0usize;
        for _ in 0..total {
            let want_repeat = !seen.is_empty() && rng.gen_bool(duplicate_ratio);
            if want_repeat || next_fresh >= distinct {
                // Zipf-ish popularity: prefer earlier (popular) items.
                let pick = zipf_index(&mut rng, seen.len());
                indices.push(seen[pick]);
            } else {
                indices.push(next_fresh);
                seen.push(next_fresh);
                next_fresh += 1;
            }
        }
        RequestStream { indices, distinct }
    }

    /// The request sequence as corpus indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of distinct base items available.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// Fraction of requests that repeat an earlier request.
    pub fn observed_duplicate_ratio(&self) -> f64 {
        if self.indices.is_empty() {
            return 0.0;
        }
        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0usize;
        for &idx in &self.indices {
            if !seen.insert(idx) {
                repeats += 1;
            }
        }
        repeats as f64 / self.indices.len() as f64
    }
}

/// Configuration for an [`overlap_corpus`]: documents assembled from
/// segments, where a fraction of segments comes from a shared pool.
///
/// No two documents are byte-identical (each carries at least one unique
/// segment when `overlap < 1`), so *whole-call* dedup over the corpus
/// scores zero hits — but shared segments give the content-defined
/// chunker long identical regions, so *chunk-level* dedup scores roughly
/// the `overlap` fraction. This is the workload shape that separates the
/// streaming path from the whole-call path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverlapConfig {
    /// Number of documents.
    pub documents: usize,
    /// Segments concatenated into each document.
    pub segments_per_document: usize,
    /// Bytes per segment (make this a few chunker `max` lengths so shared
    /// runs survive boundary effects at segment joins).
    pub segment_bytes: usize,
    /// Size of the shared segment pool.
    pub shared_pool: usize,
    /// Fraction of each document's segments drawn from the shared pool
    /// (the rest are unique to the document), in `[0, 1]`.
    pub overlap: f64,
}

impl Default for OverlapConfig {
    fn default() -> Self {
        OverlapConfig {
            documents: 16,
            segments_per_document: 8,
            segment_bytes: 4096,
            shared_pool: 12,
            overlap: 0.5,
        }
    }
}

/// Builds a deterministic corpus of partially overlapping documents.
///
/// Shared segments are drawn from a seeded pool with a Zipf-like bias
/// (popular segments recur across many documents); unique segments are
/// fresh compressible text. The same seed always yields byte-identical
/// documents.
///
/// # Panics
///
/// Panics if any population is zero or `overlap` is outside `[0, 1]`.
pub fn overlap_corpus(config: OverlapConfig, seed: u64) -> Vec<Vec<u8>> {
    assert!(config.documents > 0, "need at least one document");
    assert!(config.segments_per_document > 0, "need at least one segment");
    assert!(config.segment_bytes > 0, "segments must be non-empty");
    assert!(config.shared_pool > 0, "shared pool must be non-empty");
    assert!((0.0..=1.0).contains(&config.overlap), "overlap must be in [0, 1]");

    let pool: Vec<Vec<u8>> = (0..config.shared_pool)
        .map(|i| {
            synthetic_text(config.segment_bytes, seed ^ (0x9009 + i as u64)).into_bytes()
        })
        .collect();
    let mut rng = SystemRng::seeded(seed ^ 0x0EE2_14B5);
    let mut unique_counter = 0u64;
    (0..config.documents)
        .map(|_| {
            let mut document =
                Vec::with_capacity(config.segments_per_document * config.segment_bytes);
            for _ in 0..config.segments_per_document {
                if rng.gen_bool(config.overlap) {
                    document.extend_from_slice(&pool[zipf_index(&mut rng, pool.len())]);
                } else {
                    unique_counter += 1;
                    let segment = synthetic_text(
                        config.segment_bytes,
                        seed ^ (0xF00D_0000 + unique_counter),
                    );
                    document.extend_from_slice(segment.as_bytes());
                }
            }
            document
        })
        .collect()
}

/// Samples an index in `[0, n)` with a Zipf-like bias toward low indices.
fn zipf_index(rng: &mut SystemRng, n: usize) -> usize {
    debug_assert!(n > 0);
    // Inverse-power sampling: u^2 biases toward 0 with a heavy-ish tail.
    let u: f64 = rng.gen_f64();
    ((u * u) * n as f64) as usize % n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = RequestStream::new(20, 200, 0.5, 7);
        let b = RequestStream::new(20, 200, 0.5, 7);
        assert_eq!(a.indices(), b.indices());
        let c = RequestStream::new(20, 200, 0.5, 8);
        assert_ne!(a.indices(), c.indices());
    }

    #[test]
    fn zero_ratio_yields_all_fresh_until_exhausted() {
        let stream = RequestStream::new(50, 50, 0.0, 1);
        let mut sorted = stream.indices().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_eq!(stream.observed_duplicate_ratio(), 0.0);
    }

    #[test]
    fn high_ratio_produces_many_repeats() {
        let stream = RequestStream::new(100, 1000, 0.9, 2);
        assert!(stream.observed_duplicate_ratio() > 0.8);
    }

    #[test]
    fn exhausted_corpus_forces_repeats() {
        let stream = RequestStream::new(3, 100, 0.0, 3);
        assert!(stream.observed_duplicate_ratio() > 0.9);
        assert!(stream.indices().iter().all(|&i| i < 3));
    }

    #[test]
    fn ratio_roughly_matches_request() {
        let stream = RequestStream::new(10_000, 5_000, 0.5, 4);
        let observed = stream.observed_duplicate_ratio();
        assert!((observed - 0.5).abs() < 0.1, "observed {observed}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_distinct_panics() {
        let _ = RequestStream::new(0, 10, 0.5, 1);
    }

    #[test]
    fn overlap_corpus_is_deterministic_and_sized() {
        let config = OverlapConfig {
            documents: 6,
            segments_per_document: 4,
            segment_bytes: 512,
            shared_pool: 5,
            overlap: 0.5,
        };
        let a = overlap_corpus(config, 11);
        let b = overlap_corpus(config, 11);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        for document in &a {
            assert_eq!(document.len(), 4 * 512);
        }
        let c = overlap_corpus(config, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn overlap_documents_share_segments_but_differ() {
        let config = OverlapConfig {
            documents: 8,
            segments_per_document: 6,
            segment_bytes: 1024,
            shared_pool: 4,
            overlap: 0.7,
        };
        let corpus = overlap_corpus(config, 3);
        // Documents are pairwise distinct (whole-call dedup scores zero)...
        for i in 0..corpus.len() {
            for j in (i + 1)..corpus.len() {
                assert_ne!(corpus[i], corpus[j], "documents {i} and {j} identical");
            }
        }
        // ...yet segment-aligned slices recur across documents.
        let mut segments = std::collections::HashSet::new();
        let mut total = 0usize;
        for document in &corpus {
            for segment in document.chunks(config.segment_bytes) {
                segments.insert(segment.to_vec());
                total += 1;
            }
        }
        assert!(
            segments.len() < total,
            "expected shared segments: {} distinct of {total}",
            segments.len()
        );
    }

    #[test]
    fn zero_overlap_yields_fully_distinct_segments() {
        let config = OverlapConfig {
            documents: 4,
            segments_per_document: 3,
            segment_bytes: 256,
            shared_pool: 2,
            overlap: 0.0,
        };
        let corpus = overlap_corpus(config, 9);
        let mut segments = std::collections::HashSet::new();
        for document in &corpus {
            for segment in document.chunks(config.segment_bytes) {
                assert!(segments.insert(segment.to_vec()), "unexpected shared segment");
            }
        }
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn bad_ratio_panics() {
        let _ = RequestStream::new(1, 10, 1.5, 1);
    }
}
