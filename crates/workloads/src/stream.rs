//! Request streams with controllable redundancy.

use speed_crypto::SystemRng;

/// Generates a sequence of indices into a base corpus such that a target
/// fraction of requests are repeats of earlier ones — the workload shape
/// that makes computation deduplication pay off.
///
/// # Example
///
/// ```
/// use speed_workloads::RequestStream;
///
/// let stream = RequestStream::new(10, 100, 0.8, 42);
/// let indices = stream.indices();
/// assert_eq!(indices.len(), 100);
/// assert!(indices.iter().all(|&i| i < 10));
/// ```
#[derive(Clone, Debug)]
pub struct RequestStream {
    indices: Vec<usize>,
    distinct: usize,
}

impl RequestStream {
    /// Builds a stream of `total` requests over `distinct` base items where
    /// roughly `duplicate_ratio` of requests (after each item's first
    /// appearance) repeat an already-seen item.
    ///
    /// # Panics
    ///
    /// Panics if `distinct` is zero or `duplicate_ratio` is outside
    /// `[0, 1]`.
    pub fn new(distinct: usize, total: usize, duplicate_ratio: f64, seed: u64) -> Self {
        assert!(distinct > 0, "need at least one distinct item");
        assert!(
            (0.0..=1.0).contains(&duplicate_ratio),
            "duplicate ratio must be in [0, 1]"
        );
        let mut rng = SystemRng::seeded(seed);
        let mut indices = Vec::with_capacity(total);
        let mut seen: Vec<usize> = Vec::new();
        let mut next_fresh = 0usize;
        for _ in 0..total {
            let want_repeat = !seen.is_empty() && rng.gen_bool(duplicate_ratio);
            if want_repeat || next_fresh >= distinct {
                // Zipf-ish popularity: prefer earlier (popular) items.
                let pick = zipf_index(&mut rng, seen.len());
                indices.push(seen[pick]);
            } else {
                indices.push(next_fresh);
                seen.push(next_fresh);
                next_fresh += 1;
            }
        }
        RequestStream { indices, distinct }
    }

    /// The request sequence as corpus indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of distinct base items available.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// Fraction of requests that repeat an earlier request.
    pub fn observed_duplicate_ratio(&self) -> f64 {
        if self.indices.is_empty() {
            return 0.0;
        }
        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0usize;
        for &idx in &self.indices {
            if !seen.insert(idx) {
                repeats += 1;
            }
        }
        repeats as f64 / self.indices.len() as f64
    }
}

/// Samples an index in `[0, n)` with a Zipf-like bias toward low indices.
fn zipf_index(rng: &mut SystemRng, n: usize) -> usize {
    debug_assert!(n > 0);
    // Inverse-power sampling: u^2 biases toward 0 with a heavy-ish tail.
    let u: f64 = rng.gen_f64();
    ((u * u) * n as f64) as usize % n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = RequestStream::new(20, 200, 0.5, 7);
        let b = RequestStream::new(20, 200, 0.5, 7);
        assert_eq!(a.indices(), b.indices());
        let c = RequestStream::new(20, 200, 0.5, 8);
        assert_ne!(a.indices(), c.indices());
    }

    #[test]
    fn zero_ratio_yields_all_fresh_until_exhausted() {
        let stream = RequestStream::new(50, 50, 0.0, 1);
        let mut sorted = stream.indices().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_eq!(stream.observed_duplicate_ratio(), 0.0);
    }

    #[test]
    fn high_ratio_produces_many_repeats() {
        let stream = RequestStream::new(100, 1000, 0.9, 2);
        assert!(stream.observed_duplicate_ratio() > 0.8);
    }

    #[test]
    fn exhausted_corpus_forces_repeats() {
        let stream = RequestStream::new(3, 100, 0.0, 3);
        assert!(stream.observed_duplicate_ratio() > 0.9);
        assert!(stream.indices().iter().all(|&i| i < 3));
    }

    #[test]
    fn ratio_roughly_matches_request() {
        let stream = RequestStream::new(10_000, 5_000, 0.5, 4);
        let observed = stream.observed_duplicate_ratio();
        assert!((observed - 0.5).abs() < 0.1, "observed {observed}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_distinct_panics() {
        let _ = RequestStream::new(0, 10, 0.5, 1);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn bad_ratio_panics() {
        let _ = RequestStream::new(1, 10, 1.5, 1);
    }
}
