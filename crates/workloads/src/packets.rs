//! Synthetic network packets for the pattern-matching workload (standing
//! in for the m57-Patents and 4SICS captures).

use speed_crypto::SystemRng;

use crate::text::synthetic_text;

/// A synthetic packet: a fake header plus payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Source/destination pseudo-addresses and ports, for realism in size.
    pub header: [u8; 20],
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Packet {
    /// Full wire bytes (header + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.payload.len());
        out.extend_from_slice(&self.header);
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Configuration for trace generation.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Number of packets.
    pub count: usize,
    /// Payload size range in bytes.
    pub payload_size: (usize, usize),
    /// Probability a packet carries a planted signature from
    /// `signatures`.
    pub malicious_ratio: f64,
    /// Signature strings to plant (typically drawn from the rule set).
    pub signatures: Vec<Vec<u8>>,
    /// Fraction of payloads that are binary noise rather than text.
    pub binary_ratio: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            count: 1000,
            payload_size: (200, 1400),
            malicious_ratio: 0.02,
            signatures: vec![b"EICAR-STANDARD-ANTIVIRUS-TEST".to_vec()],
            binary_ratio: 0.3,
        }
    }
}

/// Generates a deterministic packet trace.
pub fn packet_trace(config: &TraceConfig, seed: u64) -> Vec<Packet> {
    let mut rng = SystemRng::seeded(seed);
    let mut packets = Vec::with_capacity(config.count);
    for i in 0..config.count {
        let mut header = [0u8; 20];
        rng.fill(&mut header);
        let size =
            rng.range_usize_inclusive(config.payload_size.0, config.payload_size.1);
        let mut payload = if rng.gen_bool(config.binary_ratio) {
            let mut bytes = vec![0u8; size];
            rng.fill(bytes.as_mut_slice());
            bytes
        } else {
            synthetic_text(size, seed ^ (i as u64) << 1).into_bytes()
        };
        if !config.signatures.is_empty() && rng.gen_bool(config.malicious_ratio) {
            let signature =
                &config.signatures[rng.range_usize(0, config.signatures.len())];
            if payload.len() > signature.len() {
                let at = rng.range_usize(0, payload.len() - signature.len());
                payload[at..at + signature.len()].copy_from_slice(signature);
            } else {
                payload = signature.clone();
            }
        }
        packets.push(Packet { header, payload });
    }
    packets
}

const TRACE_MAGIC: &[u8; 4] = b"SPTR";

/// Serializes a packet trace to a writer (a minimal capture format, so
/// experiment inputs can be recorded once and replayed across runs or
/// machines).
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn save_trace<W: std::io::Write>(
    mut writer: W,
    packets: &[Packet],
) -> std::io::Result<()> {
    writer.write_all(TRACE_MAGIC)?;
    writer.write_all(&(packets.len() as u32).to_le_bytes())?;
    for packet in packets {
        writer.write_all(&packet.header)?;
        writer.write_all(&(packet.payload.len() as u32).to_le_bytes())?;
        writer.write_all(&packet.payload)?;
    }
    writer.flush()
}

/// Loads a packet trace saved by [`save_trace`].
///
/// # Errors
///
/// Returns [`std::io::ErrorKind::InvalidData`] on bad magic or structure,
/// and propagates underlying I/O errors (including `UnexpectedEof` on
/// truncation).
pub fn load_trace<R: std::io::Read>(mut reader: R) -> std::io::Result<Vec<Packet>> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != TRACE_MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not a speed packet trace",
        ));
    }
    let mut count_bytes = [0u8; 4];
    reader.read_exact(&mut count_bytes)?;
    let count = u32::from_le_bytes(count_bytes) as usize;
    let mut packets = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let mut header = [0u8; 20];
        reader.read_exact(&mut header)?;
        let mut len_bytes = [0u8; 4];
        reader.read_exact(&mut len_bytes)?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > 64 * 1024 * 1024 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "packet payload length implausible",
            ));
        }
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload)?;
        packets.push(Packet { header, payload });
    }
    Ok(packets)
}

/// Concatenates a batch of packets into one scan unit (the dedup-friendly
/// granularity: a whole capture segment as the input of one marked
/// computation).
pub fn batch_payload(packets: &[Packet]) -> Vec<u8> {
    let total: usize = packets.iter().map(|p| 4 + p.payload.len()).sum();
    let mut out = Vec::with_capacity(total);
    for packet in packets {
        out.extend_from_slice(&(packet.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&packet.payload);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_traces() {
        let config = TraceConfig::default();
        let a = packet_trace(&config, 7);
        let b = packet_trace(&config, 7);
        assert_eq!(a, b);
        assert_ne!(packet_trace(&config, 8), a);
    }

    #[test]
    fn respects_count_and_sizes() {
        let config =
            TraceConfig { count: 50, payload_size: (100, 200), ..TraceConfig::default() };
        let trace = packet_trace(&config, 1);
        assert_eq!(trace.len(), 50);
        for packet in &trace {
            assert!((100..=200).contains(&packet.payload.len()));
        }
    }

    #[test]
    fn malicious_ratio_plants_signatures() {
        let signature = b"MALWARE-XYZ".to_vec();
        let config = TraceConfig {
            count: 500,
            malicious_ratio: 0.5,
            signatures: vec![signature.clone()],
            ..TraceConfig::default()
        };
        let trace = packet_trace(&config, 2);
        let infected = trace
            .iter()
            .filter(|p| p.payload.windows(signature.len()).any(|w| w == &signature[..]))
            .count();
        assert!(infected > 150, "only {infected}/500 infected");
        assert!(infected < 350, "{infected}/500 infected");
    }

    #[test]
    fn zero_malicious_ratio_is_clean() {
        let signature = b"NEVER-APPEARS-1234567".to_vec();
        let config = TraceConfig {
            count: 200,
            malicious_ratio: 0.0,
            signatures: vec![signature.clone()],
            binary_ratio: 0.0,
            ..TraceConfig::default()
        };
        let trace = packet_trace(&config, 3);
        assert!(trace.iter().all(|p| {
            !p.payload.windows(signature.len()).any(|w| w == &signature[..])
        }));
    }

    #[test]
    fn batch_payload_framing() {
        let packets =
            packet_trace(&TraceConfig { count: 3, ..TraceConfig::default() }, 4);
        let batch = batch_payload(&packets);
        let expected: usize = packets.iter().map(|p| 4 + p.payload.len()).sum();
        assert_eq!(batch.len(), expected);
        // First length prefix parses back.
        let len = u32::from_le_bytes(batch[..4].try_into().unwrap()) as usize;
        assert_eq!(len, packets[0].payload.len());
    }

    #[test]
    fn trace_file_roundtrip() {
        let packets =
            packet_trace(&TraceConfig { count: 20, ..TraceConfig::default() }, 9);
        let mut buffer = Vec::new();
        save_trace(&mut buffer, &packets).unwrap();
        let loaded = load_trace(std::io::Cursor::new(&buffer)).unwrap();
        assert_eq!(loaded, packets);
    }

    #[test]
    fn trace_load_rejects_bad_magic() {
        let err = load_trace(std::io::Cursor::new(b"XXXX\x00\x00\x00\x00")).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn trace_load_rejects_truncation() {
        let packets =
            packet_trace(&TraceConfig { count: 3, ..TraceConfig::default() }, 1);
        let mut buffer = Vec::new();
        save_trace(&mut buffer, &packets).unwrap();
        for cut in [4usize, 8, 20, buffer.len() - 1] {
            assert!(load_trace(std::io::Cursor::new(&buffer[..cut])).is_err());
        }
    }

    #[test]
    fn to_bytes_includes_header() {
        let packets =
            packet_trace(&TraceConfig { count: 1, ..TraceConfig::default() }, 5);
        let bytes = packets[0].to_bytes();
        assert_eq!(bytes.len(), 20 + packets[0].payload.len());
    }
}
