//! Synthetic web pages for the bag-of-words workload (standing in for
//! CommonCrawl WET records).

use speed_crypto::SystemRng;

const VOCAB_SIZE: usize = 2000;

fn vocab_word(index: usize) -> String {
    // Pronounceable deterministic vocabulary: CV syllables from the index.
    const CONSONANTS: &[u8] = b"bcdfghjklmnprstvwz";
    const VOWELS: &[u8] = b"aeiou";
    let mut word = String::new();
    let mut n = index + 7;
    for _ in 0..3 {
        word.push(char::from(CONSONANTS[n % CONSONANTS.len()]));
        n /= CONSONANTS.len();
        word.push(char::from(VOWELS[n % VOWELS.len()]));
        n /= VOWELS.len();
        if n == 0 {
            break;
        }
    }
    word
}

/// Samples a vocabulary index with Zipf-like popularity (word 0 most
/// frequent), matching natural-language frequency curves.
fn zipf_word(rng: &mut SystemRng) -> usize {
    let u: f64 = rng.gen_f64();
    // Inverse CDF of a power-law-ish distribution.
    ((u.powf(3.0)) * VOCAB_SIZE as f64) as usize % VOCAB_SIZE
}

/// Generates one HTML-ish page with roughly `word_count` body words.
pub fn synthetic_page(word_count: usize, seed: u64) -> String {
    let mut rng = SystemRng::seeded(seed);
    let title_words: Vec<String> =
        (0..rng.range_usize(3, 8)).map(|_| vocab_word(zipf_word(&mut rng))).collect();
    let mut page = String::with_capacity(word_count * 8 + 256);
    page.push_str("<!DOCTYPE html><html><head><title>");
    page.push_str(&title_words.join(" "));
    page.push_str("</title></head><body>");
    let mut remaining = word_count;
    while remaining > 0 {
        let paragraph_len = rng.range_usize(20, 80).min(remaining);
        page.push_str("<p>");
        for i in 0..paragraph_len {
            if i > 0 {
                page.push(' ');
            }
            page.push_str(&vocab_word(zipf_word(&mut rng)));
        }
        page.push_str("</p>");
        remaining -= paragraph_len;
        if rng.gen_bool(0.1) {
            page.push_str("<div class=\"ad\"><span>sponsored</span></div>");
        }
    }
    page.push_str("</body></html>");
    page
}

/// A corpus of `count` distinct pages.
pub fn page_corpus(count: usize, words_per_page: usize, seed: u64) -> Vec<String> {
    (0..count)
        .map(|i| synthetic_page(words_per_page, seed.wrapping_add(i as u64 * 0xC0FFEE)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_mapreduce::{bag_of_words, BowConfig};

    #[test]
    fn deterministic() {
        assert_eq!(synthetic_page(100, 1), synthetic_page(100, 1));
        assert_ne!(synthetic_page(100, 1), synthetic_page(100, 2));
    }

    #[test]
    fn looks_like_html() {
        let page = synthetic_page(50, 3);
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.ends_with("</body></html>"));
        assert!(page.contains("<p>"));
    }

    #[test]
    fn bow_over_pages_has_zipf_head() {
        let pages = page_corpus(20, 500, 4);
        let counts = bag_of_words(&pages, &BowConfig::default());
        assert!(counts.len() > 50, "vocab too small: {}", counts.len());
        let total: u64 = counts.iter().map(|(_, c)| c).sum();
        let max = counts.iter().map(|(_, c)| *c).max().unwrap();
        // The most frequent word should dominate (Zipf head).
        assert!(max as f64 > total as f64 / counts.len() as f64 * 5.0);
    }

    #[test]
    fn word_count_is_approximate() {
        let page = synthetic_page(300, 5);
        let body =
            page.split("<body>").nth(1).unwrap().replace("</p>", " ").replace("<p>", " ");
        let words =
            body.split(|c: char| !c.is_alphanumeric()).filter(|w| !w.is_empty()).count();
        // Body words plus a few tag/ad words.
        assert!((300..400).contains(&words), "{words}");
    }

    #[test]
    fn vocab_words_are_distinct_enough() {
        let mut set = std::collections::HashSet::new();
        for i in 0..VOCAB_SIZE {
            set.insert(vocab_word(i));
        }
        assert!(set.len() > VOCAB_SIZE / 2, "{} unique", set.len());
    }
}
