//! Procedural grayscale images for the SIFT workload.

use speed_crypto::SystemRng;
use speed_sift::GrayImage;

/// Generates a natural-ish synthetic image: a smooth background gradient,
/// several Gaussian blobs of varying size/polarity (corner-rich content for
/// SIFT), and mild pixel noise.
pub fn synthetic_image(size: usize, seed: u64) -> GrayImage {
    assert!(size >= 16, "image too small for sift");
    let mut rng = SystemRng::seeded(seed);

    let bg_angle: f32 = rng.range_f32(0.0, std::f32::consts::TAU);
    let (bg_dx, bg_dy) = (bg_angle.cos(), bg_angle.sin());
    let blob_count = rng.range_usize(6, 16);
    let blobs: Vec<(f32, f32, f32, f32)> = (0..blob_count)
        .map(|_| {
            (
                rng.range_f32(0.1, 0.9) * size as f32,
                rng.range_f32(0.1, 0.9) * size as f32,
                rng.range_f32(2.0, size as f32 / 6.0),
                rng.range_f32(-0.6, 0.9),
            )
        })
        .collect();
    let noise: Vec<f32> = (0..size * size).map(|_| rng.range_f32(-0.02, 0.02)).collect();

    GrayImage::from_fn(size, size, |x, y| {
        let fx = x as f32 / size as f32;
        let fy = y as f32 / size as f32;
        let mut value = 0.4 + 0.2 * (fx * bg_dx + fy * bg_dy);
        for &(cx, cy, radius, amplitude) in &blobs {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            value += amplitude * (-(dx * dx + dy * dy) / (radius * radius)).exp();
        }
        (value + noise[y * size + x]).clamp(0.0, 1.0)
    })
}

/// Generates a corpus of `count` distinct images at `size`×`size`.
pub fn image_corpus(count: usize, size: usize, seed: u64) -> Vec<GrayImage> {
    (0..count)
        .map(|i| synthetic_image(size, seed.wrapping_add(i as u64 * 0x9E37)))
        .collect()
}

/// Serializes an image to luma bytes prefixed with dimensions (the wire
/// input of the dedup-wrapped `sift()` call).
pub fn image_to_bytes(image: &GrayImage) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + image.width() * image.height());
    out.extend_from_slice(&(image.width() as u32).to_le_bytes());
    out.extend_from_slice(&(image.height() as u32).to_le_bytes());
    out.extend_from_slice(&image.to_luma8());
    out
}

/// Parses bytes produced by [`image_to_bytes`].
pub fn image_from_bytes(bytes: &[u8]) -> Option<GrayImage> {
    if bytes.len() < 8 {
        return None;
    }
    let width = u32::from_le_bytes(bytes[..4].try_into().ok()?) as usize;
    let height = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
    if width == 0 || height == 0 || bytes.len() != 8 + width * height {
        return None;
    }
    Some(GrayImage::from_luma8(width, height, &bytes[8..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = synthetic_image(64, 5);
        let b = synthetic_image(64, 5);
        assert_eq!(a.pixels(), b.pixels());
        let c = synthetic_image(64, 6);
        assert_ne!(a.pixels(), c.pixels());
    }

    #[test]
    fn images_are_sift_friendly() {
        let image = synthetic_image(96, 1);
        let features = speed_sift::sift(&image, &speed_sift::SiftParams::default());
        assert!(!features.is_empty(), "synthetic image produced no features");
    }

    #[test]
    fn corpus_items_are_distinct() {
        let corpus = image_corpus(5, 64, 9);
        for i in 0..corpus.len() {
            for j in i + 1..corpus.len() {
                assert_ne!(corpus[i].pixels(), corpus[j].pixels(), "{i} vs {j}");
            }
        }
    }

    #[test]
    fn byte_roundtrip() {
        let image = synthetic_image(32, 3);
        let bytes = image_to_bytes(&image);
        let parsed = image_from_bytes(&bytes).unwrap();
        assert_eq!(parsed.to_luma8(), image.to_luma8());
    }

    #[test]
    fn byte_parse_rejects_malformed() {
        assert!(image_from_bytes(&[]).is_none());
        assert!(image_from_bytes(&[0u8; 8]).is_none());
        let mut bytes = image_to_bytes(&synthetic_image(16, 0));
        bytes.pop();
        assert!(image_from_bytes(&bytes).is_none());
    }

    #[test]
    fn pixels_in_unit_range() {
        let image = synthetic_image(48, 11);
        assert!(image.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
