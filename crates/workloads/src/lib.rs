//! Deterministic synthetic workload generators for the SPEED reproduction.
//!
//! The paper evaluates on external datasets we cannot redistribute (images
//! "from the Internet", Boost text files, m57/4SICS packet captures, Snort
//! rules, CommonCrawl WET pages — §V-A). This crate generates seeded
//! synthetic equivalents that match the properties the experiments
//! actually exercise:
//!
//! - [`images`] — procedural gray images (blobs, gradients, noise) sized
//!   64–512 px for SIFT.
//! - [`text`] — word-bank prose with controllable redundancy for
//!   compression (compressible like real text, unlike pure noise).
//! - [`packets`] — synthetic packets whose payloads mix clean text,
//!   binary, and planted attack signatures.
//! - [`rules`] — Snort-like literal + regex rule sets (thousands of
//!   rules, as in the paper's 3,700-rule setup).
//! - [`pages`] — HTML-ish web pages with Zipf-distributed vocabulary for
//!   BoW.
//! - [`RequestStream`] — turns a base corpus into a request sequence with
//!   a configurable duplicate ratio, modelling "repeated input data (even
//!   from different requesters)".
//!
//! Everything is deterministic given a seed: the same seed always yields
//! byte-identical workloads, which the deduplication experiments require.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evolving;
pub mod images;
pub mod packets;
pub mod pages;
pub mod rules;
pub mod text;

mod stream;

pub use evolving::{EvolutionConfig, EvolvingCorpus};
pub use stream::{overlap_corpus, OverlapConfig, RequestStream};
