//! A threaded MapReduce framework with a bag-of-words job — the
//! reproduction's stand-in for the `mapreduce` C++ library whose
//! `Mapper(·)` the SPEED paper customizes into `bow_mapper(·)` (use case 4,
//! §V-A: BoW over 300,000 CommonCrawl web pages).
//!
//! The framework ([`run_job`]) is generic: a [`Job`] defines `map`,
//! optional `combine`, and `reduce`; execution fans map tasks across worker
//! threads (std scoped threads), shuffles by key hash, and reduces
//! partitions in parallel — the same structure as the paper's library.
//!
//! # Example
//!
//! ```
//! use speed_mapreduce::{bag_of_words, BowConfig};
//!
//! let pages = vec![
//!     "<html><body>the quick brown fox</body></html>".to_string(),
//!     "the lazy dog and the quick fox".to_string(),
//! ];
//! let counts = bag_of_words(&pages, &BowConfig::default());
//! let the = counts.iter().find(|(w, _)| w == "the").unwrap();
//! assert_eq!(the.1, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bow;
mod framework;
mod index;

pub use bow::{bag_of_words, counts_from_bytes, counts_to_bytes, tokenize, BowConfig};
pub use framework::{run_job, Job, JobConfig};
pub use index::{inverted_index, lookup, tf_idf, InvertedIndex, Posting};
