//! The bag-of-words job (`bow_mapper` in the paper's Fig. 4): tokenize web
//! pages, strip markup, count word occurrences.

use crate::framework::{run_job, Job, JobConfig};

/// Bag-of-words configuration.
#[derive(Clone, Debug)]
pub struct BowConfig {
    /// Worker threads.
    pub workers: usize,
    /// Drop words shorter than this many bytes.
    pub min_word_len: usize,
    /// Lowercase tokens before counting.
    pub lowercase: bool,
}

impl Default for BowConfig {
    fn default() -> Self {
        BowConfig { workers: 4, min_word_len: 1, lowercase: true }
    }
}

/// Tokenizes one document: strips `<...>` markup spans, splits on
/// non-alphanumeric bytes, optionally lowercases.
pub fn tokenize(document: &str, config: &BowConfig) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut in_tag = false;
    for ch in document.chars() {
        match ch {
            '<' => {
                in_tag = true;
                flush(&mut current, &mut tokens, config);
            }
            '>' if in_tag => in_tag = false,
            _ if in_tag => {}
            c if c.is_alphanumeric() => {
                if config.lowercase {
                    current.extend(c.to_lowercase());
                } else {
                    current.push(c);
                }
            }
            _ => flush(&mut current, &mut tokens, config),
        }
    }
    flush(&mut current, &mut tokens, config);
    tokens
}

fn flush(current: &mut String, tokens: &mut Vec<String>, config: &BowConfig) {
    if current.len() >= config.min_word_len && !current.is_empty() {
        tokens.push(std::mem::take(current));
    } else {
        current.clear();
    }
}

struct BowJob<'a> {
    config: &'a BowConfig,
}

impl Job for BowJob<'_> {
    type Input = String;
    type Key = String;
    type Value = u64;
    type Output = u64;

    fn map(&self, input: &String, emit: &mut dyn FnMut(String, u64)) {
        for token in tokenize(input, self.config) {
            emit(token, 1);
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        a + b
    }

    fn reduce(&self, _key: &String, values: Vec<u64>) -> u64 {
        values.into_iter().sum()
    }
}

/// Computes the bag-of-words of `documents`: `(word, count)` sorted by
/// word.
pub fn bag_of_words(documents: &[String], config: &BowConfig) -> Vec<(String, u64)> {
    run_job(
        &BowJob { config },
        documents,
        &JobConfig { map_workers: config.workers, reduce_partitions: config.workers },
    )
}

/// Serializes a BoW result compactly (for dedup storage).
pub fn counts_to_bytes(counts: &[(String, u64)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(counts.len() as u32).to_le_bytes());
    for (word, count) in counts {
        out.extend_from_slice(&(word.len() as u32).to_le_bytes());
        out.extend_from_slice(word.as_bytes());
        out.extend_from_slice(&count.to_le_bytes());
    }
    out
}

/// Parses bytes produced by [`counts_to_bytes`]. Returns `None` on
/// malformed input.
pub fn counts_from_bytes(bytes: &[u8]) -> Option<Vec<(String, u64)>> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Option<&[u8]> {
        let out = bytes.get(*pos..*pos + n)?;
        *pos += n;
        Some(out)
    };
    let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
    let mut counts = Vec::with_capacity(count.min(65536));
    for _ in 0..count {
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().ok()?) as usize;
        let word = String::from_utf8(take(&mut pos, len)?.to_vec()).ok()?;
        let value = u64::from_le_bytes(take(&mut pos, 8)?.try_into().ok()?);
        counts.push((word, value));
    }
    (pos == bytes.len()).then_some(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(texts: &[&str]) -> Vec<String> {
        texts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn counts_words_across_documents() {
        let counts = bag_of_words(
            &docs(&["apple banana apple", "banana cherry"]),
            &BowConfig::default(),
        );
        assert_eq!(
            counts,
            vec![
                ("apple".to_string(), 2),
                ("banana".to_string(), 2),
                ("cherry".to_string(), 1)
            ]
        );
    }

    #[test]
    fn html_markup_is_stripped() {
        let counts = bag_of_words(
            &docs(&["<html><body class=\"x\">hello world</body></html>"]),
            &BowConfig::default(),
        );
        let words: Vec<&str> = counts.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(words, vec!["hello", "world"]);
    }

    #[test]
    fn lowercase_folding() {
        let counts = bag_of_words(&docs(&["Rust RUST rust"]), &BowConfig::default());
        assert_eq!(counts, vec![("rust".to_string(), 3)]);
        let sensitive = bag_of_words(
            &docs(&["Rust rust"]),
            &BowConfig { lowercase: false, ..BowConfig::default() },
        );
        assert_eq!(sensitive.len(), 2);
    }

    #[test]
    fn min_word_length_filters() {
        let counts = bag_of_words(
            &docs(&["a an the elephant"]),
            &BowConfig { min_word_len: 3, ..BowConfig::default() },
        );
        let words: Vec<&str> = counts.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(words, vec!["elephant", "the"]);
    }

    #[test]
    fn punctuation_splits_tokens() {
        let tokens = tokenize("hello,world!foo-bar", &BowConfig::default());
        assert_eq!(tokens, vec!["hello", "world", "foo", "bar"]);
    }

    #[test]
    fn unicode_words_survive() {
        let tokens = tokenize("naïve café ΣΟΦΙΑ", &BowConfig::default());
        assert_eq!(tokens, vec!["naïve", "café", "σοφια"]);
    }

    #[test]
    fn empty_documents() {
        assert!(bag_of_words(&[], &BowConfig::default()).is_empty());
        assert!(bag_of_words(&docs(&["", "<x>"]), &BowConfig::default()).is_empty());
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let documents: Vec<String> = (0..50)
            .map(|i| format!("word{} shared common word{}", i % 5, i % 11))
            .collect();
        let reference =
            bag_of_words(&documents, &BowConfig { workers: 1, ..BowConfig::default() });
        for workers in [2, 4, 8] {
            let result =
                bag_of_words(&documents, &BowConfig { workers, ..BowConfig::default() });
            assert_eq!(result, reference);
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let counts = vec![
            ("alpha".to_string(), 3u64),
            ("beta".to_string(), 1),
            ("γάμμα".to_string(), 9999),
        ];
        let bytes = counts_to_bytes(&counts);
        assert_eq!(counts_from_bytes(&bytes).unwrap(), counts);
    }

    #[test]
    fn serialization_rejects_malformed() {
        assert!(counts_from_bytes(&[1, 2]).is_none());
        let mut bytes = counts_to_bytes(&[("x".to_string(), 1)]);
        bytes.push(0);
        assert!(counts_from_bytes(&bytes).is_none());
        bytes.pop();
        bytes.pop();
        assert!(counts_from_bytes(&bytes).is_none());
    }
}
