//! Inverted-index construction — the paper's §I "index building for fast
//! queries" workload, as a second MapReduce job over the same framework.

use crate::bow::{tokenize, BowConfig};
use crate::framework::{run_job, Job, JobConfig};

/// One posting: which document, how many occurrences.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Posting {
    /// Document index in the input batch.
    pub doc: u32,
    /// Occurrences of the term in that document.
    pub count: u32,
}

/// An inverted index: term → postings sorted by document.
pub type InvertedIndex = Vec<(String, Vec<Posting>)>;

struct IndexJob<'a> {
    config: &'a BowConfig,
}

impl Job for IndexJob<'_> {
    type Input = (u32, String);
    type Key = String;
    type Value = Posting;
    type Output = Vec<Posting>;

    fn map(&self, input: &(u32, String), emit: &mut dyn FnMut(String, Posting)) {
        let (doc, text) = input;
        let mut counts: std::collections::HashMap<String, u32> =
            std::collections::HashMap::new();
        for token in tokenize(text, self.config) {
            *counts.entry(token).or_insert(0) += 1;
        }
        for (term, count) in counts {
            emit(term, Posting { doc: *doc, count });
        }
    }

    fn reduce(&self, _key: &String, mut values: Vec<Posting>) -> Vec<Posting> {
        values.sort_by_key(|p| p.doc);
        values
    }
}

/// Builds an inverted index over `documents` (terms sorted, postings
/// sorted by document id).
pub fn inverted_index(documents: &[String], config: &BowConfig) -> InvertedIndex {
    let inputs: Vec<(u32, String)> =
        documents.iter().enumerate().map(|(i, d)| (i as u32, d.clone())).collect();
    run_job(
        &IndexJob { config },
        &inputs,
        &JobConfig { map_workers: config.workers, reduce_partitions: config.workers },
    )
}

/// Looks up the documents containing `term` in an index built by
/// [`inverted_index`]. Returns an empty slice for absent terms.
pub fn lookup<'a>(index: &'a InvertedIndex, term: &str) -> &'a [Posting] {
    match index.binary_search_by(|(t, _)| t.as_str().cmp(term)) {
        Ok(at) => &index[at].1,
        Err(_) => &[],
    }
}

/// TF-IDF score of `term` in document `doc` against an index over
/// `total_docs` documents. Zero when the term or document is absent.
pub fn tf_idf(index: &InvertedIndex, term: &str, doc: u32, total_docs: usize) -> f64 {
    let postings = lookup(index, term);
    if postings.is_empty() || total_docs == 0 {
        return 0.0;
    }
    let tf = postings.iter().find(|p| p.doc == doc).map_or(0.0, |p| f64::from(p.count));
    if tf == 0.0 {
        return 0.0;
    }
    let idf = (total_docs as f64 / postings.len() as f64).ln().max(0.0);
    tf * idf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(texts: &[&str]) -> Vec<String> {
        texts.iter().map(|s| s.to_string()).collect()
    }

    fn config() -> BowConfig {
        BowConfig::default()
    }

    #[test]
    fn postings_track_documents_and_counts() {
        let index = inverted_index(
            &docs(&["apple banana apple", "banana", "cherry apple"]),
            &config(),
        );
        let apple = lookup(&index, "apple");
        assert_eq!(apple, &[Posting { doc: 0, count: 2 }, Posting { doc: 2, count: 1 }]);
        let banana = lookup(&index, "banana");
        assert_eq!(banana.len(), 2);
        assert!(lookup(&index, "durian").is_empty());
    }

    #[test]
    fn terms_are_sorted_for_binary_search() {
        let index = inverted_index(&docs(&["zebra apple mango"]), &config());
        let terms: Vec<&str> = index.iter().map(|(t, _)| t.as_str()).collect();
        let mut sorted = terms.clone();
        sorted.sort_unstable();
        assert_eq!(terms, sorted);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let documents: Vec<String> =
            (0..40).map(|i| format!("term{} shared word{}", i % 7, i % 3)).collect();
        let reference =
            inverted_index(&documents, &BowConfig { workers: 1, ..BowConfig::default() });
        for workers in [2, 4] {
            let result = inverted_index(
                &documents,
                &BowConfig { workers, ..BowConfig::default() },
            );
            assert_eq!(result, reference);
        }
    }

    #[test]
    fn tf_idf_prefers_rare_terms() {
        // "common" appears everywhere (idf = ln(1) = 0); "rare" once.
        let index = inverted_index(
            &docs(&["common rare", "common", "common", "common"]),
            &config(),
        );
        assert_eq!(tf_idf(&index, "common", 0, 4), 0.0);
        assert!(tf_idf(&index, "rare", 0, 4) > 1.0);
        assert_eq!(tf_idf(&index, "rare", 1, 4), 0.0);
        assert_eq!(tf_idf(&index, "missing", 0, 4), 0.0);
    }

    #[test]
    fn empty_corpus_empty_index() {
        assert!(inverted_index(&[], &config()).is_empty());
    }
}
