//! The generic map/shuffle/reduce execution engine.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use std::sync::Mutex;

/// A MapReduce job definition.
///
/// `map` emits key/value pairs per input; `combine` (optional) folds values
/// worker-locally before the shuffle; `reduce` folds all values of one key
/// into the output.
pub trait Job: Sync {
    /// One input record (a document, a file, a packet trace…).
    type Input: Sync;
    /// Intermediate key.
    type Key: Ord + Hash + Clone + Send;
    /// Intermediate value.
    type Value: Send;
    /// Final per-key output.
    type Output: Send;

    /// Emits intermediate pairs for one input.
    fn map(&self, input: &Self::Input, emit: &mut dyn FnMut(Self::Key, Self::Value));

    /// Whether this job defines a combiner. When `true`,
    /// [`combine`](Job::combine) must be implemented and must be
    /// associative and commutative.
    fn has_combiner(&self) -> bool {
        false
    }

    /// Folds two intermediate values worker-locally (the combiner). Only
    /// called when [`has_combiner`](Job::has_combiner) returns `true`.
    fn combine(&self, _a: Self::Value, b: Self::Value) -> Self::Value {
        b
    }

    /// Folds all values of `key` into the final output.
    fn reduce(&self, key: &Self::Key, values: Vec<Self::Value>) -> Self::Output;
}

/// Execution configuration.
#[derive(Clone, Copy, Debug)]
pub struct JobConfig {
    /// Worker threads for the map phase (≥1).
    pub map_workers: usize,
    /// Reduce partitions processed in parallel (≥1).
    pub reduce_partitions: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig { map_workers: 4, reduce_partitions: 4 }
    }
}

// Values are tagged with their input index so shuffle output is
// deterministic regardless of worker interleaving.
type Tagged<V> = (usize, V);
type PartitionTable<K, V> = HashMap<K, Vec<Tagged<V>>>;

fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() % partitions as u64) as usize
}

/// Runs `job` over `inputs`, returning `(key, output)` pairs sorted by key.
///
/// Deterministic: the output is independent of worker count and scheduling
/// (values are gathered in input order within each partition before
/// reducing when no combiner is used; with a combiner, the combine
/// operation is expected to be associative and commutative).
pub fn run_job<J: Job>(
    job: &J,
    inputs: &[J::Input],
    config: &JobConfig,
) -> Vec<(J::Key, J::Output)> {
    let map_workers = config.map_workers.max(1);
    let partitions = config.reduce_partitions.max(1);

    // Map phase: workers claim input chunks and build per-partition maps.
    let partition_tables: Vec<Mutex<PartitionTable<J::Key, J::Value>>> =
        (0..partitions).map(|_| Mutex::new(HashMap::new())).collect();

    let chunk_size = inputs.len().div_ceil(map_workers).max(1);
    std::thread::scope(|scope| {
        for (worker_idx, chunk) in inputs.chunks(chunk_size).enumerate() {
            let tables = &partition_tables;
            scope.spawn(move || {
                let base = worker_idx * chunk_size;
                // Worker-local accumulation to keep lock contention low.
                let mut local: Vec<PartitionTable<J::Key, J::Value>> =
                    (0..partitions).map(|_| HashMap::new()).collect();
                for (offset, input) in chunk.iter().enumerate() {
                    let input_idx = base + offset;
                    let combining = job.has_combiner();
                    job.map(input, &mut |key, value| {
                        let p = partition_of(&key, partitions);
                        let slot = local[p].entry(key).or_default();
                        match slot.pop() {
                            Some((_, last)) if combining => {
                                slot.push((input_idx, job.combine(last, value)));
                            }
                            Some(previous) => {
                                slot.push(previous);
                                slot.push((input_idx, value));
                            }
                            None => slot.push((input_idx, value)),
                        }
                    });
                }
                for (p, table) in local.into_iter().enumerate() {
                    let mut shared = tables[p].lock().expect("partition lock poisoned");
                    for (key, mut values) in table {
                        shared.entry(key).or_default().append(&mut values);
                    }
                }
            });
        }
    });

    // Reduce phase: partitions in parallel.
    type Reduced<K, O> = Mutex<Vec<(K, O)>>;
    let results: Vec<Reduced<J::Key, J::Output>> =
        (0..partitions).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        for (p, table) in partition_tables.iter().enumerate() {
            let results = &results;
            scope.spawn(move || {
                let table =
                    std::mem::take(&mut *table.lock().expect("partition lock poisoned"));
                let mut out = Vec::with_capacity(table.len());
                for (key, mut tagged) in table {
                    // Deterministic value order: by input index.
                    tagged.sort_by_key(|(idx, _)| *idx);
                    let values = tagged.into_iter().map(|(_, v)| v).collect();
                    let output = job.reduce(&key, values);
                    out.push((key, output));
                }
                *results[p].lock().expect("result lock poisoned") = out;
            });
        }
    });

    let mut merged: Vec<(J::Key, J::Output)> = results
        .into_iter()
        .flat_map(|m| m.into_inner().expect("result lock poisoned"))
        .collect();
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    struct WordCount;

    impl Job for WordCount {
        type Input = String;
        type Key = String;
        type Value = u64;
        type Output = u64;

        fn map(&self, input: &String, emit: &mut dyn FnMut(String, u64)) {
            for word in input.split_whitespace() {
                emit(word.to_string(), 1);
            }
        }

        fn has_combiner(&self) -> bool {
            true
        }

        fn combine(&self, a: u64, b: u64) -> u64 {
            a + b
        }

        fn reduce(&self, _key: &String, values: Vec<u64>) -> u64 {
            values.into_iter().sum()
        }
    }

    /// A job without a combiner, to exercise the value-gathering path.
    struct Concatenate;

    impl Job for Concatenate {
        type Input = (String, String);
        type Key = String;
        type Value = String;
        type Output = String;

        fn map(&self, input: &(String, String), emit: &mut dyn FnMut(String, String)) {
            emit(input.0.clone(), input.1.clone());
        }

        fn reduce(&self, _key: &String, values: Vec<String>) -> String {
            values.join(",")
        }
    }

    #[test]
    fn word_count_basics() {
        let inputs = vec!["a b a".to_string(), "b c".to_string(), "a".to_string()];
        let counts = run_job(&WordCount, &inputs, &JobConfig::default());
        assert_eq!(
            counts,
            vec![("a".to_string(), 3), ("b".to_string(), 2), ("c".to_string(), 1)]
        );
    }

    #[test]
    fn empty_inputs() {
        let counts = run_job(&WordCount, &[], &JobConfig::default());
        assert!(counts.is_empty());
    }

    #[test]
    fn output_independent_of_worker_count() {
        let inputs: Vec<String> =
            (0..100).map(|i| format!("w{} w{} shared", i % 7, i % 3)).collect();
        let reference = run_job(
            &WordCount,
            &inputs,
            &JobConfig { map_workers: 1, reduce_partitions: 1 },
        );
        for workers in [2, 3, 8] {
            for partitions in [1, 2, 5] {
                let result = run_job(
                    &WordCount,
                    &inputs,
                    &JobConfig { map_workers: workers, reduce_partitions: partitions },
                );
                assert_eq!(result, reference, "{workers} workers, {partitions} parts");
            }
        }
    }

    #[test]
    fn no_combiner_preserves_input_order() {
        let inputs = vec![
            ("k".to_string(), "first".to_string()),
            ("k".to_string(), "second".to_string()),
            ("other".to_string(), "x".to_string()),
            ("k".to_string(), "third".to_string()),
        ];
        for workers in [1, 2, 4] {
            let result = run_job(
                &Concatenate,
                &inputs,
                &JobConfig { map_workers: workers, reduce_partitions: 3 },
            );
            let k = result.iter().find(|(key, _)| key == "k").unwrap();
            assert_eq!(k.1, "first,second,third", "{workers} workers");
        }
    }

    #[test]
    fn more_workers_than_inputs() {
        let inputs = vec!["solo".to_string()];
        let counts = run_job(
            &WordCount,
            &inputs,
            &JobConfig { map_workers: 16, reduce_partitions: 16 },
        );
        assert_eq!(counts, vec![("solo".to_string(), 1)]);
    }
}
