//! DoG extrema detection with contrast and edge filtering.

use crate::pyramid::ScaleSpace;
use crate::SiftParams;

/// A detected scale-space keypoint, before orientation assignment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Keypoint {
    /// Octave index in the scale space.
    pub octave: usize,
    /// DoG level within the octave (1..=S).
    pub scale: usize,
    /// Column in octave-local coordinates.
    pub x: usize,
    /// Row in octave-local coordinates.
    pub y: usize,
    /// Sub-pixel offset of the refined extremum from `(x, y)`, in
    /// octave-local pixels (each component in `(-0.5, 0.5]` after
    /// convergence).
    pub offset: (f32, f32),
    /// DoG response at the (interpolated) extremum.
    pub response: f32,
    /// Characteristic sigma in input-image units.
    pub sigma: f32,
}

impl Keypoint {
    /// Refined column position in octave-local coordinates.
    pub fn refined_x(&self) -> f32 {
        self.x as f32 + self.offset.0
    }

    /// Refined row position in octave-local coordinates.
    pub fn refined_y(&self) -> f32 {
        self.y as f32 + self.offset.1
    }
}

/// Detects keypoints: local 3×3×3 extrema of the DoG pyramid that pass the
/// contrast threshold and the edge-response (principal curvature ratio)
/// test.
pub fn detect(space: &ScaleSpace, params: &SiftParams) -> Vec<Keypoint> {
    let mut keypoints = Vec::new();
    for (octave_idx, octave) in space.octaves.iter().enumerate() {
        // Extrema are sought in DoG levels 1..=S (each needs neighbours
        // above and below).
        for scale in 1..octave.dogs.len() - 1 {
            let below = &octave.dogs[scale - 1];
            let here = &octave.dogs[scale];
            let above = &octave.dogs[scale + 1];
            let width = here.width();
            let height = here.height();
            for y in 1..height - 1 {
                for x in 1..width - 1 {
                    let value = here.get(x, y);
                    if value.abs() < params.contrast_threshold {
                        continue;
                    }
                    if !is_extremum(value, below, here, above, x, y) {
                        continue;
                    }
                    if is_edge_like(here, x, y, params.edge_threshold) {
                        continue;
                    }
                    // Sub-pixel refinement (Lowe §4): fit a 3D quadratic to
                    // the DoG neighbourhood and solve for the offset.
                    let refined = refine_extremum(below, here, above, x, y);
                    let (offset, refined_response) = match refined {
                        Some(r) => r,
                        None => continue, // diverged: unstable extremum
                    };
                    // Re-check contrast at the interpolated position.
                    if refined_response.abs() < params.contrast_threshold {
                        continue;
                    }
                    keypoints.push(Keypoint {
                        octave: octave_idx,
                        scale,
                        x,
                        y,
                        offset,
                        response: refined_response,
                        sigma: octave.sigmas[scale] * (1 << octave_idx) as f32,
                    });
                }
            }
        }
    }
    keypoints
}

/// Fits a quadratic to the 3×3×3 DoG neighbourhood (spatial dimensions
/// only, one Newton step as in practical SIFT implementations) and returns
/// the sub-pixel offset plus the interpolated response. `None` when the
/// offset diverges past one pixel — the standard instability rejection.
fn refine_extremum(
    below: &crate::image::GrayImage,
    here: &crate::image::GrayImage,
    above: &crate::image::GrayImage,
    x: usize,
    y: usize,
) -> Option<((f32, f32), f32)> {
    let xi = x as isize;
    let yi = y as isize;
    let value = here.get(x, y);

    // First derivatives (central differences).
    let dx = (here.get_clamped(xi + 1, yi) - here.get_clamped(xi - 1, yi)) * 0.5;
    let dy = (here.get_clamped(xi, yi + 1) - here.get_clamped(xi, yi - 1)) * 0.5;

    // Spatial Hessian.
    let dxx = here.get_clamped(xi + 1, yi) + here.get_clamped(xi - 1, yi) - 2.0 * value;
    let dyy = here.get_clamped(xi, yi + 1) + here.get_clamped(xi, yi - 1) - 2.0 * value;
    let dxy = (here.get_clamped(xi + 1, yi + 1)
        - here.get_clamped(xi - 1, yi + 1)
        - here.get_clamped(xi + 1, yi - 1)
        + here.get_clamped(xi - 1, yi - 1))
        * 0.25;

    // Solve H · offset = -∇D for the 2×2 spatial system.
    let det = dxx * dyy - dxy * dxy;
    if det.abs() < 1e-12 {
        return None;
    }
    let off_x = (-dyy * dx + dxy * dy) / det;
    let off_y = (dxy * dx - dxx * dy) / det;
    if off_x.abs() > 1.0 || off_y.abs() > 1.0 {
        return None;
    }

    // Interpolated response: D(ŝ) = D + ½ ∇Dᵀ·offset, using the scale
    // neighbours only to keep the true extremum's sign honest.
    let ds = (above.get_clamped(xi, yi) - below.get_clamped(xi, yi)) * 0.5;
    let _ = ds; // scale offset not solved; one-step spatial refinement
    let refined = value + 0.5 * (dx * off_x + dy * off_y);
    Some(((off_x.clamp(-0.5, 0.5), off_y.clamp(-0.5, 0.5)), refined))
}

fn is_extremum(
    value: f32,
    below: &crate::image::GrayImage,
    here: &crate::image::GrayImage,
    above: &crate::image::GrayImage,
    x: usize,
    y: usize,
) -> bool {
    let mut is_max = true;
    let mut is_min = true;
    for dy in -1isize..=1 {
        for dx in -1isize..=1 {
            let nx = (x as isize + dx) as usize;
            let ny = (y as isize + dy) as usize;
            for (level, skip_centre) in [(below, false), (here, true), (above, false)] {
                if skip_centre && dx == 0 && dy == 0 {
                    continue;
                }
                let neighbour = level.get(nx, ny);
                if neighbour >= value {
                    is_max = false;
                }
                if neighbour <= value {
                    is_min = false;
                }
                if !is_max && !is_min {
                    return false;
                }
            }
        }
    }
    is_max || is_min
}

/// Lowe's edge test: reject points where the ratio of principal curvatures
/// of the 2×2 Hessian exceeds `r` — i.e. `tr²/det > (r+1)²/r`.
fn is_edge_like(dog: &crate::image::GrayImage, x: usize, y: usize, r: f32) -> bool {
    let x = x as isize;
    let y = y as isize;
    let dxx = dog.get_clamped(x + 1, y) + dog.get_clamped(x - 1, y)
        - 2.0 * dog.get_clamped(x, y);
    let dyy = dog.get_clamped(x, y + 1) + dog.get_clamped(x, y - 1)
        - 2.0 * dog.get_clamped(x, y);
    let dxy = (dog.get_clamped(x + 1, y + 1)
        - dog.get_clamped(x - 1, y + 1)
        - dog.get_clamped(x + 1, y - 1)
        + dog.get_clamped(x - 1, y - 1))
        * 0.25;
    let trace = dxx + dyy;
    let det = dxx * dyy - dxy * dxy;
    if det <= 0.0 {
        // Saddle: curvatures of opposite sign — always edge-like.
        return true;
    }
    trace * trace / det > (r + 1.0) * (r + 1.0) / r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::GrayImage;

    fn blob(width: usize, height: usize, cx: f32, cy: f32, radius: f32) -> GrayImage {
        GrayImage::from_fn(width, height, |x, y| {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            (-(dx * dx + dy * dy) / (radius * radius)).exp()
        })
    }

    #[test]
    fn blob_centre_detected() {
        let image = blob(64, 64, 32.0, 32.0, 6.0);
        let space = ScaleSpace::build(&image, &SiftParams::default());
        let keypoints = detect(&space, &SiftParams::default());
        assert!(!keypoints.is_empty());
        let near = keypoints.iter().any(|kp| {
            let (ix, iy) = space.to_input_coords(kp.octave, kp.x as f32, kp.y as f32);
            (ix - 32.0).abs() < 6.0 && (iy - 32.0).abs() < 6.0
        });
        assert!(near, "{keypoints:?}");
    }

    #[test]
    fn flat_image_has_no_keypoints() {
        let image = GrayImage::from_fn(64, 64, |_, _| 0.3);
        let space = ScaleSpace::build(&image, &SiftParams::default());
        assert!(detect(&space, &SiftParams::default()).is_empty());
    }

    #[test]
    fn straight_edge_is_rejected() {
        // A step edge has high contrast but edge-like curvature.
        let image = GrayImage::from_fn(64, 64, |x, _| if x < 32 { 0.0 } else { 1.0 });
        let space = ScaleSpace::build(&image, &SiftParams::default());
        let keypoints = detect(&space, &SiftParams::default());
        // All surviving keypoints (if any) must be far from the pure edge
        // interior; in practice none survive.
        assert!(
            keypoints.len() <= 2,
            "edge produced {} keypoints: {keypoints:?}",
            keypoints.len()
        );
    }

    #[test]
    fn dark_blob_detected_as_minimum() {
        let image = GrayImage::from_fn(64, 64, |x, y| {
            let dx = x as f32 - 32.0;
            let dy = y as f32 - 32.0;
            1.0 - (-(dx * dx + dy * dy) / 36.0).exp()
        });
        let space = ScaleSpace::build(&image, &SiftParams::default());
        let keypoints = detect(&space, &SiftParams::default());
        assert!(keypoints.iter().any(|kp| kp.response != 0.0));
        assert!(!keypoints.is_empty());
    }

    #[test]
    fn sigma_reflects_octave() {
        let image = blob(128, 128, 64.0, 64.0, 12.0);
        let params = SiftParams::default();
        let space = ScaleSpace::build(&image, &params);
        for kp in detect(&space, &params) {
            let base = space.octaves[kp.octave].sigmas[kp.scale];
            assert!((kp.sigma - base * (1 << kp.octave) as f32).abs() < 1e-4);
        }
    }

    #[test]
    fn subpixel_offsets_are_bounded() {
        let image = blob(96, 96, 47.3, 48.7, 7.0); // off-grid centre
        let params = SiftParams::default();
        let space = ScaleSpace::build(&image, &params);
        let keypoints = detect(&space, &params);
        assert!(!keypoints.is_empty());
        for kp in &keypoints {
            assert!(kp.offset.0.abs() <= 0.5, "{:?}", kp.offset);
            assert!(kp.offset.1.abs() <= 0.5, "{:?}", kp.offset);
            assert!((kp.refined_x() - kp.x as f32).abs() <= 0.5);
        }
    }

    #[test]
    fn subpixel_refinement_improves_localization() {
        // A blob centred off-grid: the refined keypoint position should be
        // at least as close to the true centre as the integer position.
        let params = SiftParams::default();
        let (cx, cy) = (40.4, 40.6);
        let image = blob(80, 80, cx, cy, 6.0);
        let space = ScaleSpace::build(&image, &params);
        let keypoints = detect(&space, &params);
        let best = keypoints
            .iter()
            .min_by(|a, b| {
                let dist = |k: &&Keypoint| {
                    let (ix, iy) =
                        space.to_input_coords(k.octave, k.refined_x(), k.refined_y());
                    (ix - cx).powi(2) + (iy - cy).powi(2)
                };
                dist(a).partial_cmp(&dist(b)).expect("no NaN")
            })
            .expect("keypoints nonempty");
        let (rx, ry) =
            space.to_input_coords(best.octave, best.refined_x(), best.refined_y());
        let refined_err = ((rx - cx).powi(2) + (ry - cy).powi(2)).sqrt();
        let scale_px = (1 << best.octave) as f32;
        assert!(
            refined_err <= 1.5 * scale_px,
            "refined position {rx},{ry} vs true {cx},{cy}"
        );
    }

    #[test]
    fn bigger_blob_found_at_coarser_scale() {
        let params = SiftParams::default();
        let small = blob(128, 128, 64.0, 64.0, 3.0);
        let large = blob(128, 128, 64.0, 64.0, 14.0);
        let kp_small = detect(&ScaleSpace::build(&small, &params), &params);
        let kp_large = detect(&ScaleSpace::build(&large, &params), &params);
        let max_sigma =
            |kps: &[Keypoint]| kps.iter().map(|k| k.sigma).fold(0.0f32, f32::max);
        if !kp_small.is_empty() && !kp_large.is_empty() {
            assert!(max_sigma(&kp_large) > max_sigma(&kp_small));
        }
    }
}
