//! Gaussian scale-space and difference-of-Gaussians pyramids.

use crate::gaussian::blur;
use crate::image::GrayImage;
use crate::SiftParams;

/// One octave: `scales_per_octave + 3` Gaussian images and the
/// `scales_per_octave + 2` DoG images between them.
#[derive(Debug)]
pub struct Octave {
    /// Gaussian-blurred images at increasing sigma.
    pub gaussians: Vec<GrayImage>,
    /// Differences of adjacent Gaussians.
    pub dogs: Vec<GrayImage>,
    /// The sigma of each Gaussian level, in *octave-local pixel units*
    /// (multiply by `2^octave` for input-image units).
    pub sigmas: Vec<f32>,
}

/// The full scale space of an image.
#[derive(Debug)]
pub struct ScaleSpace {
    /// Octaves from full resolution downward.
    pub octaves: Vec<Octave>,
    /// Scales per octave (`S`), as configured.
    pub scales_per_octave: usize,
}

impl ScaleSpace {
    /// Builds the pyramid per Lowe: each octave has `S + 3` Gaussian levels
    /// with sigma ratio `2^(1/S)`; the next octave starts from the level
    /// with twice the base sigma, downsampled 2×.
    pub fn build(image: &GrayImage, params: &SiftParams) -> ScaleSpace {
        let s = params.scales_per_octave;
        assert!(s >= 1, "need at least one scale per octave");
        let k = 2f32.powf(1.0 / s as f32);
        let levels = s + 3;

        let min_dim = image.width().min(image.height());
        let max_octaves_by_size = (min_dim as f32 / 8.0).log2().floor().max(1.0) as usize;
        let octave_count = params.max_octaves.min(max_octaves_by_size).max(1);

        let mut octaves = Vec::with_capacity(octave_count);
        let mut base = blur(image, params.sigma0);
        // Each octave restarts at sigma0 in its own (downsampled) pixel
        // units: level `s` reaches 2·sigma0, and halving the resolution
        // brings it back to sigma0.
        let base_sigma = params.sigma0;

        for _ in 0..octave_count {
            let mut gaussians = Vec::with_capacity(levels);
            let mut sigmas = Vec::with_capacity(levels);
            gaussians.push(base.clone());
            sigmas.push(base_sigma);
            let mut sigma = base_sigma;
            for _ in 1..levels {
                let next_sigma = sigma * k;
                // Incremental blur: sigma_delta² = next² - current².
                let delta = (next_sigma * next_sigma - sigma * sigma).sqrt();
                let blurred = blur(gaussians.last().expect("nonempty"), delta);
                gaussians.push(blurred);
                sigmas.push(next_sigma);
                sigma = next_sigma;
            }
            let dogs =
                gaussians.windows(2).map(|pair| pair[1].subtract(&pair[0])).collect();

            // Next octave: level `s` has local sigma 2·sigma0, which after
            // 2× downsampling is sigma0 in the new octave's pixel units.
            let next_base = gaussians[s].downsample2();
            octaves.push(Octave { gaussians, dogs, sigmas });
            if next_base.width() < 8 || next_base.height() < 8 {
                break;
            }
            base = next_base;
        }

        ScaleSpace { octaves, scales_per_octave: s }
    }

    /// The sigma (in input-image units) of level `scale` in `octave`,
    /// accounting for downsampling.
    pub fn absolute_sigma(&self, octave: usize, scale: usize) -> f32 {
        self.octaves[octave].sigmas[scale] * (1 << octave) as f32
    }

    /// Converts octave-local pixel coordinates to input-image coordinates.
    pub fn to_input_coords(&self, octave: usize, x: f32, y: f32) -> (f32, f32) {
        let factor = (1 << octave) as f32;
        (x * factor, y * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_image() -> GrayImage {
        GrayImage::from_fn(64, 64, |x, y| ((x * 3 + y * 7) % 13) as f32 / 13.0)
    }

    #[test]
    fn level_counts_match_lowe() {
        let params = SiftParams::default();
        let space = ScaleSpace::build(&test_image(), &params);
        assert!(!space.octaves.is_empty());
        for octave in &space.octaves {
            assert_eq!(octave.gaussians.len(), params.scales_per_octave + 3);
            assert_eq!(octave.dogs.len(), params.scales_per_octave + 2);
            assert_eq!(octave.sigmas.len(), octave.gaussians.len());
        }
    }

    #[test]
    fn octaves_halve_resolution() {
        let space = ScaleSpace::build(&test_image(), &SiftParams::default());
        for pair in space.octaves.windows(2) {
            assert_eq!(pair[1].gaussians[0].width(), pair[0].gaussians[0].width() / 2);
        }
    }

    #[test]
    fn sigmas_increase_geometrically() {
        let params = SiftParams::default();
        let space = ScaleSpace::build(&test_image(), &params);
        let k = 2f32.powf(1.0 / params.scales_per_octave as f32);
        for octave in &space.octaves {
            for pair in octave.sigmas.windows(2) {
                assert!((pair[1] / pair[0] - k).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn octave_base_sigma_doubles_in_absolute_units() {
        let space = ScaleSpace::build(&test_image(), &SiftParams::default());
        if space.octaves.len() >= 2 {
            let ratio = space.absolute_sigma(1, 0) / space.absolute_sigma(0, 0);
            assert!((ratio - 2.0).abs() < 1e-4);
            // Octave-boundary consistency: level S of octave 0 and level 0
            // of octave 1 represent the same absolute sigma.
            let s = space.scales_per_octave;
            assert!(
                (space.absolute_sigma(0, s) - space.absolute_sigma(1, 0)).abs() < 1e-4
            );
        }
    }

    #[test]
    fn octave_count_bounded_by_size() {
        let tiny = GrayImage::from_fn(16, 16, |x, _| x as f32);
        let space = ScaleSpace::build(&tiny, &SiftParams::default());
        assert_eq!(space.octaves.len(), 1);
    }

    #[test]
    fn coordinate_mapping_scales_by_octave() {
        let space = ScaleSpace::build(&test_image(), &SiftParams::default());
        assert_eq!(space.to_input_coords(0, 5.0, 7.0), (5.0, 7.0));
        assert_eq!(space.to_input_coords(1, 5.0, 7.0), (10.0, 14.0));
    }

    #[test]
    fn dog_of_constant_is_zero() {
        let flat = GrayImage::from_fn(64, 64, |_, _| 0.4);
        let space = ScaleSpace::build(&flat, &SiftParams::default());
        for octave in &space.octaves {
            for dog in &octave.dogs {
                assert!(dog.pixels().iter().all(|&p| p.abs() < 1e-4));
            }
        }
    }
}
