//! Grayscale float images.

/// A grayscale image with `f32` pixels in `[0, 1]` (values outside the
/// range are tolerated; SIFT only cares about local differences).
#[derive(Clone, Debug, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
}

impl GrayImage {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        GrayImage { width, height, pixels: vec![0.0; width * height] }
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, f: impl Fn(usize, usize) -> f32) -> Self {
        let mut image = GrayImage::new(width, height);
        for y in 0..height {
            for x in 0..width {
                image.pixels[y * width + x] = f(x, y);
            }
        }
        image
    }

    /// Creates an image from row-major 8-bit luma bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() != width * height`.
    pub fn from_luma8(width: usize, height: usize, bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), width * height, "luma buffer size mismatch");
        let mut image = GrayImage::new(width, height);
        for (pixel, &byte) in image.pixels.iter_mut().zip(bytes) {
            *pixel = f32::from(byte) / 255.0;
        }
        image
    }

    /// Serializes to row-major 8-bit luma (clamped to `[0, 1]`).
    pub fn to_luma8(&self) -> Vec<u8> {
        self.pixels.iter().map(|&p| (p.clamp(0.0, 1.0) * 255.0).round() as u8).collect()
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Reads the pixel at `(x, y)`, clamping coordinates to the border
    /// (convenient for convolution edge handling).
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[y * self.width + x]
    }

    /// Reads the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Writes the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// Raw pixel slice (row-major).
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Downsamples by 2 (taking every other pixel), for octave
    /// construction.
    pub fn downsample2(&self) -> GrayImage {
        let width = (self.width / 2).max(1);
        let height = (self.height / 2).max(1);
        GrayImage::from_fn(width, height, |x, y| self.get(x * 2, y * 2))
    }

    /// Per-pixel difference `self - other` (for DoG).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn subtract(&self, other: &GrayImage) -> GrayImage {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "dimension mismatch"
        );
        let mut out = self.clone();
        for (o, p) in out.pixels.iter_mut().zip(&other.pixels) {
            *o -= p;
        }
        out
    }

    /// Gradient (dx, dy) at `(x, y)` via central differences.
    pub fn gradient(&self, x: usize, y: usize) -> (f32, f32) {
        let dx = self.get_clamped(x as isize + 1, y as isize)
            - self.get_clamped(x as isize - 1, y as isize);
        let dy = self.get_clamped(x as isize, y as isize + 1)
            - self.get_clamped(x as isize, y as isize - 1);
        (dx * 0.5, dy * 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let image = GrayImage::from_fn(4, 3, |x, y| (x + 10 * y) as f32);
        assert_eq!(image.get(2, 1), 12.0);
        assert_eq!(image.width(), 4);
        assert_eq!(image.height(), 3);
    }

    #[test]
    fn clamped_access_at_borders() {
        let image = GrayImage::from_fn(3, 3, |x, y| (x + y) as f32);
        assert_eq!(image.get_clamped(-5, -5), image.get(0, 0));
        assert_eq!(image.get_clamped(10, 10), image.get(2, 2));
    }

    #[test]
    fn luma8_roundtrip() {
        let bytes: Vec<u8> = (0..64).map(|i| (i * 4) as u8).collect();
        let image = GrayImage::from_luma8(8, 8, &bytes);
        assert_eq!(image.to_luma8(), bytes);
    }

    #[test]
    fn downsample_halves_dimensions() {
        let image = GrayImage::from_fn(8, 6, |x, y| (x * y) as f32);
        let small = image.downsample2();
        assert_eq!((small.width(), small.height()), (4, 3));
        assert_eq!(small.get(1, 1), image.get(2, 2));
    }

    #[test]
    fn subtract_computes_dog() {
        let a = GrayImage::from_fn(4, 4, |x, _| x as f32);
        let b = GrayImage::from_fn(4, 4, |_, y| y as f32);
        let d = a.subtract(&b);
        assert_eq!(d.get(3, 1), 2.0);
    }

    #[test]
    fn gradient_of_ramp() {
        let image = GrayImage::from_fn(5, 5, |x, _| 2.0 * x as f32);
        let (dx, dy) = image.gradient(2, 2);
        assert!((dx - 2.0).abs() < 1e-6);
        assert!(dy.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        GrayImage::new(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        let _ = GrayImage::new(0, 5);
    }
}
