//! Descriptor matching — the standard consumer of SIFT features (object
//! recognition, image stitching, 3D modelling: the applications the paper
//! lists for use case 1).
//!
//! Implements Lowe's nearest-neighbour matching with the ratio test: a
//! query descriptor matches its nearest neighbour only when the nearest is
//! sufficiently closer than the second nearest.

use crate::descriptor::Feature;

/// One accepted correspondence between two feature sets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Match {
    /// Index into the query feature set.
    pub query: usize,
    /// Index into the train feature set.
    pub train: usize,
    /// Squared Euclidean distance between the descriptors.
    pub distance_sq: u32,
}

/// Squared Euclidean distance between two 128-byte descriptors.
pub fn descriptor_distance_sq(a: &[u8; 128], b: &[u8; 128]) -> u32 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = i32::from(x) - i32::from(y);
            (d * d) as u32
        })
        .sum()
}

/// Matches `query` features against `train` features with Lowe's ratio
/// test (`ratio` is typically 0.8; lower is stricter).
///
/// Brute-force `O(|query| × |train|)` search — appropriate for the feature
/// counts the synthetic workloads produce.
///
/// # Panics
///
/// Panics if `ratio` is not in `(0, 1]`.
pub fn match_features(query: &[Feature], train: &[Feature], ratio: f32) -> Vec<Match> {
    assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0, 1]");
    let ratio_sq = ratio * ratio;
    let mut matches = Vec::new();
    for (qi, q) in query.iter().enumerate() {
        let mut best: Option<(usize, u32)> = None;
        let mut second_best: u32 = u32::MAX;
        for (ti, t) in train.iter().enumerate() {
            let d = descriptor_distance_sq(&q.descriptor, &t.descriptor);
            match best {
                Some((_, best_d)) if d >= best_d => second_best = second_best.min(d),
                _ => {
                    if let Some((_, prev)) = best {
                        second_best = second_best.min(prev);
                    }
                    best = Some((ti, d));
                }
            }
        }
        if let Some((ti, best_d)) = best {
            // Ratio test: accept only when clearly better than the runner-up.
            let passes = second_best == u32::MAX
                || (best_d as f32) < ratio_sq * second_best as f32;
            if passes {
                matches.push(Match { query: qi, train: ti, distance_sq: best_d });
            }
        }
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sift, GrayImage, SiftParams};

    fn scene(offset_x: f32, offset_y: f32) -> GrayImage {
        GrayImage::from_fn(96, 96, |x, y| {
            let blob = |cx: f32, cy: f32, r: f32, a: f32| {
                let dx = x as f32 - cx - offset_x;
                let dy = y as f32 - cy - offset_y;
                a * (-(dx * dx + dy * dy) / (r * r)).exp()
            };
            blob(30.0, 30.0, 5.0, 1.0)
                + blob(60.0, 40.0, 7.0, 0.8)
                + blob(40.0, 65.0, 4.0, 0.9)
        })
    }

    #[test]
    fn identical_images_match_fully() {
        let features = sift(&scene(0.0, 0.0), &SiftParams::default());
        assert!(!features.is_empty());
        let matches = match_features(&features, &features, 0.9);
        // Every feature matches itself at distance 0.
        assert_eq!(matches.len(), features.len());
        for m in &matches {
            assert_eq!(m.query, m.train);
            assert_eq!(m.distance_sq, 0);
        }
    }

    #[test]
    fn shifted_scene_still_matches() {
        let original = sift(&scene(0.0, 0.0), &SiftParams::default());
        let shifted = sift(&scene(4.0, 3.0), &SiftParams::default());
        assert!(!original.is_empty() && !shifted.is_empty());
        let matches = match_features(&original, &shifted, 0.85);
        assert!(
            !matches.is_empty(),
            "no correspondences between shifted scenes ({} vs {} features)",
            original.len(),
            shifted.len()
        );
        // Matched pairs should be displaced by roughly the shift.
        let mut plausible = 0;
        for m in &matches {
            let dx = shifted[m.train].x - original[m.query].x;
            let dy = shifted[m.train].y - original[m.query].y;
            if (dx - 4.0).abs() < 4.0 && (dy - 3.0).abs() < 4.0 {
                plausible += 1;
            }
        }
        assert!(plausible * 2 >= matches.len(), "{plausible}/{}", matches.len());
    }

    #[test]
    fn unrelated_images_match_little() {
        let scene_features = sift(&scene(0.0, 0.0), &SiftParams::default());
        let noise =
            GrayImage::from_fn(96, 96, |x, y| (((x * 31 + y * 17) % 13) as f32) / 13.0);
        let noise_features = sift(&noise, &SiftParams::default());
        let matches = match_features(&scene_features, &noise_features, 0.7);
        assert!(
            matches.len() <= scene_features.len() / 2,
            "{} matches out of {} features against noise",
            matches.len(),
            scene_features.len()
        );
    }

    #[test]
    fn distance_is_metric_like() {
        let a = [0u8; 128];
        let mut b = [0u8; 128];
        b[0] = 3;
        b[127] = 4;
        assert_eq!(descriptor_distance_sq(&a, &a), 0);
        assert_eq!(descriptor_distance_sq(&a, &b), 25);
        assert_eq!(descriptor_distance_sq(&b, &a), 25);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn invalid_ratio_panics() {
        let _ = match_features(&[], &[], 0.0);
    }

    #[test]
    fn empty_sets_match_nothing() {
        assert!(match_features(&[], &[], 0.8).is_empty());
    }
}
