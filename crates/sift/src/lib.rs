//! SIFT feature extraction — the reproduction's stand-in for `libsiftpp`'s
//! `sift(·)` (use case 1 of the SPEED paper, §V-A).
//!
//! Implements the full Lowe pipeline: Gaussian scale-space construction,
//! difference-of-Gaussians (DoG), 3×3×3 extrema detection with contrast and
//! edge-response filtering, orientation assignment from gradient
//! histograms, and 128-dimensional descriptors (4×4 spatial bins × 8
//! orientation bins, normalized and clipped).
//!
//! SIFT is the paper's showcase workload: expensive (multiple full-image
//! Gaussian convolutions per octave) with a compact result, which is why
//! Fig. 5a reports 76–94× dedup speedups at <2% initial-computation
//! overhead.
//!
//! # Example
//!
//! ```
//! use speed_sift::{sift, GrayImage, SiftParams};
//!
//! // A bright blob on a dark background yields at least one keypoint.
//! let image = GrayImage::from_fn(64, 64, |x, y| {
//!     let dx = x as f32 - 32.0;
//!     let dy = y as f32 - 32.0;
//!     (-(dx * dx + dy * dy) / 50.0).exp()
//! });
//! let features = sift(&image, &SiftParams::default());
//! assert!(!features.is_empty());
//! assert_eq!(features[0].descriptor.len(), 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod descriptor;
mod gaussian;
mod image;
mod keypoint;
pub mod matching;
mod pyramid;

pub use descriptor::Feature;
pub use image::GrayImage;
pub use keypoint::Keypoint;
pub use matching::{descriptor_distance_sq, match_features, Match};
pub use pyramid::ScaleSpace;

/// Tunable parameters of the SIFT pipeline (defaults follow Lowe 2004).
#[derive(Clone, Copy, Debug)]
pub struct SiftParams {
    /// Scales sampled per octave (Lowe's `S`).
    pub scales_per_octave: usize,
    /// Base blur applied to the input image.
    pub sigma0: f32,
    /// DoG contrast threshold below which extrema are discarded.
    pub contrast_threshold: f32,
    /// Edge-response ratio threshold (Lowe's `r`).
    pub edge_threshold: f32,
    /// Maximum number of octaves (bounded further by image size).
    pub max_octaves: usize,
}

impl Default for SiftParams {
    fn default() -> Self {
        SiftParams {
            scales_per_octave: 3,
            sigma0: 1.6,
            contrast_threshold: 0.03,
            edge_threshold: 10.0,
            max_octaves: 8,
        }
    }
}

/// Runs the full SIFT pipeline: scale space → keypoints → oriented
/// 128-D descriptors.
pub fn sift(image: &GrayImage, params: &SiftParams) -> Vec<Feature> {
    let scale_space = ScaleSpace::build(image, params);
    let keypoints = keypoint::detect(&scale_space, params);
    descriptor::describe(&scale_space, &keypoints)
}

/// Serializes features compactly for storage/deduplication: each feature is
/// `(x, y, sigma, orientation)` as f32 plus 128 descriptor bytes.
pub fn features_to_bytes(features: &[Feature]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + features.len() * (16 + 128));
    out.extend_from_slice(&(features.len() as u32).to_le_bytes());
    for feature in features {
        out.extend_from_slice(&feature.x.to_le_bytes());
        out.extend_from_slice(&feature.y.to_le_bytes());
        out.extend_from_slice(&feature.sigma.to_le_bytes());
        out.extend_from_slice(&feature.orientation.to_le_bytes());
        out.extend_from_slice(&feature.descriptor);
    }
    out
}

/// Parses features serialized by [`features_to_bytes`].
///
/// Returns `None` on malformed input.
pub fn features_from_bytes(bytes: &[u8]) -> Option<Vec<Feature>> {
    if bytes.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(bytes[..4].try_into().ok()?) as usize;
    let record = 16 + 128;
    if bytes.len() != 4 + count * record {
        return None;
    }
    let mut features = Vec::with_capacity(count);
    for i in 0..count {
        let base = 4 + i * record;
        let f32_at = |offset: usize| {
            f32::from_le_bytes(bytes[base + offset..base + offset + 4].try_into().ok()?)
                .into()
        };
        let x: Option<f32> = f32_at(0);
        let y: Option<f32> = f32_at(4);
        let sigma: Option<f32> = f32_at(8);
        let orientation: Option<f32> = f32_at(12);
        let mut descriptor = [0u8; 128];
        descriptor.copy_from_slice(&bytes[base + 16..base + 144]);
        features.push(Feature {
            x: x?,
            y: y?,
            sigma: sigma?,
            orientation: orientation?,
            descriptor,
        });
    }
    Some(features)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_image(width: usize, height: usize, cx: f32, cy: f32) -> GrayImage {
        GrayImage::from_fn(width, height, |x, y| {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            (-(dx * dx + dy * dy) / 40.0).exp()
        })
    }

    #[test]
    fn blob_produces_features() {
        let image = blob_image(64, 64, 32.0, 32.0);
        let features = sift(&image, &SiftParams::default());
        assert!(!features.is_empty());
        // The strongest feature should sit near the blob centre.
        let near_centre =
            features.iter().any(|f| (f.x - 32.0).abs() < 6.0 && (f.y - 32.0).abs() < 6.0);
        assert!(near_centre, "features: {features:?}");
    }

    #[test]
    fn flat_image_produces_nothing() {
        let image = GrayImage::from_fn(64, 64, |_, _| 0.5);
        assert!(sift(&image, &SiftParams::default()).is_empty());
    }

    #[test]
    fn pipeline_is_deterministic() {
        let image = blob_image(96, 96, 40.0, 50.0);
        let a = sift(&image, &SiftParams::default());
        let b = sift(&image, &SiftParams::default());
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(&b) {
            assert_eq!(fa.descriptor, fb.descriptor);
            assert_eq!(fa.x, fb.x);
        }
    }

    #[test]
    fn shifted_blob_shifts_features() {
        let a = sift(&blob_image(96, 96, 30.0, 30.0), &SiftParams::default());
        let b = sift(&blob_image(96, 96, 60.0, 60.0), &SiftParams::default());
        assert!(!a.is_empty() && !b.is_empty());
        let (sa, sb) = (strongest(&a), strongest(&b));
        assert!((sb.x - sa.x) > 15.0, "{} -> {}", sa.x, sb.x);
        assert!((sb.y - sa.y) > 15.0);
    }

    fn strongest(features: &[Feature]) -> &Feature {
        // Features are emitted in detection order; the blob centre is the
        // one closest to any detected cluster — take the first.
        &features[0]
    }

    #[test]
    fn descriptors_are_normalized() {
        let features = sift(&blob_image(64, 64, 32.0, 32.0), &SiftParams::default());
        for feature in &features {
            // Quantized descriptors: at least some nonzero mass, none
            // saturated beyond the clip ceiling.
            let sum: u32 = feature.descriptor.iter().map(|&b| u32::from(b)).sum();
            assert!(sum > 0);
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let features = sift(&blob_image(64, 64, 20.0, 40.0), &SiftParams::default());
        let bytes = features_to_bytes(&features);
        let parsed = features_from_bytes(&bytes).unwrap();
        assert_eq!(parsed.len(), features.len());
        for (a, b) in features.iter().zip(&parsed) {
            assert_eq!(a.descriptor, b.descriptor);
            assert_eq!(a.x, b.x);
            assert_eq!(a.orientation, b.orientation);
        }
    }

    #[test]
    fn serialization_rejects_malformed() {
        assert!(features_from_bytes(&[]).is_none());
        assert!(features_from_bytes(&[1, 0, 0, 0, 9]).is_none());
        assert_eq!(features_from_bytes(&0u32.to_le_bytes()).unwrap().len(), 0);
    }

    #[test]
    fn result_much_smaller_than_compute_surface() {
        // The dedup-friendly property: result bytes ≪ pixels processed.
        let image = blob_image(128, 128, 64.0, 64.0);
        let features = sift(&image, &SiftParams::default());
        let result_bytes = features_to_bytes(&features).len();
        assert!(result_bytes < 128 * 128 * 4 / 4);
    }

    #[test]
    fn higher_contrast_threshold_prunes_features() {
        let image = GrayImage::from_fn(96, 96, |x, y| {
            // Several blobs of different strengths.
            let blob = |cx: f32, cy: f32, a: f32| {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                a * (-(dx * dx + dy * dy) / 30.0).exp()
            };
            blob(20.0, 20.0, 1.0) + blob(70.0, 25.0, 0.4) + blob(45.0, 70.0, 0.15)
        });
        let loose = sift(
            &image,
            &SiftParams { contrast_threshold: 0.01, ..SiftParams::default() },
        );
        let strict = sift(
            &image,
            &SiftParams { contrast_threshold: 0.08, ..SiftParams::default() },
        );
        assert!(strict.len() <= loose.len());
    }
}
