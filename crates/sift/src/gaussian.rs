//! Separable Gaussian convolution.

use crate::image::GrayImage;

/// Builds a normalized 1-D Gaussian kernel for `sigma`, truncated at 4σ.
pub fn kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (sigma * 4.0).ceil().max(1.0) as usize;
    let mut weights = Vec::with_capacity(2 * radius + 1);
    let denom = 2.0 * sigma * sigma;
    for i in -(radius as isize)..=(radius as isize) {
        let x = i as f32;
        weights.push((-x * x / denom).exp());
    }
    let sum: f32 = weights.iter().sum();
    for w in weights.iter_mut() {
        *w /= sum;
    }
    weights
}

/// Blurs `image` with a Gaussian of the given `sigma` (separable passes,
/// clamped borders).
pub fn blur(image: &GrayImage, sigma: f32) -> GrayImage {
    let weights = kernel(sigma);
    let radius = weights.len() / 2;
    let width = image.width();
    let height = image.height();

    // Horizontal pass.
    let mut horizontal = GrayImage::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let mut acc = 0.0f32;
            for (i, &w) in weights.iter().enumerate() {
                let sx = x as isize + i as isize - radius as isize;
                acc += w * image.get_clamped(sx, y as isize);
            }
            horizontal.set(x, y, acc);
        }
    }

    // Vertical pass.
    let mut out = GrayImage::new(width, height);
    for y in 0..height {
        for x in 0..width {
            let mut acc = 0.0f32;
            for (i, &w) in weights.iter().enumerate() {
                let sy = y as isize + i as isize - radius as isize;
                acc += w * horizontal.get_clamped(x as isize, sy);
            }
            out.set(x, y, acc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_normalized_and_symmetric() {
        for sigma in [0.5, 1.0, 1.6, 3.2] {
            let k = kernel(sigma);
            let sum: f32 = k.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "sigma {sigma}");
            assert_eq!(k.len() % 2, 1);
            for i in 0..k.len() / 2 {
                assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-6);
            }
            // Peak at the centre.
            let mid = k.len() / 2;
            assert!(k.iter().all(|&w| w <= k[mid]));
        }
    }

    #[test]
    fn blur_preserves_constant_image() {
        let image = GrayImage::from_fn(16, 16, |_, _| 0.7);
        let blurred = blur(&image, 2.0);
        for &p in blurred.pixels() {
            assert!((p - 0.7).abs() < 1e-4);
        }
    }

    #[test]
    fn blur_preserves_mean_roughly() {
        let image =
            GrayImage::from_fn(32, 32, |x, y| ((x * 7 + y * 13) % 11) as f32 / 11.0);
        let blurred = blur(&image, 1.6);
        let mean = |img: &GrayImage| {
            img.pixels().iter().sum::<f32>() / img.pixels().len() as f32
        };
        assert!((mean(&image) - mean(&blurred)).abs() < 0.02);
    }

    #[test]
    fn blur_reduces_variance() {
        let image = GrayImage::from_fn(32, 32, |x, y| ((x + y) % 2) as f32);
        let blurred = blur(&image, 1.5);
        let var = |img: &GrayImage| {
            let mean = img.pixels().iter().sum::<f32>() / img.pixels().len() as f32;
            img.pixels().iter().map(|&p| (p - mean).powi(2)).sum::<f32>()
        };
        assert!(var(&blurred) < var(&image) * 0.5);
    }

    #[test]
    fn larger_sigma_blurs_more() {
        let image =
            GrayImage::from_fn(33, 33, |x, y| if x == 16 && y == 16 { 1.0 } else { 0.0 });
        let small = blur(&image, 1.0);
        let large = blur(&image, 3.0);
        // The impulse's peak spreads with sigma.
        assert!(large.get(16, 16) < small.get(16, 16));
        assert!(large.get(22, 16) > small.get(22, 16));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_sigma_panics() {
        let _ = kernel(0.0);
    }
}
