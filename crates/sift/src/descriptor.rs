//! Orientation assignment and 128-D descriptor extraction.

use std::f32::consts::PI;

use crate::image::GrayImage;
use crate::keypoint::Keypoint;
use crate::pyramid::ScaleSpace;

/// A finished SIFT feature: location, scale, orientation, and the 128-byte
/// descriptor (4×4 spatial bins × 8 orientations, normalized, clipped at
/// 0.2, renormalized, quantized to `u8` like Lowe's reference output).
#[derive(Clone, Debug, PartialEq)]
pub struct Feature {
    /// Column in input-image coordinates.
    pub x: f32,
    /// Row in input-image coordinates.
    pub y: f32,
    /// Characteristic scale in input-image units.
    pub sigma: f32,
    /// Dominant gradient orientation in radians, `[-π, π)`.
    pub orientation: f32,
    /// The 128-dimensional descriptor.
    pub descriptor: [u8; 128],
}

const ORI_BINS: usize = 36;
const DESC_WIDTH: usize = 4;
const DESC_ORI_BINS: usize = 8;

/// Computes oriented descriptors for each keypoint (keypoints whose
/// support window falls outside the image are dropped).
pub fn describe(space: &ScaleSpace, keypoints: &[Keypoint]) -> Vec<Feature> {
    let mut features = Vec::with_capacity(keypoints.len());
    for kp in keypoints {
        let gaussian = &space.octaves[kp.octave].gaussians[kp.scale];
        let local_sigma = space.octaves[kp.octave].sigmas[kp.scale];
        for orientation in dominant_orientations(gaussian, kp, local_sigma) {
            if let Some(descriptor) =
                build_descriptor(gaussian, kp, local_sigma, orientation)
            {
                let (x, y) =
                    space.to_input_coords(kp.octave, kp.refined_x(), kp.refined_y());
                features.push(Feature { x, y, sigma: kp.sigma, orientation, descriptor });
            }
        }
    }
    features
}

/// Finds the dominant gradient orientation(s) around a keypoint: peaks of a
/// 36-bin histogram weighted by gradient magnitude and a Gaussian window;
/// secondary peaks within 80% of the maximum spawn extra features.
fn dominant_orientations(image: &GrayImage, kp: &Keypoint, local_sigma: f32) -> Vec<f32> {
    let window_sigma = 1.5 * local_sigma;
    let radius = (window_sigma * 3.0).ceil() as isize;
    let mut histogram = [0.0f32; ORI_BINS];

    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let x = kp.x as isize + dx;
            let y = kp.y as isize + dy;
            if x < 1
                || y < 1
                || x >= image.width() as isize - 1
                || y >= image.height() as isize - 1
            {
                continue;
            }
            let (gx, gy) = image.gradient(x as usize, y as usize);
            let magnitude = (gx * gx + gy * gy).sqrt();
            if magnitude == 0.0 {
                continue;
            }
            let weight = (-((dx * dx + dy * dy) as f32)
                / (2.0 * window_sigma * window_sigma))
                .exp();
            let angle = gy.atan2(gx); // [-π, π]
            let bin = angle_to_bin(angle, ORI_BINS);
            histogram[bin] += magnitude * weight;
        }
    }

    smooth_histogram(&mut histogram);
    let max = histogram.iter().cloned().fold(0.0f32, f32::max);
    if max <= 0.0 {
        return Vec::new();
    }
    let mut orientations = Vec::new();
    for bin in 0..ORI_BINS {
        let left = histogram[(bin + ORI_BINS - 1) % ORI_BINS];
        let right = histogram[(bin + 1) % ORI_BINS];
        let value = histogram[bin];
        if value >= 0.8 * max && value > left && value > right {
            // Parabolic interpolation of the peak.
            let offset = 0.5 * (left - right) / (left - 2.0 * value + right);
            let bin_f = bin as f32 + offset;
            orientations.push(bin_to_angle(bin_f, ORI_BINS));
        }
    }
    if orientations.is_empty() {
        // Plateau histogram: fall back to the max bin.
        let bin = histogram
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
            .map(|(i, _)| i)
            .expect("nonempty histogram");
        orientations.push(bin_to_angle(bin as f32, ORI_BINS));
    }
    orientations
}

fn angle_to_bin(angle: f32, bins: usize) -> usize {
    let normalized = (angle + PI) / (2.0 * PI); // [0, 1]
    ((normalized * bins as f32) as usize).min(bins - 1)
}

fn bin_to_angle(bin: f32, bins: usize) -> f32 {
    let mut angle = (bin + 0.5) / bins as f32 * 2.0 * PI - PI;
    if angle >= PI {
        angle -= 2.0 * PI;
    }
    if angle < -PI {
        angle += 2.0 * PI;
    }
    angle
}

fn smooth_histogram(histogram: &mut [f32; ORI_BINS]) {
    let original = *histogram;
    for i in 0..ORI_BINS {
        let prev = original[(i + ORI_BINS - 1) % ORI_BINS];
        let next = original[(i + 1) % ORI_BINS];
        histogram[i] = 0.25 * prev + 0.5 * original[i] + 0.25 * next;
    }
}

/// Builds the 4×4×8 descriptor in a rotated, scale-relative frame.
fn build_descriptor(
    image: &GrayImage,
    kp: &Keypoint,
    local_sigma: f32,
    orientation: f32,
) -> Option<[u8; 128]> {
    let bin_width = 3.0 * local_sigma;
    let radius =
        (bin_width * (DESC_WIDTH as f32) * 2f32.sqrt() / 2.0).ceil() as isize + 1;
    let (sin_o, cos_o) = orientation.sin_cos();
    let mut raw = [0.0f32; DESC_WIDTH * DESC_WIDTH * DESC_ORI_BINS];

    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let x = kp.x as isize + dx;
            let y = kp.y as isize + dy;
            if x < 1
                || y < 1
                || x >= image.width() as isize - 1
                || y >= image.height() as isize - 1
            {
                continue;
            }
            // Rotate the offset into the keypoint frame.
            let rx = (cos_o * dx as f32 + sin_o * dy as f32) / bin_width;
            let ry = (-sin_o * dx as f32 + cos_o * dy as f32) / bin_width;
            // Spatial bin coordinates in [0, 4).
            let bx = rx + DESC_WIDTH as f32 / 2.0 - 0.5;
            let by = ry + DESC_WIDTH as f32 / 2.0 - 0.5;
            if bx <= -1.0
                || bx >= DESC_WIDTH as f32
                || by <= -1.0
                || by >= DESC_WIDTH as f32
            {
                continue;
            }
            let (gx, gy) = image.gradient(x as usize, y as usize);
            let magnitude = (gx * gx + gy * gy).sqrt();
            if magnitude == 0.0 {
                continue;
            }
            let angle = {
                let mut a = gy.atan2(gx) - orientation;
                while a < -PI {
                    a += 2.0 * PI;
                }
                while a >= PI {
                    a -= 2.0 * PI;
                }
                a
            };
            let weight = (-(rx * rx + ry * ry) / (0.5 * DESC_WIDTH as f32).powi(2)).exp();
            let contribution = magnitude * weight;
            let ob = (angle + PI) / (2.0 * PI) * DESC_ORI_BINS as f32;

            // Trilinear interpolation into (bx, by, ob).
            let x0 = bx.floor();
            let y0 = by.floor();
            let o0 = ob.floor();
            for (xi, wx) in [(x0, 1.0 - (bx - x0)), (x0 + 1.0, bx - x0)] {
                if xi < 0.0 || xi >= DESC_WIDTH as f32 {
                    continue;
                }
                for (yi, wy) in [(y0, 1.0 - (by - y0)), (y0 + 1.0, by - y0)] {
                    if yi < 0.0 || yi >= DESC_WIDTH as f32 {
                        continue;
                    }
                    for (oi, wo) in [(o0, 1.0 - (ob - o0)), (o0 + 1.0, ob - o0)] {
                        let obin = (oi as usize) % DESC_ORI_BINS;
                        let idx = (yi as usize * DESC_WIDTH + xi as usize)
                            * DESC_ORI_BINS
                            + obin;
                        raw[idx] += contribution * wx * wy * wo;
                    }
                }
            }
        }
    }

    // Normalize → clip at 0.2 → renormalize → quantize.
    let norm = raw.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm <= 1e-6 {
        return None;
    }
    for v in raw.iter_mut() {
        *v = (*v / norm).min(0.2);
    }
    let norm = raw.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
    let mut descriptor = [0u8; 128];
    for (out, v) in descriptor.iter_mut().zip(&raw) {
        *out = ((v / norm) * 512.0).round().min(255.0) as u8;
    }
    Some(descriptor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SiftParams;

    fn blob(cx: f32, cy: f32) -> GrayImage {
        GrayImage::from_fn(64, 64, |x, y| {
            let dx = x as f32 - cx;
            let dy = y as f32 - cy;
            (-(dx * dx + dy * dy) / 40.0).exp()
        })
    }

    fn features_for(image: &GrayImage) -> Vec<Feature> {
        let params = SiftParams::default();
        let space = ScaleSpace::build(image, &params);
        let keypoints = crate::keypoint::detect(&space, &params);
        describe(&space, &keypoints)
    }

    #[test]
    fn descriptors_have_unit_like_energy() {
        for feature in features_for(&blob(32.0, 32.0)) {
            let energy: f64 =
                feature.descriptor.iter().map(|&b| (f64::from(b) / 512.0).powi(2)).sum();
            // Clipping makes energy ≤ 1; it should remain substantial.
            assert!(energy > 0.5 && energy < 1.3, "energy {energy}");
        }
    }

    #[test]
    fn orientation_in_range() {
        for feature in features_for(&blob(30.0, 34.0)) {
            assert!((-PI..PI).contains(&feature.orientation));
        }
    }

    #[test]
    fn angle_bin_roundtrip() {
        for bin in 0..ORI_BINS {
            let angle = bin_to_angle(bin as f32, ORI_BINS);
            assert_eq!(angle_to_bin(angle, ORI_BINS), bin);
        }
    }

    #[test]
    fn rotated_gradient_rotates_orientation() {
        // A diagonal ramp has a well-defined gradient direction.
        let ramp_x = GrayImage::from_fn(64, 64, |x, y| {
            let dx = x as f32 - 32.0;
            let dy = y as f32 - 32.0;
            (-(dx * dx + dy * dy) / 60.0).exp() * (1.0 + 0.3 * (x as f32 / 64.0))
        });
        let features = features_for(&ramp_x);
        // Just verify the pipeline produces stable, finite orientations.
        for f in features {
            assert!(f.orientation.is_finite());
        }
    }

    #[test]
    fn symmetric_blob_descriptor_is_symmetric_ish() {
        let features = features_for(&blob(32.0, 32.0));
        assert!(!features.is_empty());
        // A radially symmetric blob: descriptor mass should be spread over
        // many bins, not concentrated in one.
        for f in &features {
            let nonzero = f.descriptor.iter().filter(|&&b| b > 0).count();
            assert!(nonzero > 16, "only {nonzero} nonzero bins");
        }
    }
}
