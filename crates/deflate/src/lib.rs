//! A DEFLATE-style compressor/decompressor — the reproduction's stand-in
//! for `zlib`'s `deflate(·)` (use case 2 of the SPEED paper, §V-A).
//!
//! The pipeline mirrors RFC 1951 structurally: an LZ77 stage with hash-chain
//! match finding produces literal/match tokens, which are entropy-coded with
//! canonical Huffman codes (separate literal/length and distance alphabets,
//! length-limited to 15 bits, code tables carried in the block header). The
//! container format is this crate's own, so byte streams are not
//! interoperable with zlib — the *computational profile* (which is what the
//! deduplication experiments exercise) matches: fast, input-linear
//! compression whose runtime is comparable to the crypto overhead SPEED
//! adds, which is why Fig. 5b shows only a ~4× dedup speedup.
//!
//! # Example
//!
//! ```
//! use speed_deflate::{compress, decompress, Level};
//!
//! let data = b"hello hello hello hello hello ".repeat(40);
//! let packed = compress(&data, Level::Default);
//! assert!(packed.len() < data.len());
//! assert_eq!(decompress(&packed).unwrap(), data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitio;
mod error;
mod huffman;
mod lz77;

/// Minimal deterministic RNG (SplitMix64) for tests: this crate has no
/// dependencies, and the tier-1 build must resolve offline.
#[cfg(test)]
pub(crate) mod testrand {
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        pub fn fill(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }

        pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
            let mut v = vec![0u8; self.below(max_len + 1)];
            self.fill(&mut v);
            v
        }
    }
}

pub use error::DeflateError;
pub use lz77::Level;

use bitio::{BitReader, BitWriter};
use huffman::{CanonicalCode, Decoder};
use lz77::{tokenize, Token, MAX_DISTANCE, MAX_MATCH, MIN_MATCH};

const MAGIC: &[u8; 4] = b"SPDF";
/// End-of-block symbol in the literal/length alphabet.
const EOB: usize = 256;
/// Size of the literal/length alphabet: 256 literals + EOB + 29 length codes.
const LITLEN_SYMBOLS: usize = 286;
/// Size of the distance alphabet.
const DIST_SYMBOLS: usize = 30;

/// Base match lengths for length codes 257..=285 (RFC 1951 table).
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99,
    115, 131, 163, 195, 227, 258,
];
/// Extra bits for each length code.
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Base distances for distance codes 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025,
    1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits for each distance code.
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12,
    12, 13, 13,
];

fn length_code(len: u16) -> (usize, u8, u16) {
    debug_assert!((MIN_MATCH as u16..=MAX_MATCH as u16).contains(&len));
    // Find the last code whose base is <= len.
    let mut code = LENGTH_BASE.partition_point(|&b| b <= len) - 1;
    // Length 258 has its own code (28) with no extra bits.
    if len == 258 {
        code = 28;
    }
    (257 + code, LENGTH_EXTRA[code], len - LENGTH_BASE[code])
}

fn dist_code(dist: u16) -> (usize, u8, u16) {
    debug_assert!((1..=MAX_DISTANCE as u16).contains(&dist));
    let code = DIST_BASE.partition_point(|&b| b <= dist) - 1;
    (code, DIST_EXTRA[code], dist - DIST_BASE[code])
}

/// Compresses `data` at the given effort level.
///
/// The output always carries a 9-byte header (magic, mode, original
/// length); incompressible data falls back to stored mode with ~1%
/// overhead.
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let tokens = tokenize(data, level);

    // Token → symbol frequencies.
    let mut litlen_freq = [0u64; LITLEN_SYMBOLS];
    let mut dist_freq = [0u64; DIST_SYMBOLS];
    for token in &tokens {
        match *token {
            Token::Literal(byte) => litlen_freq[byte as usize] += 1,
            Token::Match { len, dist } => {
                litlen_freq[length_code(len).0] += 1;
                dist_freq[dist_code(dist).0] += 1;
            }
        }
    }
    litlen_freq[EOB] += 1;

    let litlen_code = CanonicalCode::from_frequencies(&litlen_freq, 15);
    let dist_code_table = CanonicalCode::from_frequencies(&dist_freq, 15);

    let mut writer = BitWriter::new();
    // Header: code lengths as nibble pairs (fits because max length 15).
    write_lengths(&mut writer, litlen_code.lengths());
    write_lengths(&mut writer, dist_code_table.lengths());

    for token in &tokens {
        match *token {
            Token::Literal(byte) => litlen_code.write(&mut writer, byte as usize),
            Token::Match { len, dist } => {
                let (lcode, lextra, lbits) = length_code(len);
                litlen_code.write(&mut writer, lcode);
                writer.write_bits(u32::from(lbits), lextra);
                let (dcode, dextra, dbits) = dist_code(dist);
                dist_code_table.write(&mut writer, dcode);
                writer.write_bits(u32::from(dbits), dextra);
            }
        }
    }
    litlen_code.write(&mut writer, EOB);
    let packed = writer.into_bytes();

    let mut out = Vec::with_capacity(packed.len() + 16);
    out.extend_from_slice(MAGIC);
    let use_stored = packed.len() >= data.len();
    out.push(u8::from(use_stored));
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    if use_stored {
        out.extend_from_slice(data);
    } else {
        out.extend_from_slice(&packed);
    }
    out
}

fn write_lengths(writer: &mut BitWriter, lengths: &[u8]) {
    for &len in lengths {
        writer.write_bits(u32::from(len), 4);
    }
}

fn read_lengths(
    reader: &mut BitReader<'_>,
    count: usize,
) -> Result<Vec<u8>, DeflateError> {
    (0..count)
        .map(|_| reader.read_bits(4).map(|b| b as u8))
        .collect::<Result<Vec<u8>, _>>()
}

/// Decompresses data produced by [`compress`].
///
/// # Errors
///
/// Returns [`DeflateError`] on malformed or truncated input, including
/// hostile streams (bad magic, invalid codes, out-of-range distances).
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DeflateError> {
    if data.len() < 9 {
        return Err(DeflateError::Truncated);
    }
    if &data[..4] != MAGIC {
        return Err(DeflateError::BadMagic);
    }
    let stored = match data[4] {
        0 => false,
        1 => true,
        other => return Err(DeflateError::Corrupt(format!("bad mode byte {other}"))),
    };
    let original_len = u32::from_le_bytes(data[5..9].try_into().expect("sized")) as usize;
    let payload = &data[9..];

    if stored {
        if payload.len() != original_len {
            return Err(DeflateError::Corrupt(format!(
                "stored block length {} != declared {original_len}",
                payload.len()
            )));
        }
        return Ok(payload.to_vec());
    }

    let mut reader = BitReader::new(payload);
    let litlen_lengths = read_lengths(&mut reader, LITLEN_SYMBOLS)?;
    let dist_lengths = read_lengths(&mut reader, DIST_SYMBOLS)?;
    let litlen_decoder = Decoder::from_lengths(&litlen_lengths)?;
    let dist_decoder = Decoder::from_lengths(&dist_lengths)?;

    let mut out: Vec<u8> = Vec::with_capacity(original_len.min(1 << 24));
    loop {
        let symbol = litlen_decoder.read(&mut reader)?;
        match symbol {
            0..=255 => out.push(symbol as u8),
            256 => break,
            257..=285 => {
                let idx = symbol - 257;
                let extra = reader.read_bits(LENGTH_EXTRA[idx])?;
                let len = usize::from(LENGTH_BASE[idx]) + extra as usize;
                let dsym = dist_decoder.read(&mut reader)?;
                if dsym >= DIST_SYMBOLS {
                    return Err(DeflateError::Corrupt(format!(
                        "distance symbol {dsym} out of range"
                    )));
                }
                let dextra = reader.read_bits(DIST_EXTRA[dsym])?;
                let dist = usize::from(DIST_BASE[dsym]) + dextra as usize;
                if dist > out.len() {
                    return Err(DeflateError::Corrupt(format!(
                        "distance {dist} exceeds output length {}",
                        out.len()
                    )));
                }
                if out.len() + len > original_len {
                    return Err(DeflateError::Corrupt(
                        "output exceeds declared length".into(),
                    ));
                }
                let start = out.len() - dist;
                // Byte-by-byte copy: overlapping matches are legal LZ77.
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            other => {
                return Err(DeflateError::Corrupt(format!(
                    "literal/length symbol {other} out of range"
                )))
            }
        }
        if out.len() > original_len {
            return Err(DeflateError::Corrupt("output exceeds declared length".into()));
        }
    }
    if out.len() != original_len {
        return Err(DeflateError::Corrupt(format!(
            "output length {} != declared {original_len}",
            out.len()
        )));
    }
    Ok(out)
}

/// The compression ratio `compressed/original` (1.0 means no gain).
pub fn ratio(original: &[u8], compressed: &[u8]) -> f64 {
    if original.is_empty() {
        return 1.0;
    }
    compressed.len() as f64 / original.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testrand::TestRng;

    #[test]
    fn empty_roundtrip() {
        let packed = compress(b"", Level::Default);
        assert_eq!(decompress(&packed).unwrap(), b"");
    }

    #[test]
    fn single_byte_roundtrip() {
        let packed = compress(b"x", Level::Default);
        assert_eq!(decompress(&packed).unwrap(), b"x");
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = b"abcabcabcabcabcabcabcabcabcabcabcabc".repeat(100);
        let packed = compress(&data, Level::Default);
        assert!(packed.len() < data.len() / 5, "{} vs {}", packed.len(), data.len());
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn text_like_data_roundtrip() {
        let data =
            "the quick brown fox jumps over the lazy dog. ".repeat(50).into_bytes();
        for level in [Level::Fast, Level::Default, Level::Best] {
            let packed = compress(&data, level);
            assert_eq!(decompress(&packed).unwrap(), data, "level {level:?}");
            assert!(packed.len() < data.len());
        }
    }

    #[test]
    fn random_data_falls_back_to_stored() {
        let mut rng = TestRng::new(1);
        let mut data = vec![0u8; 10_000];
        rng.fill(&mut data);
        let packed = compress(&data, Level::Default);
        // Stored mode: 9 bytes of header overhead only.
        assert_eq!(packed.len(), data.len() + 9);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn long_match_and_far_distance() {
        // A long run (match length 258 path) followed by a far repeat.
        let mut data = vec![b'a'; 1000];
        data.extend_from_slice(&vec![b'b'; 20_000]);
        data.extend_from_slice(&vec![b'a'; 1000]);
        let packed = compress(&data, Level::Best);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn deterministic_output() {
        let data = b"determinism matters for dedup tags".repeat(20);
        assert_eq!(compress(&data, Level::Default), compress(&data, Level::Default));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            decompress(b"NOPE\x00\x00\x00\x00\x00"),
            Err(DeflateError::BadMagic)
        ));
    }

    #[test]
    fn truncated_rejected() {
        let packed = compress(b"hello world hello world", Level::Default);
        for cut in 0..packed.len().min(9) {
            assert!(decompress(&packed[..cut]).is_err());
        }
    }

    #[test]
    fn corrupted_stream_never_panics() {
        let data = b"some reasonably compressible data data data".repeat(10);
        let packed = compress(&data, Level::Default);
        for i in 9..packed.len() {
            let mut corrupted = packed.clone();
            corrupted[i] ^= 0xFF;
            // Any outcome but a panic is acceptable; often an error.
            let _ = decompress(&corrupted);
        }
    }

    #[test]
    fn length_code_table_is_consistent() {
        for len in MIN_MATCH as u16..=MAX_MATCH as u16 {
            let (code, extra, bits) = length_code(len);
            assert!((257..=285).contains(&code), "len {len}");
            let idx = code - 257;
            assert_eq!(LENGTH_BASE[idx] + bits, len);
            assert!(bits < (1 << extra) || extra == 0 && bits == 0);
        }
    }

    #[test]
    fn dist_code_table_is_consistent() {
        for dist in 1..=MAX_DISTANCE as u16 {
            let (code, extra, bits) = dist_code(dist);
            assert!(code < 30);
            assert_eq!(DIST_BASE[code] + bits, dist);
            assert!(bits < (1 << extra) || extra == 0 && bits == 0);
        }
    }

    #[test]
    fn prop_roundtrip_arbitrary() {
        let mut rng = TestRng::new(0xDEF1A7E);
        for _ in 0..64 {
            let data = rng.bytes(2048);
            let packed = compress(&data, Level::Default);
            assert_eq!(decompress(&packed).unwrap(), data);
        }
    }

    #[test]
    fn prop_roundtrip_repetitive() {
        let mut rng = TestRng::new(0xDEF1A7F);
        for _ in 0..16 {
            let len = rng.below(5000);
            let alphabet = b"abcd";
            let data: Vec<u8> =
                (0..len).map(|_| alphabet[rng.below(alphabet.len())]).collect();
            for level in [Level::Fast, Level::Default, Level::Best] {
                let packed = compress(&data, level);
                assert_eq!(decompress(&packed).unwrap(), data);
            }
        }
    }

    #[test]
    fn prop_hostile_input_never_panics() {
        let mut rng = TestRng::new(0xBAD);
        for _ in 0..256 {
            let _ = decompress(&rng.bytes(512));
        }
    }
}
