//! LSB-first bit-level I/O.

use crate::error::DeflateError;

/// Accumulates bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_buffer: u64,
    bit_count: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Writes the low `count` bits of `bits` (count ≤ 32).
    pub fn write_bits(&mut self, bits: u32, count: u8) {
        debug_assert!(count <= 32);
        debug_assert!(count == 32 || u64::from(bits) < (1u64 << count));
        self.bit_buffer |= u64::from(bits) << self.bit_count;
        self.bit_count += count;
        while self.bit_count >= 8 {
            self.bytes.push((self.bit_buffer & 0xFF) as u8);
            self.bit_buffer >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Flushes any partial byte (zero-padded) and returns the bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.bit_count > 0 {
            self.bytes.push((self.bit_buffer & 0xFF) as u8);
        }
        self.bytes
    }

    /// Number of bytes the writer would produce if finished now.
    #[cfg(test)]
    pub fn byte_len(&self) -> usize {
        self.bytes.len() + usize::from(self.bit_count > 0)
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    bit_buffer: u64,
    bit_count: u8,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0, bit_buffer: 0, bit_count: 0 }
    }

    /// Reads `count` bits (count ≤ 32).
    ///
    /// # Errors
    ///
    /// Returns [`DeflateError::Truncated`] if the stream is exhausted.
    pub fn read_bits(&mut self, count: u8) -> Result<u32, DeflateError> {
        debug_assert!(count <= 32);
        while self.bit_count < count {
            if self.pos >= self.bytes.len() {
                return Err(DeflateError::Truncated);
            }
            self.bit_buffer |= u64::from(self.bytes[self.pos]) << self.bit_count;
            self.pos += 1;
            self.bit_count += 8;
        }
        let mask = if count == 32 { u64::MAX >> 32 } else { (1u64 << count) - 1 };
        let out = (self.bit_buffer & mask) as u32;
        self.bit_buffer >>= count;
        self.bit_count -= count;
        Ok(out)
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`DeflateError::Truncated`] at end of stream.
    pub fn read_bit(&mut self) -> Result<u32, DeflateError> {
        self.read_bits(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut writer = BitWriter::new();
        writer.write_bits(0b101, 3);
        writer.write_bits(0xFF, 8);
        writer.write_bits(0, 1);
        writer.write_bits(0x1234, 16);
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        assert_eq!(reader.read_bits(3).unwrap(), 0b101);
        assert_eq!(reader.read_bits(8).unwrap(), 0xFF);
        assert_eq!(reader.read_bits(1).unwrap(), 0);
        assert_eq!(reader.read_bits(16).unwrap(), 0x1234);
    }

    #[test]
    fn zero_count_write_read() {
        let mut writer = BitWriter::new();
        writer.write_bits(0, 0);
        writer.write_bits(1, 1);
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        assert_eq!(reader.read_bits(0).unwrap(), 0);
        assert_eq!(reader.read_bit().unwrap(), 1);
    }

    #[test]
    fn exhausted_reader_errors() {
        let mut reader = BitReader::new(&[0xAB]);
        assert_eq!(reader.read_bits(8).unwrap(), 0xAB);
        assert_eq!(reader.read_bits(1), Err(DeflateError::Truncated));
    }

    #[test]
    fn partial_byte_is_zero_padded() {
        let mut writer = BitWriter::new();
        writer.write_bits(0b1, 1);
        let bytes = writer.into_bytes();
        assert_eq!(bytes, vec![0b1]);
    }

    #[test]
    fn writer_len_matches() {
        let mut writer = BitWriter::new();
        assert_eq!(writer.byte_len(), 0);
        writer.write_bits(1, 1);
        assert_eq!(writer.byte_len(), 1);
        writer.write_bits(0xFF, 8);
        assert_eq!(writer.byte_len(), 2);
    }

    #[test]
    fn many_single_bits() {
        let pattern: Vec<u32> = (0..1000).map(|i| (i * 7 % 2) as u32).collect();
        let mut writer = BitWriter::new();
        for &bit in &pattern {
            writer.write_bits(bit, 1);
        }
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        for &bit in &pattern {
            assert_eq!(reader.read_bit().unwrap(), bit);
        }
    }
}
