use std::error::Error;
use std::fmt;

/// Errors from decompression of malformed or hostile input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeflateError {
    /// The stream does not start with the container magic.
    BadMagic,
    /// The stream ended before the encoded data did.
    Truncated,
    /// The stream is structurally invalid (bad symbol, distance, length).
    Corrupt(String),
    /// A Huffman code table in the header is invalid (over-subscribed or
    /// describes no symbols while data follows).
    BadCodeTable(String),
}

impl fmt::Display for DeflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeflateError::BadMagic => write!(f, "not a speed-deflate stream"),
            DeflateError::Truncated => write!(f, "unexpected end of stream"),
            DeflateError::Corrupt(why) => write!(f, "corrupt stream: {why}"),
            DeflateError::BadCodeTable(why) => write!(f, "invalid code table: {why}"),
        }
    }
}

impl Error for DeflateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DeflateError::BadMagic.to_string().contains("speed-deflate"));
        assert!(DeflateError::Corrupt("x".into()).to_string().contains('x'));
    }
}
