//! LZ77 tokenization with hash-chain match finding and optional lazy
//! matching, structurally equivalent to zlib's deflate front end.

/// Minimum match length worth encoding.
pub const MIN_MATCH: usize = 3;
/// Maximum match length (RFC 1951).
pub const MAX_MATCH: usize = 258;
/// Maximum back-reference distance (32 KiB window).
pub const MAX_DISTANCE: usize = 32 * 1024;

const HASH_BITS: usize = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

/// Compression effort level, controlling match-search depth and lazy
/// evaluation — the analogue of zlib levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// Shallow chains, greedy parsing (zlib ~1).
    Fast,
    /// Moderate chains, lazy parsing (zlib ~6).
    #[default]
    Default,
    /// Deep chains, lazy parsing (zlib ~9).
    Best,
}

impl Level {
    fn max_chain(self) -> usize {
        match self {
            Level::Fast => 8,
            Level::Default => 64,
            Level::Best => 512,
        }
    }

    fn lazy(self) -> bool {
        !matches!(self, Level::Fast)
    }

    /// Matches at least this long stop the search early.
    fn good_enough(self) -> usize {
        match self {
            Level::Fast => 16,
            Level::Default => 64,
            Level::Best => MAX_MATCH,
        }
    }
}

/// One LZ77 token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference of `len` bytes starting `dist` bytes back.
    Match {
        /// Match length in `MIN_MATCH..=MAX_MATCH`.
        len: u16,
        /// Distance in `1..=MAX_DISTANCE`.
        dist: u16,
    },
}

fn hash3(data: &[u8], pos: usize) -> usize {
    let v = (usize::from(data[pos]) << 16)
        | (usize::from(data[pos + 1]) << 8)
        | usize::from(data[pos + 2]);
    (v.wrapping_mul(0x9E3779B1) >> (32 - HASH_BITS)) & (HASH_SIZE - 1)
}

struct Matcher<'a> {
    data: &'a [u8],
    head: Vec<i64>,
    prev: Vec<i64>,
    max_chain: usize,
    good_enough: usize,
}

impl<'a> Matcher<'a> {
    fn new(data: &'a [u8], level: Level) -> Self {
        Matcher {
            data,
            head: vec![-1; HASH_SIZE],
            prev: vec![-1; data.len()],
            max_chain: level.max_chain(),
            good_enough: level.good_enough(),
        }
    }

    fn insert(&mut self, pos: usize) {
        if pos + MIN_MATCH > self.data.len() {
            return;
        }
        let h = hash3(self.data, pos);
        self.prev[pos] = self.head[h];
        self.head[h] = pos as i64;
    }

    /// Finds the longest match at `pos`, returning `(len, dist)`.
    fn find(&self, pos: usize) -> Option<(usize, usize)> {
        if pos + MIN_MATCH > self.data.len() {
            return None;
        }
        let max_len = (self.data.len() - pos).min(MAX_MATCH);
        let h = hash3(self.data, pos);
        let mut candidate = self.head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = 0usize;
        while candidate >= 0 && chain < self.max_chain {
            let cand = candidate as usize;
            if pos - cand > MAX_DISTANCE {
                break;
            }
            // Quick reject: compare the byte past the current best first.
            if best_len < max_len
                && self.data[cand + best_len] == self.data[pos + best_len]
            {
                let mut len = 0usize;
                while len < max_len && self.data[cand + len] == self.data[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = pos - cand;
                    if len >= self.good_enough {
                        break;
                    }
                }
            }
            candidate = self.prev[cand];
            chain += 1;
        }
        (best_len >= MIN_MATCH).then_some((best_len, best_dist))
    }
}

/// Tokenizes `data` with greedy or lazy LZ77 parsing per `level`.
pub fn tokenize(data: &[u8], level: Level) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 3);
    let mut matcher = Matcher::new(data, level);
    let lazy = level.lazy();
    let mut pos = 0usize;
    while pos < data.len() {
        let found = matcher.find(pos);
        match found {
            Some((len, dist)) => {
                // Lazy evaluation: if the next position has a strictly
                // longer match, emit a literal instead (zlib's trick).
                let mut take = true;
                if lazy && len < MAX_MATCH && pos + 1 < data.len() {
                    matcher.insert(pos);
                    if let Some((next_len, _)) = matcher.find(pos + 1) {
                        if next_len > len {
                            tokens.push(Token::Literal(data[pos]));
                            pos += 1;
                            take = false;
                        }
                    }
                    if take {
                        tokens.push(Token::Match { len: len as u16, dist: dist as u16 });
                        // First position was already inserted above.
                        for p in pos + 1..pos + len {
                            matcher.insert(p);
                        }
                        pos += len;
                    }
                } else {
                    tokens.push(Token::Match { len: len as u16, dist: dist as u16 });
                    for p in pos..pos + len {
                        matcher.insert(p);
                    }
                    pos += len;
                }
            }
            None => {
                tokens.push(Token::Literal(data[pos]));
                matcher.insert(pos);
                pos += 1;
            }
        }
    }
    tokens
}

/// Expands tokens back to bytes (reference implementation for tests).
#[cfg(test)]
pub fn detokenize(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for token in tokens {
        match *token {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - usize::from(dist);
                for i in 0..usize::from(len) {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testrand::TestRng;

    #[test]
    fn literal_only_for_unique_bytes() {
        let data = b"abcdefgh";
        let tokens = tokenize(data, Level::Default);
        assert!(tokens.iter().all(|t| matches!(t, Token::Literal(_))));
        assert_eq!(detokenize(&tokens), data);
    }

    #[test]
    fn repeated_pattern_produces_matches() {
        let data = b"abcabcabcabcabc";
        let tokens = tokenize(data, Level::Default);
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        assert_eq!(detokenize(&tokens), data);
        assert!(tokens.len() < data.len());
    }

    #[test]
    fn overlapping_match_run() {
        // "aaaa..." uses a dist-1 overlapping match.
        let data = vec![b'a'; 300];
        let tokens = tokenize(&data, Level::Default);
        assert_eq!(detokenize(&tokens), data);
        let has_overlap =
            tokens.iter().any(|t| matches!(t, Token::Match { dist: 1, .. }));
        assert!(has_overlap);
    }

    #[test]
    fn max_match_length_respected() {
        let data = vec![b'z'; 4096];
        for token in tokenize(&data, Level::Best) {
            if let Token::Match { len, dist } = token {
                assert!(usize::from(len) <= MAX_MATCH);
                assert!(usize::from(dist) <= MAX_DISTANCE);
                assert!(usize::from(len) >= MIN_MATCH);
            }
        }
    }

    #[test]
    fn all_levels_roundtrip() {
        let data: Vec<u8> = (0..5000u32).map(|i| ((i * i) % 7) as u8 + b'a').collect();
        for level in [Level::Fast, Level::Default, Level::Best] {
            assert_eq!(detokenize(&tokenize(&data, level)), data, "{level:?}");
        }
    }

    #[test]
    fn better_level_never_more_tokens_on_redundant_data() {
        let data = b"the cat sat on the mat; the cat sat on the hat".repeat(50);
        let fast = tokenize(&data, Level::Fast).len();
        let best = tokenize(&data, Level::Best).len();
        assert!(best <= fast, "best {best} vs fast {fast}");
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(tokenize(b"", Level::Default).is_empty());
        assert_eq!(detokenize(&tokenize(b"a", Level::Default)), b"a");
        assert_eq!(detokenize(&tokenize(b"ab", Level::Default)), b"ab");
    }

    #[test]
    fn prop_tokenize_detokenize_roundtrip() {
        let mut rng = TestRng::new(0x17_77);
        for _ in 0..64 {
            let data = rng.bytes(2048);
            for level in [Level::Fast, Level::Default, Level::Best] {
                assert_eq!(detokenize(&tokenize(&data, level)), data, "{level:?}");
            }
        }
    }
}
