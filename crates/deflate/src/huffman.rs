//! Canonical, length-limited Huffman coding.
//!
//! Codes are canonical (determined entirely by the code-length vector), so
//! only the lengths travel in the stream header. Encoding emits each code
//! MSB-first (like RFC 1951), which with the LSB-first bit I/O means the
//! encoder writes the bit-reversed code word.

use std::collections::BinaryHeap;

use crate::bitio::{BitReader, BitWriter};
use crate::error::DeflateError;

/// Builds code lengths from symbol frequencies, limited to `max_len` bits.
///
/// Zero-frequency symbols get length 0 (absent from the code).
fn build_lengths(freqs: &[u64], max_len: u8) -> Vec<u8> {
    let nonzero = freqs.iter().filter(|&&f| f > 0).count();
    let mut lengths = vec![0u8; freqs.len()];
    match nonzero {
        0 => return lengths,
        1 => {
            let idx = freqs.iter().position(|&f| f > 0).expect("one nonzero");
            lengths[idx] = 1;
            return lengths;
        }
        _ => {}
    }

    let mut scaled: Vec<u64> = freqs.to_vec();
    loop {
        let lengths_attempt = huffman_depths(&scaled);
        let too_deep = lengths_attempt.iter().any(|&l| l > max_len);
        if !too_deep {
            for (out, len) in lengths.iter_mut().zip(lengths_attempt) {
                *out = len;
            }
            return lengths;
        }
        // Flatten the distribution and retry; converges because all
        // frequencies approach 1 (balanced tree of depth ⌈log₂ n⌉ ≤ 15 for
        // every alphabet in this crate).
        for f in scaled.iter_mut() {
            if *f > 0 {
                *f = (*f / 2).max(1);
            }
        }
    }
}

/// Classic two-queue-free Huffman via a binary heap; returns leaf depths.
fn huffman_depths(freqs: &[u64]) -> Vec<u8> {
    #[derive(PartialEq, Eq)]
    struct HeapNode {
        freq: u64,
        node: usize,
    }
    impl Ord for HeapNode {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Min-heap by frequency; ties by node index for determinism.
            other.freq.cmp(&self.freq).then(other.node.cmp(&self.node))
        }
    }
    impl PartialOrd for HeapNode {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = freqs.len();
    // parents[i] for internal nodes; leaves are 0..n, internal n..
    let mut parents: Vec<usize> = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    for (i, &f) in freqs.iter().enumerate() {
        if f > 0 {
            heap.push(HeapNode { freq: f, node: i });
        }
    }
    let mut next_internal = n;
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        parents.push(usize::MAX);
        let internal = next_internal;
        next_internal += 1;
        parents[a.node] = internal;
        parents[b.node] = internal;
        heap.push(HeapNode { freq: a.freq + b.freq, node: internal });
    }
    let mut depths = vec![0u8; n];
    for i in 0..n {
        if freqs[i] == 0 {
            continue;
        }
        let mut depth = 0u8;
        let mut node = i;
        while parents[node] != usize::MAX {
            node = parents[node];
            depth += 1;
        }
        depths[i] = depth;
    }
    depths
}

/// Assigns canonical code words for a length vector.
///
/// Returns `codes[symbol]` holding the MSB-first code value.
fn assign_codes(lengths: &[u8]) -> Vec<u32> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    let mut length_count = vec![0u32; usize::from(max_len) + 1];
    for &l in lengths {
        if l > 0 {
            length_count[usize::from(l)] += 1;
        }
    }
    let mut next_code = vec![0u32; usize::from(max_len) + 2];
    let mut code = 0u32;
    for len in 1..=usize::from(max_len) {
        code = (code + length_count[len - 1]) << 1;
        next_code[len] = code;
    }
    let mut codes = vec![0u32; lengths.len()];
    for (symbol, &len) in lengths.iter().enumerate() {
        if len > 0 {
            codes[symbol] = next_code[usize::from(len)];
            next_code[usize::from(len)] += 1;
        }
    }
    codes
}

fn reverse_bits(value: u32, len: u8) -> u32 {
    let mut out = 0u32;
    for i in 0..len {
        out |= ((value >> i) & 1) << (len - 1 - i);
    }
    out
}

/// An encoder-side canonical Huffman code.
#[derive(Debug, Clone)]
pub struct CanonicalCode {
    lengths: Vec<u8>,
    reversed_codes: Vec<u32>,
}

impl CanonicalCode {
    /// Builds a length-limited canonical code from frequencies.
    pub fn from_frequencies(freqs: &[u64], max_len: u8) -> Self {
        let lengths = build_lengths(freqs, max_len);
        let codes = assign_codes(&lengths);
        let reversed_codes =
            codes.iter().zip(&lengths).map(|(&c, &l)| reverse_bits(c, l)).collect();
        CanonicalCode { lengths, reversed_codes }
    }

    /// The code-length vector (what travels in the stream header).
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Writes `symbol`'s code word.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `symbol` has no code (zero frequency at build).
    pub fn write(&self, writer: &mut BitWriter, symbol: usize) {
        let len = self.lengths[symbol];
        debug_assert!(len > 0, "symbol {symbol} has no code");
        writer.write_bits(self.reversed_codes[symbol], len);
    }
}

/// A decoder for a canonical Huffman code, reconstructed from lengths.
#[derive(Debug, Clone)]
pub struct Decoder {
    // Per length L: the first canonical code value and the index into
    // `symbols` where codes of length L begin.
    first_code: Vec<u32>,
    first_index: Vec<u32>,
    counts: Vec<u32>,
    symbols: Vec<u16>,
    max_len: u8,
}

impl Decoder {
    /// Validates `lengths` (Kraft inequality) and builds the decoder.
    ///
    /// # Errors
    ///
    /// Returns [`DeflateError::BadCodeTable`] for over-subscribed tables.
    pub fn from_lengths(lengths: &[u8]) -> Result<Self, DeflateError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        if max_len == 0 {
            // Empty code: tolerated, but any read fails.
            return Ok(Decoder {
                first_code: vec![0; 2],
                first_index: vec![0; 2],
                counts: vec![0; 2],
                symbols: Vec::new(),
                max_len: 0,
            });
        }
        let mut counts = vec![0u32; usize::from(max_len) + 1];
        for &l in lengths {
            if l > 0 {
                counts[usize::from(l)] += 1;
            }
        }
        // Kraft check: sum of 2^(max-len) must not exceed 2^max.
        let mut kraft: u64 = 0;
        for (len, &count) in counts.iter().enumerate().skip(1) {
            kraft += u64::from(count) << (usize::from(max_len) - len);
        }
        if kraft > 1u64 << usize::from(max_len) {
            return Err(DeflateError::BadCodeTable("over-subscribed lengths".into()));
        }

        let mut first_code = vec![0u32; usize::from(max_len) + 2];
        let mut first_index = vec![0u32; usize::from(max_len) + 2];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=usize::from(max_len) {
            code = (code + counts[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += counts[len];
        }
        let mut symbols = vec![0u16; index as usize];
        let mut next_index = first_index.clone();
        for (symbol, &len) in lengths.iter().enumerate() {
            if len > 0 {
                symbols[next_index[usize::from(len)] as usize] = symbol as u16;
                next_index[usize::from(len)] += 1;
            }
        }
        Ok(Decoder { first_code, first_index, counts, symbols, max_len })
    }

    /// Reads one symbol.
    ///
    /// # Errors
    ///
    /// Returns [`DeflateError::Corrupt`] for invalid code words or
    /// [`DeflateError::Truncated`] at end of stream.
    pub fn read(&self, reader: &mut BitReader<'_>) -> Result<usize, DeflateError> {
        if self.max_len == 0 {
            return Err(DeflateError::BadCodeTable("empty code table".into()));
        }
        let mut code = 0u32;
        for len in 1..=usize::from(self.max_len) {
            code = (code << 1) | reader.read_bit()?;
            let count = self.counts[len];
            if count > 0
                && code >= self.first_code[len]
                && code - self.first_code[len] < count
            {
                let idx = self.first_index[len] + (code - self.first_code[len]);
                return Ok(usize::from(self.symbols[idx as usize]));
            }
        }
        Err(DeflateError::Corrupt("invalid huffman code word".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(freqs: &[u64], stream: &[usize]) {
        let code = CanonicalCode::from_frequencies(freqs, 15);
        let mut writer = BitWriter::new();
        for &symbol in stream {
            code.write(&mut writer, symbol);
        }
        let bytes = writer.into_bytes();
        let decoder = Decoder::from_lengths(code.lengths()).unwrap();
        let mut reader = BitReader::new(&bytes);
        for &symbol in stream {
            assert_eq!(decoder.read(&mut reader).unwrap(), symbol);
        }
    }

    #[test]
    fn two_symbol_roundtrip() {
        roundtrip(&[5, 3], &[0, 1, 0, 0, 1, 1, 0]);
    }

    #[test]
    fn skewed_distribution_roundtrip() {
        let freqs = [1000, 1, 1, 1, 500, 250, 125, 60];
        let stream: Vec<usize> = (0..200).map(|i| i % 8).collect();
        roundtrip(&freqs, &stream);
    }

    #[test]
    fn single_symbol_gets_length_one() {
        let code = CanonicalCode::from_frequencies(&[0, 42, 0], 15);
        assert_eq!(code.lengths(), &[0, 1, 0]);
        roundtrip(&[0, 42, 0], &[1, 1, 1]);
    }

    #[test]
    fn skewed_code_is_shorter_for_frequent_symbols() {
        let code = CanonicalCode::from_frequencies(&[1_000_000, 1, 1, 1], 15);
        assert!(code.lengths()[0] < code.lengths()[1]);
    }

    #[test]
    fn length_limit_is_respected() {
        // Fibonacci-like frequencies force deep trees without limiting.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let next = a + b;
            a = b;
            b = next;
        }
        let code = CanonicalCode::from_frequencies(&freqs, 15);
        assert!(code.lengths().iter().all(|&l| l <= 15));
        // Still decodable.
        let stream: Vec<usize> = (0..40).collect();
        let mut writer = BitWriter::new();
        for &s in &stream {
            code.write(&mut writer, s);
        }
        let decoder = Decoder::from_lengths(code.lengths()).unwrap();
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        for &s in &stream {
            assert_eq!(decoder.read(&mut reader).unwrap(), s);
        }
    }

    #[test]
    fn oversubscribed_table_rejected() {
        // Three codes of length 1 is impossible.
        assert!(matches!(
            Decoder::from_lengths(&[1, 1, 1]),
            Err(DeflateError::BadCodeTable(_))
        ));
    }

    #[test]
    fn empty_table_reads_fail() {
        let decoder = Decoder::from_lengths(&[0, 0, 0]).unwrap();
        let mut reader = BitReader::new(&[0xFF]);
        assert!(decoder.read(&mut reader).is_err());
    }

    #[test]
    fn kraft_complete_table_accepted() {
        // Lengths {1, 2, 2}: exactly complete.
        let decoder = Decoder::from_lengths(&[1, 2, 2]).unwrap();
        let mut writer = BitWriter::new();
        let code = CanonicalCode::from_frequencies(&[4, 1, 1], 15);
        assert_eq!(code.lengths(), &[1, 2, 2]);
        for s in [0usize, 1, 2, 0] {
            code.write(&mut writer, s);
        }
        let bytes = writer.into_bytes();
        let mut reader = BitReader::new(&bytes);
        for s in [0usize, 1, 2, 0] {
            assert_eq!(decoder.read(&mut reader).unwrap(), s);
        }
    }

    #[test]
    fn reverse_bits_examples() {
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b10, 2), 0b01);
        assert_eq!(reverse_bits(0b1100, 4), 0b0011);
        assert_eq!(reverse_bits(0, 0), 0);
    }

    #[test]
    fn canonical_codes_are_deterministic() {
        let a = CanonicalCode::from_frequencies(&[3, 3, 3, 3], 15);
        let b = CanonicalCode::from_frequencies(&[3, 3, 3, 3], 15);
        assert_eq!(a.lengths(), b.lengths());
    }
}
