//! Point-in-time captures and their two wire formats: Prometheus text
//! exposition and one-JSON-object-per-line (JSONL).
//!
//! Both renderers are hand-rolled — the workspace builds offline, so no
//! serde — and deterministic: series are sorted by name, then labels.

use std::fmt::Write as _;

/// The value of one series at capture time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram state.
    Histogram {
        /// Finite upper-inclusive bucket bounds, ascending (ns).
        bounds: Vec<u64>,
        /// Cumulative observation counts per bound (Prometheus `le`
        /// semantics), same length as `bounds`; `+Inf` is `count`.
        cumulative: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of all observations (ns).
        sum: u64,
    },
}

/// One series captured from a registry.
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// Metric name (see [`crate::names`]).
    pub name: String,
    /// Help text supplied at registration.
    pub help: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: MetricValue,
}

/// A point-in-time capture of a whole registry, ready to render.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// Captured series, sorted by name then labels.
    pub metrics: Vec<MetricSnapshot>,
}

impl TelemetrySnapshot {
    /// Looks up the value of an unlabeled counter or gauge by name.
    pub fn scalar(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find(|m| m.name == name && m.labels.is_empty()).and_then(
            |m| match m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(v),
                MetricValue::Histogram { .. } => None,
            },
        )
    }

    /// Sums a counter across every label combination it was registered with.
    pub fn scalar_sum(&self, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|m| m.name == name)
            .filter_map(|m| match m.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => Some(v),
                MetricValue::Histogram { .. } => None,
            })
            .sum()
    }

    /// Renders the Prometheus text exposition format (version 0.0.4).
    ///
    /// Histograms expand to `_bucket{le="..."}` series (including `+Inf`),
    /// `_sum`, and `_count`. `# HELP`/`# TYPE` headers are emitted once per
    /// metric name.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for metric in &self.metrics {
            if last_name != Some(metric.name.as_str()) {
                let kind = match metric.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram { .. } => "histogram",
                };
                let _ =
                    writeln!(out, "# HELP {} {}", metric.name, escape_help(&metric.help));
                let _ = writeln!(out, "# TYPE {} {}", metric.name, kind);
                last_name = Some(metric.name.as_str());
            }
            match &metric.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        metric.name,
                        render_labels(&metric.labels, None),
                        v
                    );
                }
                MetricValue::Histogram { bounds, cumulative, count, sum } => {
                    for (bound, cum) in bounds.iter().zip(cumulative) {
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            metric.name,
                            render_labels(&metric.labels, Some(&bound.to_string())),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        metric.name,
                        render_labels(&metric.labels, Some("+Inf")),
                        count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        metric.name,
                        render_labels(&metric.labels, None),
                        sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        metric.name,
                        render_labels(&metric.labels, None),
                        count
                    );
                }
            }
        }
        out
    }

    /// Renders one JSON object per series, one per line.
    ///
    /// Scalar lines look like
    /// `{"name":"dedup_hits_total","type":"counter","labels":{},"value":1}`;
    /// histogram lines carry `"buckets":[{"le":250,"count":0},...]` plus
    /// `"count"` and `"sum"`. Consumers can `grep | jq` a stream of these.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for metric in &self.metrics {
            let mut line = String::new();
            let _ = write!(line, "{{\"name\":{}", json_string(&metric.name));
            let kind = match metric.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            let _ = write!(line, ",\"type\":\"{kind}\",\"labels\":{{");
            for (i, (k, v)) in metric.labels.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                let _ = write!(line, "{}:{}", json_string(k), json_string(v));
            }
            line.push('}');
            match &metric.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = write!(line, ",\"value\":{v}");
                }
                MetricValue::Histogram { bounds, cumulative, count, sum } => {
                    line.push_str(",\"buckets\":[");
                    for (i, (bound, cum)) in bounds.iter().zip(cumulative).enumerate() {
                        if i > 0 {
                            line.push(',');
                        }
                        let _ = write!(line, "{{\"le\":{bound},\"count\":{cum}}}");
                    }
                    let _ = write!(line, "],\"count\":{count},\"sum\":{sum}");
                }
            }
            line.push('}');
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Renders `{k="v",...}` with optional trailing `le`, or `""` when empty.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", k, escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escapes a label value per the exposition format: `\`, `"`, newline.
fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Escapes help text per the exposition format: `\` and newline only.
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Serializes a string as a JSON string literal.
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> TelemetrySnapshot {
        let registry = Registry::new();
        registry.counter_with("t_total", "switches", &[("kind", "ecall")]).add(3);
        registry.counter_with("t_total", "switches", &[("kind", "ocall")]).add(2);
        registry.gauge("depth", "queue depth").set(7);
        let hist = registry.histogram_with("lat_ns", "latency", &[], &[100, 1000]);
        hist.observe(50);
        hist.observe(500);
        hist.observe(5000);
        registry.snapshot()
    }

    #[test]
    fn prometheus_render_shape() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE t_total counter"));
        assert!(text.contains("t_total{kind=\"ecall\"} 3"));
        assert!(text.contains("t_total{kind=\"ocall\"} 2"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth 7"));
        assert!(text.contains("lat_ns_bucket{le=\"100\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"1000\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_sum 5550"));
        assert!(text.contains("lat_ns_count 3"));
        // One HELP/TYPE header per name, not per series.
        assert_eq!(text.matches("# TYPE t_total").count(), 1);
    }

    #[test]
    fn jsonl_render_shape() {
        let text = sample().render_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(text.contains(
            "{\"name\":\"depth\",\"type\":\"gauge\",\"labels\":{},\"value\":7}"
        ));
        assert!(text.contains("\"labels\":{\"kind\":\"ecall\"},\"value\":3"));
        assert!(text.contains("\"buckets\":[{\"le\":100,\"count\":1},{\"le\":1000,\"count\":2}],\"count\":3,\"sum\":5550"));
    }

    #[test]
    fn scalar_lookup_and_sum() {
        let snap = sample();
        assert_eq!(snap.scalar("depth"), Some(7));
        assert_eq!(
            snap.scalar("t_total"),
            None,
            "labeled series are not unlabeled scalars"
        );
        assert_eq!(snap.scalar_sum("t_total"), 5);
    }

    #[test]
    fn label_and_json_escaping() {
        let registry = Registry::new();
        registry
            .counter_with("e_total", "has \"quotes\"\nand lines", &[("p", "a\\b\"c")])
            .inc();
        let snap = registry.snapshot();
        let prom = snap.render_prometheus();
        assert!(prom.contains("# HELP e_total has \"quotes\"\\nand lines"));
        assert!(prom.contains("e_total{p=\"a\\\\b\\\"c\"} 1"));
        let jsonl = snap.render_jsonl();
        assert!(jsonl.contains("\"p\":\"a\\\\b\\\"c\""));
    }
}
