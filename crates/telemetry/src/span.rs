//! Timed scopes recording into histograms.

use std::time::Instant;

use crate::metrics::Histogram;

/// A timed scope: observes the elapsed nanoseconds into its histogram when
/// dropped. Create one with [`Histogram::start_span`].
///
/// ```
/// let registry = speed_telemetry::Registry::new();
/// let hist = registry.histogram("work_duration_ns", "time spent working");
/// {
///     let _span = hist.start_span();
///     // ... the timed work ...
/// } // <- observation recorded here
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    start: Instant,
    recorded: bool,
}

impl Span {
    pub(crate) fn new(histogram: Histogram) -> Self {
        Span { histogram, start: Instant::now(), recorded: false }
    }

    /// Nanoseconds elapsed since the span started.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Ends the span early, recording the observation now instead of at
    /// drop. Subsequent drop records nothing.
    pub fn finish(mut self) {
        self.record();
    }

    /// Abandons the span: nothing is recorded (e.g. the guarded operation
    /// failed and its latency would pollute the distribution).
    pub fn cancel(mut self) {
        self.recorded = true;
    }

    fn record(&mut self) {
        if !self.recorded {
            self.recorded = true;
            self.histogram.observe(self.start.elapsed().as_nanos() as u64);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn finish_records_once() {
        let registry = Registry::new();
        let hist = registry.histogram("h_ns", "test");
        let span = hist.start_span();
        span.finish();
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn cancel_records_nothing() {
        let registry = Registry::new();
        let hist = registry.histogram("h_ns", "test");
        let span = hist.start_span();
        span.cancel();
        assert_eq!(hist.count(), 0);
    }
}
