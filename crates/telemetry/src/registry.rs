//! The metric registry: get-or-register handles, snapshot on demand.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

use crate::metrics::{Counter, Gauge, Histogram, DEFAULT_NS_BUCKETS};
use crate::snapshot::{MetricSnapshot, MetricValue, TelemetrySnapshot};

/// A label set, sorted by key at registration so `{a="1",b="2"}` and
/// `{b="2",a="1"}` name the same series.
type Labels = Vec<(String, String)>;

#[derive(Clone, Debug)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Series {
    help: String,
    handle: Handle,
}

/// A collection of named metrics.
///
/// `counter`/`gauge`/`histogram` are get-or-register: the first call for a
/// `(name, labels)` pair creates the series, later calls return a clone of
/// the same handle, so independently constructed components aggregate into
/// one series. Registering a name that already exists with a *different*
/// metric type panics — that is a programming error, not a runtime
/// condition.
///
/// The internal lock is held only during registration and
/// [`snapshot`](Registry::snapshot); recording through a handle never takes
/// it.
#[derive(Debug, Default)]
pub struct Registry {
    series: RwLock<HashMap<(String, Labels), Series>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or registers an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Gets or registers a counter carrying the given labels.
    pub fn counter_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Counter {
        match self.get_or_insert(name, help, labels, || {
            Handle::Counter(Counter(Default::default()))
        }) {
            Handle::Counter(c) => c,
            other => panic!("metric {name} already registered as {}", kind_of(&other)),
        }
    }

    /// Gets or registers an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Gets or registers a gauge carrying the given labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, help, labels, || {
            Handle::Gauge(Gauge(Default::default()))
        }) {
            Handle::Gauge(g) => g,
            other => panic!("metric {name} already registered as {}", kind_of(&other)),
        }
    }

    /// Gets or registers an unlabeled histogram with the
    /// [`DEFAULT_NS_BUCKETS`] bounds.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[], DEFAULT_NS_BUCKETS)
    }

    /// Gets or registers a histogram with explicit labels and bucket bounds.
    ///
    /// If the series already exists its original bounds are kept; bounds are
    /// fixed at first registration.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        buckets: &[u64],
    ) -> Histogram {
        match self.get_or_insert(name, help, labels, || {
            Handle::Histogram(Histogram::new(buckets))
        }) {
            Handle::Histogram(h) => h,
            other => panic!("metric {name} already registered as {}", kind_of(&other)),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut labels: Labels =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        let key = (name.to_string(), labels);
        if let Some(series) = self.series.read().expect("registry poisoned").get(&key) {
            return series.handle.clone();
        }
        let mut map = self.series.write().expect("registry poisoned");
        map.entry(key)
            .or_insert_with(|| Series { help: help.to_string(), handle: make() })
            .handle
            .clone()
    }

    /// Captures every series into a point-in-time [`TelemetrySnapshot`],
    /// sorted by name then labels so renders are deterministic.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let map = self.series.read().expect("registry poisoned");
        let mut metrics: Vec<MetricSnapshot> = map
            .iter()
            .map(|((name, labels), series)| MetricSnapshot {
                name: name.clone(),
                help: series.help.clone(),
                labels: labels.clone(),
                value: match &series.handle {
                    Handle::Counter(c) => MetricValue::Counter(c.get()),
                    Handle::Gauge(g) => MetricValue::Gauge(g.get()),
                    Handle::Histogram(h) => MetricValue::Histogram {
                        bounds: h.bounds().to_vec(),
                        cumulative: h.cumulative_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                },
            })
            .collect();
        metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        TelemetrySnapshot { metrics }
    }
}

fn kind_of(handle: &Handle) -> &'static str {
    match handle {
        Handle::Counter(_) => "counter",
        Handle::Gauge(_) => "gauge",
        Handle::Histogram(_) => "histogram",
    }
}

/// The process-wide registry every component records into.
///
/// Servers render it on a metrics request; `speedctl metrics` prints it;
/// benches dump it at exit. Tests sharing a process should assert monotonic
/// deltas against it (or use a private [`Registry`] for exact values).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_shares_one_cell() {
        let registry = Registry::new();
        let a = registry.counter("c_total", "test");
        let b = registry.counter("c_total", "test");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn labels_distinguish_series_regardless_of_order() {
        let registry = Registry::new();
        let ecalls = registry.counter_with("t_total", "test", &[("kind", "ecall")]);
        let ocalls = registry.counter_with("t_total", "test", &[("kind", "ocall")]);
        ecalls.inc();
        ocalls.add(5);
        assert_eq!(ecalls.get(), 1);
        assert_eq!(ocalls.get(), 5);

        let multi = registry.counter_with("m_total", "test", &[("a", "1"), ("b", "2")]);
        let same = registry.counter_with("m_total", "test", &[("b", "2"), ("a", "1")]);
        multi.inc();
        assert_eq!(same.get(), 1, "label order must not split the series");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x_total", "test");
        registry.gauge("x_total", "test");
    }

    #[test]
    fn snapshot_is_sorted_and_point_in_time() {
        let registry = Registry::new();
        registry.counter("zz_total", "test").inc();
        registry.gauge("aa", "test").set(9);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["aa", "zz_total"]);
    }

    #[test]
    fn global_registry_is_shared() {
        let a = global().counter("registry_test_shared_total", "test");
        let before = a.get();
        global().counter("registry_test_shared_total", "test").inc();
        assert_eq!(a.get(), before + 1);
    }
}
