//! Unified telemetry for the SPEED reproduction.
//!
//! SPEED's value proposition is quantitative — dedup hit ratio, saved
//! recomputation time, and the ECALL/OCALL world-switch cost the paper's
//! Fig. 6 isolates — so every layer of this workspace reports into one
//! metrics registry with one naming scheme instead of scattering ad-hoc
//! counters. This crate is that registry. It is deliberately dependency-free
//! (the workspace builds offline) and lock-light: metric *handles* are
//! `Arc`-wrapped atomics, so the hot paths (an `ECALL`, a dedup lookup, a
//! store request) pay one relaxed atomic RMW per event; the registry lock is
//! only taken at registration and snapshot time.
//!
//! # Model
//!
//! - [`Counter`] — monotonically increasing `u64` (requests served,
//!   transitions performed, bytes copied).
//! - [`Gauge`] — a `u64` that can go up and down (entries resident, replay
//!   queue depth, live workers).
//! - [`Histogram`] — fixed-bucket latency distribution in **nanoseconds**
//!   (bucket bounds are upper-inclusive `le` limits, Prometheus-style).
//! - [`Span`] — a timed scope: created from a histogram, it observes the
//!   elapsed wall time into the histogram when dropped.
//!
//! Metric names are centralized in [`names`]; every name emitted anywhere in
//! the workspace appears there (and in `docs/METRICS.md`, which a test
//! enforces).
//!
//! # Registries
//!
//! Components record into the process-wide [`global()`] registry, which a
//! server renders on a `METRICS_REQUEST` and `speedctl metrics` prints.
//! Unit tests that need exact values construct their own [`Registry`].
//!
//! # Example
//!
//! ```
//! use speed_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("dedup_hits_total", "calls satisfied from the store");
//! hits.inc();
//! let latency = registry.histogram("dedup_call_duration_ns", "marked-call latency");
//! {
//!     let _span = latency.start_span(); // observes on drop
//! }
//! let snapshot = registry.snapshot();
//! assert!(snapshot.render_prometheus().contains("dedup_hits_total 1"));
//! assert_eq!(snapshot.render_jsonl().lines().count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
pub mod names;
mod registry;
mod snapshot;
mod span;

pub use metrics::{Counter, Gauge, Histogram, DEFAULT_NS_BUCKETS};
pub use registry::{global, Registry};
pub use snapshot::{MetricSnapshot, MetricValue, TelemetrySnapshot};
pub use span::Span;
