//! Canonical metric names.
//!
//! Every metric emitted anywhere in the workspace is named by a constant
//! here, and every constant here is documented in `docs/METRICS.md` (the
//! `metrics_docs_cover_every_name` integration test enforces the pairing).
//! Instrumentation code must use these constants — never string literals —
//! so the name set stays closed.
//!
//! Conventions: counters end in `_total`, histograms of nanosecond
//! latencies end in `_ns`, monotonic nanosecond totals end in `_ns_total`,
//! gauges have no suffix. Labels are noted per constant.

// --- speed-enclave: world switches and boundary copies (paper Fig. 6) ---

/// Counter, label `kind` ∈ {`ecall`, `ocall`}: world switches performed.
pub const ENCLAVE_TRANSITIONS_TOTAL: &str = "enclave_transitions_total";
/// Counter: bytes copied across the enclave boundary in either direction.
pub const ENCLAVE_BOUNDARY_BYTES_TOTAL: &str = "enclave_boundary_bytes_total";
/// Counter: modeled nanoseconds charged for switches and boundary copies.
pub const ENCLAVE_CHARGED_NS_TOTAL: &str = "enclave_charged_ns_total";

// --- speed-core: the DedupRuntime data path (Algorithms 1 and 2) ---

/// Counter: marked calls intercepted by any runtime in this process.
pub const DEDUP_CALLS_TOTAL: &str = "dedup_calls_total";
/// Counter: calls satisfied from the store (a dedup hit).
pub const DEDUP_HITS_TOTAL: &str = "dedup_hits_total";
/// Counter: calls that executed the function (initial computations).
pub const DEDUP_MISSES_TOTAL: &str = "dedup_misses_total";
/// Counter: records that failed the Fig. 3 verification protocol.
pub const DEDUP_VERIFY_FAILURES_TOTAL: &str = "dedup_verify_failures_total";
/// Counter: calls the adaptive policy executed without consulting the store.
pub const DEDUP_BYPASSES_TOTAL: &str = "dedup_bypasses_total";
/// Counter: PUTs the store rejected (quota, enclave memory, races).
pub const DEDUP_REJECTED_PUTS_TOTAL: &str = "dedup_rejected_puts_total";
/// Counter: plaintext result bytes reused instead of recomputed.
pub const DEDUP_REUSED_BYTES_TOTAL: &str = "dedup_reused_bytes_total";
/// Counter: calls that degraded to local execution during a store outage.
pub const DEDUP_DEGRADED_CALLS_TOTAL: &str = "dedup_degraded_calls_total";
/// Counter: lookups answered by the in-enclave hot-tag cache.
pub const DEDUP_CACHE_HITS_TOTAL: &str = "dedup_cache_hits_total";
/// Counter: hot-tag cache lookups that missed.
pub const DEDUP_CACHE_MISSES_TOTAL: &str = "dedup_cache_misses_total";

/// Histogram (ns): end-to-end latency of one marked call (`execute_raw`).
pub const DEDUP_CALL_DURATION_NS: &str = "dedup_call_duration_ns";
/// Histogram (ns): end-to-end latency of one `execute_batch` invocation.
pub const DEDUP_BATCH_DURATION_NS: &str = "dedup_batch_duration_ns";
/// Histogram (ns): deriving the tag `t ← Hash(func, m)` inside the enclave.
pub const TAG_DERIVE_DURATION_NS: &str = "tag_derive_duration_ns";
/// Histogram (ns): RCE key recovery + result decryption + verification.
pub const RCE_RECOVER_DURATION_NS: &str = "rce_recover_duration_ns";
/// Histogram (ns): RCE result encryption before publishing.
pub const RCE_ENCRYPT_DURATION_NS: &str = "rce_encrypt_duration_ns";
/// Histogram (ns): in-enclave hot-tag cache lookup (hit or miss).
pub const HOTCACHE_LOOKUP_DURATION_NS: &str = "hotcache_lookup_duration_ns";

// --- speed-core: tiered tag pipeline (prefilter + negative filters) ---

/// Histogram (ns): deriving the cheap 64-bit prefilter tag (length +
/// sparse-sampled short hash) before any full SHA-256 work.
pub const TAG_PREFILTER_DERIVE_DURATION_NS: &str = "tag_prefilter_derive_duration_ns";
/// Counter: hot-cache probes skipped because the cache's prefilter set
/// proved the tag could not be resident.
pub const TAG_PREFILTER_CACHE_SKIPS_TOTAL: &str = "tag_prefilter_cache_skips_total";
/// Counter: store round trips (and, on the lookup path, full SHA-256 tag
/// derivations) skipped because the client's negative filter proved absence.
pub const TAG_PREFILTER_STORE_SKIPS_TOTAL: &str = "tag_prefilter_store_skips_total";
/// Counter: negative-filter snapshots fetched from the store (staleness
/// budget refreshes).
pub const TAG_PREFILTER_REFRESHES_TOTAL: &str = "tag_prefilter_refreshes_total";

// --- speed-core: streaming chunked dedup (StreamSession + chunker) ---

/// Counter: chunks processed by streaming dedup sessions.
pub const STREAM_CHUNKS_TOTAL: &str = "stream_chunks_total";
/// Counter: stream chunks satisfied without executing the function
/// (store hit or in-enclave hot-cache hit).
pub const STREAM_CHUNK_HITS_TOTAL: &str = "stream_chunk_hits_total";
/// Counter: input bytes consumed by streaming dedup sessions.
pub const STREAM_BYTES_TOTAL: &str = "stream_bytes_total";
/// Histogram (ns): one mid-stream or final chunk-batch flush (an
/// `execute_batch` call made by a `StreamSession`).
pub const STREAM_FLUSH_DURATION_NS: &str = "stream_flush_duration_ns";
/// Counter: chunk cuts forced by the `max` bound instead of found by the
/// rolling-hash content test.
pub const CHUNKER_FORCED_CUTS_TOTAL: &str = "chunker_forced_cuts_total";

// --- speed-core resilience: the fault-tolerant store path ---

/// Counter: round-trip attempts retried with backoff.
pub const RESILIENCE_RETRIES_TOTAL: &str = "resilience_retries_total";
/// Counter: reconnects (each runs the full attested handshake again).
pub const RESILIENCE_RECONNECTS_TOTAL: &str = "resilience_reconnects_total";
/// Counter: circuit-breaker state transitions (closed/open/half-open).
pub const RESILIENCE_BREAKER_TRANSITIONS_TOTAL: &str =
    "resilience_breaker_transitions_total";
/// Counter: round-trips refused immediately by the open breaker.
pub const RESILIENCE_FAST_FAILS_TOTAL: &str = "resilience_fast_fails_total";
/// Counter: round-trips abandoned after exhausting retries or the deadline.
pub const RESILIENCE_GIVEUPS_TOTAL: &str = "resilience_giveups_total";
/// Counter: queued PUTs delivered after the store recovered.
pub const RESILIENCE_REPLAYED_PUTS_TOTAL: &str = "resilience_replayed_puts_total";
/// Counter: queued PUTs evicted because the bounded replay queue overflowed.
pub const RESILIENCE_REPLAY_DROPPED_TOTAL: &str = "resilience_replay_dropped_total";
/// Gauge: PUTs currently parked in the replay queue.
pub const RESILIENCE_REPLAY_QUEUE_DEPTH: &str = "resilience_replay_queue_depth";

// --- speed-core cluster: consistent-hash routing and replication ---
//
// Per-node series carry a `node` label holding the numeric node id from
// the cluster ring, so a 3-node client emits e.g. `cluster_node_up{node=0}`
// … `{node=2}`. Sum (counters) or inspect per label as appropriate.

/// Counter, label `node`: requests the cluster client routed to one node.
pub const CLUSTER_ROUTED_REQUESTS_TOTAL: &str = "cluster_routed_requests_total";
/// Counter, label `node`: requests that failed over past one unreachable
/// replica to the next one on the ring.
pub const CLUSTER_FAILOVERS_TOTAL: &str = "cluster_failovers_total";
/// Counter: acknowledged PUTs parked as hints because a replica was down.
pub const CLUSTER_HINTED_PUTS_TOTAL: &str = "cluster_hinted_puts_total";
/// Counter: hinted PUTs delivered after re-routing through the current ring.
pub const CLUSTER_HINTS_REPLAYED_TOTAL: &str = "cluster_hints_replayed_total";
/// Counter: hinted PUTs evicted because the bounded hint queue overflowed.
pub const CLUSTER_HINTS_DROPPED_TOTAL: &str = "cluster_hints_dropped_total";
/// Gauge: PUTs currently parked in the cluster hint queue.
pub const CLUSTER_HINT_QUEUE_DEPTH: &str = "cluster_hint_queue_depth";
/// Gauge, label `node`: 1 while the node answered its last round-trip,
/// 0 after a failure (last observation wins).
pub const CLUSTER_NODE_UP: &str = "cluster_node_up";
/// Gauge, label `node`: re-attested reconnects performed against one node
/// (mirrors the node's `ResilienceStats::reconnects`).
pub const CLUSTER_NODE_REATTESTATIONS: &str = "cluster_node_reattestations";
/// Gauge: version of the ring the cluster client currently routes by.
pub const CLUSTER_RING_VERSION: &str = "cluster_ring_version";
/// Gauge: member nodes on the ring the cluster client currently routes by.
pub const CLUSTER_RING_NODES: &str = "cluster_ring_nodes";

// --- speed-store: the encrypted ResultStore ---

/// Counter: GET requests served (single and batched).
pub const STORE_GETS_TOTAL: &str = "store_gets_total";
/// Counter: GETs that found a record (store-side dedup hits).
pub const STORE_HITS_TOTAL: &str = "store_hits_total";
/// Counter: PUT requests served (single and batched).
pub const STORE_PUTS_TOTAL: &str = "store_puts_total";
/// Counter: PUTs rejected (quota, enclave memory pressure).
pub const STORE_REJECTED_PUTS_TOTAL: &str = "store_rejected_puts_total";
/// Counter: LRU evictions across all shards.
pub const STORE_EVICTIONS_TOTAL: &str = "store_evictions_total";
/// Gauge: entries resident in the metadata dictionary, all shards.
pub const STORE_ENTRIES: &str = "store_entries";
/// Gauge: ciphertext bytes held outside the enclave, all shards.
pub const STORE_STORED_BYTES: &str = "store_stored_bytes";
/// Histogram (ns): serving one protocol message in `ResultStore::handle`.
pub const STORE_REQUEST_DURATION_NS: &str = "store_request_duration_ns";

// --- speed-store: per-shard negative-lookup filters ---

/// Counter: `FILTER_REQUEST` messages served (filter snapshots shipped).
pub const STORE_FILTER_REQUESTS_TOTAL: &str = "store_filter_requests_total";
/// Counter: prefilter tags inserted into a shard's negative filter.
pub const STORE_FILTER_INSERTS_TOTAL: &str = "store_filter_inserts_total";
/// Counter: insertions whose prefilter tag was unknown, marking the shard's
/// filter incomplete (it answers "maybe" until rebuilt).
pub const STORE_FILTER_INCOMPLETE_TOTAL: &str = "store_filter_incomplete_total";
/// Counter: filter rebuilds from the live index (on open / after import).
pub const STORE_FILTER_REBUILDS_TOTAL: &str = "store_filter_rebuilds_total";
/// Counter: prefiltered batch-GET items answered "not found" straight from
/// the shard's negative filter, without entering the batch ECALL's shard
/// groups (filter-aware batch GET planning).
pub const STORE_FILTER_BATCH_SKIPS_TOTAL: &str = "store_filter_batch_skips_total";

// --- speed-store durability: log backend, checkpoints, snapshots ---

/// Counter: WAL records appended by the log backend.
pub const STORE_WAL_APPENDS_TOTAL: &str = "store_wal_appends_total";
/// Counter: framed WAL bytes appended by the log backend.
pub const STORE_WAL_APPENDED_BYTES_TOTAL: &str = "store_wal_appended_bytes_total";
/// Counter: WAL records replayed on top of the checkpoint during recovery.
pub const STORE_WAL_REPLAY_RECORDS_TOTAL: &str = "store_wal_replay_records_total";
/// Counter: segment files whose torn/corrupt tail was truncated on open.
pub const STORE_WAL_TORN_SEGMENTS_TOTAL: &str = "store_wal_torn_segments_total";
/// Counter: checkpoints written by the log backend.
pub const STORE_CHECKPOINTS_TOTAL: &str = "store_checkpoints_total";
/// Counter: compaction passes that rewrote a segment.
pub const STORE_COMPACTIONS_TOTAL: &str = "store_compactions_total";
/// Counter: dead log bytes reclaimed by checkpoints and compaction.
pub const STORE_COMPACTION_RECLAIMED_BYTES_TOTAL: &str =
    "store_compaction_reclaimed_bytes_total";
/// Histogram (ns): one backend open/recovery pass (checkpoint + replay).
pub const STORE_RECOVERY_DURATION_NS: &str = "store_recovery_duration_ns";
/// Counter: corrupt snapshots/checkpoints quarantined to `*.corrupt`.
pub const STORE_SNAPSHOT_QUARANTINED_TOTAL: &str = "store_snapshot_quarantined_total";
/// Gauge: 1 while the store is degraded to read-only after a durability
/// failure (failed append/fsync, disk full), 0 otherwise.
pub const STORE_READ_ONLY: &str = "store_read_only";

/// Gauge, label `shard`: entries held by one dictionary shard.
pub const STORE_SHARD_ENTRIES: &str = "store_shard_entries";
/// Gauge, label `shard`: ciphertext bytes referenced by one shard.
pub const STORE_SHARD_STORED_BYTES: &str = "store_shard_stored_bytes";
/// Counter, label `shard`: LRU evictions performed by one shard.
pub const STORE_SHARD_EVICTIONS_TOTAL: &str = "store_shard_evictions_total";
/// Counter, label `shard`: lock acquisitions that found the shard busy.
pub const STORE_SHARD_LOCK_CONTENTION_TOTAL: &str = "store_shard_lock_contention_total";
/// Counter, label `shard`: nanoseconds spent holding the shard's dict lock.
pub const STORE_SHARD_BUSY_NS_TOTAL: &str = "store_shard_busy_ns_total";

// --- speed-store server: the TCP front end's event loop ---
//
// Every server metric carries a `server` label (a process-unique instance
// id) so two servers in one process never stomp each other's series.

/// Gauge, label `server`: I/O event-loop threads owned by one server.
pub const SERVER_IO_THREADS: &str = "server_io_threads";
/// Gauge, label `server`: connections currently open.
pub const SERVER_CONNECTIONS_ACTIVE: &str = "server_connections_active";
/// Gauge, label `server`: high-water mark of concurrently open connections.
pub const SERVER_CONNECTIONS_PEAK: &str = "server_connections_peak";
/// Counter, label `server`: connections accepted over the server's lifetime.
pub const SERVER_CONNECTIONS_ACCEPTED_TOTAL: &str = "server_connections_accepted_total";
/// Counter, label `server`: connections refused with a busy frame because
/// the connection budget was saturated.
pub const SERVER_CONNECTIONS_REJECTED_TOTAL: &str = "server_connections_rejected_total";
/// Counter, label `server`: connections dropped on a protocol violation
/// (bad quote, unopenable sealed frame, oversized or truncated frame).
pub const SERVER_PROTOCOL_ERRORS_TOTAL: &str = "server_protocol_errors_total";
/// Counter, label `server`: connections dropped because a frame (or the
/// handshake) failed to complete within the per-frame deadline.
pub const SERVER_FRAME_TIMEOUTS_TOTAL: &str = "server_frame_timeouts_total";

// --- speed-store server: switchless call rings ---

/// Counter, label `server`: requests submitted to a switchless ring.
pub const SWITCHLESS_REQUESTS_TOTAL: &str = "switchless_requests_total";
/// Counter, label `server`: responses drained from a switchless ring.
pub const SWITCHLESS_RESPONSES_TOTAL: &str = "switchless_responses_total";
/// Counter, label `server`: hot-path requests that fell back to the
/// classic ECALL path (ring full or switchless disabled).
pub const SWITCHLESS_FALLBACKS_TOTAL: &str = "switchless_fallbacks_total";
/// Counter: enclave calls served by a resident switchless worker without
/// a world switch (boundary-copy bytes are still charged).
pub const ENCLAVE_SWITCHLESS_CALLS_TOTAL: &str = "enclave_switchless_calls_total";

/// Every metric name the workspace emits, for docs-coverage enforcement.
pub const ALL: &[&str] = &[
    ENCLAVE_TRANSITIONS_TOTAL,
    ENCLAVE_BOUNDARY_BYTES_TOTAL,
    ENCLAVE_CHARGED_NS_TOTAL,
    DEDUP_CALLS_TOTAL,
    DEDUP_HITS_TOTAL,
    DEDUP_MISSES_TOTAL,
    DEDUP_VERIFY_FAILURES_TOTAL,
    DEDUP_BYPASSES_TOTAL,
    DEDUP_REJECTED_PUTS_TOTAL,
    DEDUP_REUSED_BYTES_TOTAL,
    DEDUP_DEGRADED_CALLS_TOTAL,
    DEDUP_CACHE_HITS_TOTAL,
    DEDUP_CACHE_MISSES_TOTAL,
    DEDUP_CALL_DURATION_NS,
    DEDUP_BATCH_DURATION_NS,
    TAG_DERIVE_DURATION_NS,
    RCE_RECOVER_DURATION_NS,
    RCE_ENCRYPT_DURATION_NS,
    HOTCACHE_LOOKUP_DURATION_NS,
    TAG_PREFILTER_DERIVE_DURATION_NS,
    TAG_PREFILTER_CACHE_SKIPS_TOTAL,
    TAG_PREFILTER_STORE_SKIPS_TOTAL,
    TAG_PREFILTER_REFRESHES_TOTAL,
    STREAM_CHUNKS_TOTAL,
    STREAM_CHUNK_HITS_TOTAL,
    STREAM_BYTES_TOTAL,
    STREAM_FLUSH_DURATION_NS,
    CHUNKER_FORCED_CUTS_TOTAL,
    RESILIENCE_RETRIES_TOTAL,
    RESILIENCE_RECONNECTS_TOTAL,
    RESILIENCE_BREAKER_TRANSITIONS_TOTAL,
    RESILIENCE_FAST_FAILS_TOTAL,
    RESILIENCE_GIVEUPS_TOTAL,
    RESILIENCE_REPLAYED_PUTS_TOTAL,
    RESILIENCE_REPLAY_DROPPED_TOTAL,
    RESILIENCE_REPLAY_QUEUE_DEPTH,
    CLUSTER_ROUTED_REQUESTS_TOTAL,
    CLUSTER_FAILOVERS_TOTAL,
    CLUSTER_HINTED_PUTS_TOTAL,
    CLUSTER_HINTS_REPLAYED_TOTAL,
    CLUSTER_HINTS_DROPPED_TOTAL,
    CLUSTER_HINT_QUEUE_DEPTH,
    CLUSTER_NODE_UP,
    CLUSTER_NODE_REATTESTATIONS,
    CLUSTER_RING_VERSION,
    CLUSTER_RING_NODES,
    STORE_GETS_TOTAL,
    STORE_HITS_TOTAL,
    STORE_PUTS_TOTAL,
    STORE_REJECTED_PUTS_TOTAL,
    STORE_EVICTIONS_TOTAL,
    STORE_ENTRIES,
    STORE_STORED_BYTES,
    STORE_REQUEST_DURATION_NS,
    STORE_FILTER_REQUESTS_TOTAL,
    STORE_FILTER_INSERTS_TOTAL,
    STORE_FILTER_INCOMPLETE_TOTAL,
    STORE_FILTER_REBUILDS_TOTAL,
    STORE_FILTER_BATCH_SKIPS_TOTAL,
    STORE_WAL_APPENDS_TOTAL,
    STORE_WAL_APPENDED_BYTES_TOTAL,
    STORE_WAL_REPLAY_RECORDS_TOTAL,
    STORE_WAL_TORN_SEGMENTS_TOTAL,
    STORE_CHECKPOINTS_TOTAL,
    STORE_COMPACTIONS_TOTAL,
    STORE_COMPACTION_RECLAIMED_BYTES_TOTAL,
    STORE_RECOVERY_DURATION_NS,
    STORE_SNAPSHOT_QUARANTINED_TOTAL,
    STORE_READ_ONLY,
    STORE_SHARD_ENTRIES,
    STORE_SHARD_STORED_BYTES,
    STORE_SHARD_EVICTIONS_TOTAL,
    STORE_SHARD_LOCK_CONTENTION_TOTAL,
    STORE_SHARD_BUSY_NS_TOTAL,
    SERVER_IO_THREADS,
    SERVER_CONNECTIONS_ACTIVE,
    SERVER_CONNECTIONS_PEAK,
    SERVER_CONNECTIONS_ACCEPTED_TOTAL,
    SERVER_CONNECTIONS_REJECTED_TOTAL,
    SERVER_PROTOCOL_ERRORS_TOTAL,
    SERVER_FRAME_TIMEOUTS_TOTAL,
    SWITCHLESS_REQUESTS_TOTAL,
    SWITCHLESS_RESPONSES_TOTAL,
    SWITCHLESS_FALLBACKS_TOTAL,
    ENCLAVE_SWITCHLESS_CALLS_TOTAL,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for name in ALL {
            assert!(seen.insert(name), "duplicate metric name {name}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "metric name {name} must be snake_case ascii"
            );
        }
    }
}
