//! The metric handles: lock-free atomics behind `Arc`s.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::span::Span;

/// Default histogram bucket upper bounds, in nanoseconds.
///
/// Powers of eight from 250 ns to ~2.1 s: wide enough to separate an
/// in-enclave hot-cache hit (hundreds of nanoseconds) from an attested TCP
/// round-trip (hundreds of microseconds) from a recomputation of a SIFT
/// pyramid (tens to hundreds of milliseconds). An implicit `+Inf` bucket is
/// always appended.
pub const DEFAULT_NS_BUCKETS: &[u64] = &[
    250,
    1_000,
    8_000,
    64_000,
    512_000,
    4_096_000,
    32_768_000,
    262_144_000,
    2_097_152_000,
];

/// A monotonically increasing counter.
///
/// Cloning is cheap (an `Arc` bump); all clones share the same cell.
#[derive(Clone, Debug)]
pub struct Counter(pub(crate) Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the counter with an externally tracked monotonic total.
    ///
    /// Used when an existing subsystem already keeps its own monotonic
    /// counter (e.g. the store's per-shard `busy_ns`) and the registry
    /// mirrors it at snapshot time instead of double-bookkeeping the hot
    /// path. The caller is responsible for `total` being monotonic.
    pub fn set_total(&self, total: u64) {
        self.0.store(total, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (queue depth, resident entries).
#[derive(Clone, Debug)]
pub struct Gauge(pub(crate) Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `value`.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrements by `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        // fetch_update never fails with a total function; saturating_sub
        // keeps a racy double-decrement from wrapping to u64::MAX.
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(n))
        });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared histogram state: one atomic per bucket plus count and sum.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Upper bounds (inclusive `le` limits) of the finite buckets, ascending.
    pub(crate) bounds: Box<[u64]>,
    /// Per-bucket observation counts; `counts[bounds.len()]` is `+Inf`.
    pub(crate) counts: Box<[AtomicU64]>,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

/// A fixed-bucket latency histogram over `u64` nanosecond observations.
#[derive(Clone, Debug)]
pub struct Histogram(pub(crate) Arc<HistogramCore>);

impl Histogram {
    pub(crate) fn new(bounds: &[u64]) -> Self {
        let bounds: Box<[u64]> = bounds.into();
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one observation (binary search for the first bucket whose
    /// upper bound admits `value`; the `+Inf` bucket catches the rest).
    pub fn observe(&self, value: u64) {
        let core = &self.0;
        let index = core.bounds.partition_point(|&bound| bound < value);
        core.counts[index].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records the nanoseconds elapsed since `start`.
    pub fn observe_since(&self, start: std::time::Instant) {
        self.observe(start.elapsed().as_nanos() as u64);
    }

    /// Starts a timed scope; the elapsed time is observed when the returned
    /// [`Span`] drops.
    pub fn start_span(&self) -> Span {
        Span::new(self.clone())
    }

    /// Times `body`, observing its wall-clock duration.
    pub fn time<R>(&self, body: impl FnOnce() -> R) -> R {
        let start = std::time::Instant::now();
        let result = body();
        self.observe_since(start);
        result
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values (nanoseconds).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The finite bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }

    /// Cumulative count of observations `<= bound` for each finite bound,
    /// in bound order (the Prometheus `le` semantics), excluding `+Inf`.
    pub fn cumulative_counts(&self) -> Vec<u64> {
        let mut running = 0u64;
        self.0
            .bounds
            .iter()
            .enumerate()
            .map(|(i, _)| {
                running += self.0.counts[i].load(Ordering::Relaxed);
                running
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let counter = Counter(Arc::new(AtomicU64::new(0)));
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);
        counter.set_total(100);
        assert_eq!(counter.get(), 100);

        let gauge = Gauge(Arc::new(AtomicU64::new(0)));
        gauge.set(7);
        gauge.add(3);
        gauge.sub(5);
        assert_eq!(gauge.get(), 5);
        gauge.sub(50);
        assert_eq!(gauge.get(), 0, "gauge must saturate, not wrap");
    }

    #[test]
    fn histogram_bucket_boundaries_are_upper_inclusive() {
        let hist = Histogram::new(&[10, 100, 1000]);
        // Exactly on a bound lands in that bound's bucket (le semantics).
        hist.observe(10);
        hist.observe(11);
        hist.observe(100);
        hist.observe(1000);
        hist.observe(1001); // +Inf
        assert_eq!(hist.cumulative_counts(), vec![1, 3, 4]);
        assert_eq!(hist.count(), 5);
        assert_eq!(hist.sum(), 10 + 11 + 100 + 1000 + 1001);
    }

    #[test]
    fn histogram_zero_and_max_values() {
        let hist = Histogram::new(&[10]);
        hist.observe(0);
        hist.observe(u64::MAX);
        assert_eq!(hist.cumulative_counts(), vec![1]);
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn default_buckets_ascend() {
        assert!(DEFAULT_NS_BUCKETS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn span_records_on_drop() {
        let hist = Histogram::new(DEFAULT_NS_BUCKETS);
        {
            let _span = hist.start_span();
        }
        assert_eq!(hist.count(), 1);
        let out = hist.time(|| 42);
        assert_eq!(out, 42);
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn concurrent_counter_increments_do_not_lose_updates() {
        let counter = Counter(Arc::new(AtomicU64::new(0)));
        let hist = Histogram::new(&[100, 10_000]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = counter.clone();
                let hist = hist.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        counter.inc();
                        hist.observe(i % 200);
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
        assert_eq!(hist.count(), 80_000);
        // 0..=100 of every 200-cycle: 101 of 200 observations per cycle.
        assert_eq!(hist.cumulative_counts()[0], 8 * 10_000 / 200 * 101);
        assert_eq!(hist.cumulative_counts()[1], 80_000);
    }
}
