//! Criterion bench for Table I: the cryptographic operations of
//! `DedupRuntime` at the paper's four input sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use speed_bench::apps::DedupEnv;
use speed_core::{rce, secondary_key, tag_for, FuncDesc};
use speed_crypto::{AesGcm128, Key128, SystemRng};
use speed_enclave::CostModel;

fn bench_crypto_ops(c: &mut Criterion) {
    let env = DedupEnv::new(CostModel::no_sgx());
    let runtime = env.runtime(b"bench-crypto");
    let identity = runtime
        .resolve(&FuncDesc::new("zlib", "1.2.11", "int deflate(...)"))
        .expect("registered");
    let mut rng = SystemRng::seeded(1);

    let mut group = c.benchmark_group("table1");
    for size in [1usize << 10, 10 << 10, 100 << 10, 1 << 20] {
        let mut input = vec![0u8; size];
        rng.fill(&mut input);
        group.throughput(Throughput::Bytes(size as u64));

        group.bench_with_input(BenchmarkId::new("tag_gen", size), &input, |b, input| {
            b.iter(|| tag_for(&identity, input))
        });

        group.bench_with_input(BenchmarkId::new("key_gen", size), &input, |b, input| {
            let mut rng = SystemRng::seeded(2);
            b.iter(|| {
                let r = rng.gen_challenge(32);
                let h = secondary_key(&identity, input, &r);
                rng.gen_key().xor_pad(&h)
            })
        });

        let challenge = rng.gen_challenge(32);
        let wrapped =
            Key128::from_bytes([7; 16]).xor_pad(&secondary_key(&identity, &input, &challenge));
        group.bench_with_input(BenchmarkId::new("key_rec", size), &input, |b, input| {
            b.iter(|| wrapped.xor_pad(&secondary_key(&identity, input, &challenge)))
        });

        let key = Key128::from_bytes([7; 16]);
        let cipher = AesGcm128::new(&key);
        let nonce = rng.gen_nonce();
        group.bench_with_input(
            BenchmarkId::new("result_enc", size),
            &input,
            |b, input| b.iter(|| cipher.seal(&nonce, b"aad", input)),
        );

        let boxed = cipher.seal(&nonce, b"aad", &input);
        group.bench_with_input(BenchmarkId::new("result_dec", size), &boxed, |b, boxed| {
            b.iter(|| cipher.open(&nonce, b"aad", boxed).expect("valid"))
        });

        group.bench_with_input(
            BenchmarkId::new("full_rce_encrypt", size),
            &input,
            |b, input| {
                let mut rng = SystemRng::seeded(3);
                b.iter(|| rce::encrypt_result(&identity, input, input, &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_crypto_ops
}
criterion_main!(benches);
