//! Criterion bench for Fig. 5: per-application baseline vs initial vs
//! subsequent computation (small fixed inputs — the full sweep lives in
//! the `repro` binary).
//!
//! Times fold in the simulated SGX overhead accrued on the platform clock,
//! like the `repro` binary does.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use speed_bench::apps::{App, DedupEnv};
use speed_enclave::CostModel;

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);

    for app in App::ALL {
        let size = app.fig5_sizes()[0];
        let input = app.generate_input(size, 99);

        group.bench_function(BenchmarkId::new("baseline", format!("{app:?}")), |b| {
            let env = DedupEnv::new(CostModel::default_sgx());
            let enclave = env.platform.create_enclave(b"bench-baseline").unwrap();
            b.iter_custom(|iters| {
                let sim_before = env.platform.clock().total_ns();
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(
                        enclave.ecall("app_main", || app.compute(&input)),
                    );
                }
                let sim = env.platform.clock().total_ns() - sim_before;
                start.elapsed() + Duration::from_nanos(sim)
            })
        });

        group.bench_function(BenchmarkId::new("initial", format!("{app:?}")), |b| {
            // Every iteration must be a miss: vary the input per iteration.
            let env = DedupEnv::new(CostModel::default_sgx());
            let runtime = env.runtime(b"bench-initial");
            let identity = runtime.resolve(&app.desc()).unwrap();
            let mut seed = 0u64;
            b.iter_custom(|iters| {
                // Input generation stays outside the measured window.
                let inputs: Vec<Vec<u8>> = (0..iters)
                    .map(|k| app.generate_input(size, 1_000_000 + seed + k))
                    .collect();
                seed += iters;
                let sim_before = env.platform.clock().total_ns();
                let start = Instant::now();
                for fresh in &inputs {
                    std::hint::black_box(
                        runtime
                            .execute_raw(&identity, fresh, |bytes| app.compute(bytes))
                            .expect("store reachable"),
                    );
                }
                let sim = env.platform.clock().total_ns() - sim_before;
                start.elapsed() + Duration::from_nanos(sim)
            })
        });

        group.bench_function(BenchmarkId::new("subsequent", format!("{app:?}")), |b| {
            let env = DedupEnv::new(CostModel::default_sgx());
            let runtime = env.runtime(b"bench-subsequent");
            let identity = runtime.resolve(&app.desc()).unwrap();
            // Prime the store once.
            runtime
                .execute_raw(&identity, &input, |bytes| app.compute(bytes))
                .expect("store reachable");
            b.iter_custom(|iters| {
                let sim_before = env.platform.clock().total_ns();
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(
                        runtime
                            .execute_raw(&identity, &input, |_| unreachable!("must hit"))
                            .expect("store reachable"),
                    );
                }
                let sim = env.platform.clock().total_ns() - sim_before;
                start.elapsed() + Duration::from_nanos(sim)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_apps
}
criterion_main!(benches);
