//! Criterion bench for Fig. 6: ResultStore GET/PUT throughput with and
//! without SGX at the paper's result sizes.
//!
//! Measured time is wall clock **plus** the simulated SGX overhead accrued
//! on the platform clock (world switches, boundary copies) — `iter_custom`
//! folds both in, matching how the `repro` binary reports Fig. 6.
//!
//! The PUT benches run against a small-capacity store so steady-state LRU
//! eviction bounds memory: the measured operation is "PUT under
//! replacement", the regime a long-running store lives in.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use speed_bench::apps::DedupEnv;
use speed_enclave::CostModel;
use speed_store::StoreConfig;
use speed_wire::{AppId, CompTag, Message, Record};

fn tag_of(i: u64) -> CompTag {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&i.to_le_bytes());
    CompTag::from_bytes(bytes)
}

fn record_of(size: usize) -> Record {
    Record {
        challenge: vec![1; 32],
        wrapped_key: [2; 16],
        nonce: [3; 12],
        boxed_result: vec![4; size],
    }
}

/// Store bounded to 512 entries / 768 MiB: big enough that lookups are
/// realistic, small enough that unbounded PUT streams stay in memory.
fn bounded_env(model: CostModel) -> DedupEnv {
    DedupEnv::with_store_config(model, StoreConfig::with_capacity(512, 768 << 20))
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    for (label, model) in
        [("sgx", CostModel::default_sgx()), ("no_sgx", CostModel::no_sgx())]
    {
        for size in [1usize << 10, 10 << 10, 100 << 10, 1 << 20] {
            group.throughput(Throughput::Bytes(size as u64));

            group.bench_function(BenchmarkId::new(format!("put_{label}"), size), |b| {
                let env = bounded_env(model);
                let mut i = 0u64;
                b.iter_custom(|iters| {
                    let sim_before = env.platform.clock().total_ns();
                    let start = Instant::now();
                    for _ in 0..iters {
                        i += 1;
                        env.store.handle(Message::PutRequest {
                            app: AppId(1),
                            tag: tag_of(i),
                            record: record_of(size),
                        });
                    }
                    let sim = env.platform.clock().total_ns() - sim_before;
                    start.elapsed() + Duration::from_nanos(sim)
                })
            });

            group.bench_function(BenchmarkId::new(format!("get_{label}"), size), |b| {
                let env = bounded_env(model);
                for i in 0..128u64 {
                    env.store.handle(Message::PutRequest {
                        app: AppId(1),
                        tag: tag_of(i),
                        record: record_of(size),
                    });
                }
                let mut i = 0u64;
                b.iter_custom(|iters| {
                    let sim_before = env.platform.clock().total_ns();
                    let start = Instant::now();
                    for _ in 0..iters {
                        i = (i + 1) % 128;
                        env.store.handle(Message::GetRequest {
                            app: AppId(2),
                            tag: tag_of(i),
                        });
                    }
                    let sim = env.platform.clock().total_ns() - sim_before;
                    start.elapsed() + Duration::from_nanos(sim)
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_store
}
criterion_main!(benches);
