//! Table I — latency of the cryptographic operations in `DedupRuntime`
//! under four input sizes (1 KB, 10 KB, 100 KB, 1 MB).

use std::time::{Duration, Instant};

use speed_core::{rce, secondary_key, tag_for, FuncDesc};
use speed_crypto::{AesGcm128, Key128, SystemRng};

use crate::apps::DedupEnv;
use crate::harness::{fmt_bytes, render_table};

/// The paper's input sizes.
pub const SIZES: [usize; 4] = [1 << 10, 10 << 10, 100 << 10, 1 << 20];

/// One row of Table I.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Input size in bytes.
    pub input_bytes: usize,
    /// `t ← Hash(func, m)` — tag generation.
    pub tag_gen: Duration,
    /// Key generation and protection: pick `r`, compute `h`, generate `k`,
    /// wrap `[k] = k ⊕ h`.
    pub key_gen: Duration,
    /// Key recovery: recompute `h`, unwrap `k = [k] ⊕ h`.
    pub key_rec: Duration,
    /// `[res] ← AES.Enc(k, res)` over a result of the same size.
    pub result_enc: Duration,
    /// `res ← AES.Dec(k, [res])`.
    pub result_dec: Duration,
}

fn time_op(trials: usize, mut f: impl FnMut()) -> Duration {
    // Warm up once, then average.
    f();
    let start = Instant::now();
    for _ in 0..trials {
        f();
    }
    start.elapsed() / trials as u32
}

/// Measures all five operations at every paper size.
pub fn run(trials: usize) -> Vec<Table1Row> {
    // Build a function identity through the real resolution path.
    let env = DedupEnv::new(speed_enclave::CostModel::no_sgx());
    let runtime = env.runtime(b"table1-app");
    let identity = runtime
        .resolve(&FuncDesc::new("zlib", "1.2.11", "int deflate(...)"))
        .expect("registered");

    let mut rng = SystemRng::seeded(0x7AB1E);
    let mut rows = Vec::new();
    for size in SIZES {
        let mut input = vec![0u8; size];
        rng.fill(&mut input);
        let result = input.clone(); // result of the same size, as in the paper

        let tag_gen = time_op(trials, || {
            std::hint::black_box(tag_for(&identity, &input));
        });

        let challenge = rng.gen_challenge(32);
        let key_gen = {
            let mut local_rng = SystemRng::seeded(7);
            time_op(trials, || {
                let r = local_rng.gen_challenge(32);
                let h = secondary_key(&identity, &input, &r);
                let k = local_rng.gen_key();
                std::hint::black_box(k.xor_pad(&h));
            })
        };

        let key = Key128::from_bytes([0x2A; 16]);
        let wrapped = key.xor_pad(&secondary_key(&identity, &input, &challenge));
        let key_rec = time_op(trials, || {
            let h = secondary_key(&identity, &input, &challenge);
            std::hint::black_box(wrapped.xor_pad(&h));
        });

        let cipher = AesGcm128::new(&key);
        let nonce = rng.gen_nonce();
        let result_enc = time_op(trials, || {
            std::hint::black_box(cipher.seal(&nonce, b"speed-result-v1", &result));
        });

        let boxed = cipher.seal(&nonce, b"speed-result-v1", &result);
        let result_dec = time_op(trials, || {
            std::hint::black_box(
                cipher.open(&nonce, b"speed-result-v1", &boxed).expect("valid"),
            );
        });

        // Cross-check: the rce module produces the same operations end to
        // end (guards against measuring dead code).
        let record = rce::encrypt_result(&identity, &input, &result, &mut rng);
        assert_eq!(
            rce::recover_result(&identity, &input, &record).expect("self-recovery"),
            result
        );

        rows.push(Table1Row {
            input_bytes: size,
            tag_gen,
            key_gen,
            key_rec,
            result_enc,
            result_dec,
        });
    }
    rows
}

/// Renders the table in the paper's layout (times in ms).
pub fn render(rows: &[Table1Row]) -> String {
    let ms = |d: Duration| format!("{:.3}", d.as_secs_f64() * 1_000.0);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                fmt_bytes(row.input_bytes),
                ms(row.tag_gen),
                ms(row.key_gen),
                ms(row.key_rec),
                ms(row.result_enc),
                ms(row.result_dec),
            ]
        })
        .collect();
    format!(
        "Table I — cryptographic operations in DedupRuntime (ms)\n{}",
        render_table(
            &["input", "Tag Gen.", "Key Gen.", "Key Rec.", "Result Enc.", "Result Dec."],
            &table_rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operations_scale_with_input() {
        let rows = run(3);
        assert_eq!(rows.len(), 4);
        // Hash-based ops grow ~linearly: 1 MB ≫ 1 KB.
        let first = &rows[0];
        let last = &rows[3];
        assert!(last.tag_gen > first.tag_gen * 20);
        assert!(last.key_gen > first.key_gen * 20);
        assert!(last.key_rec > first.key_rec * 20);
        assert!(last.result_enc > first.result_enc * 20);
    }

    #[test]
    fn enc_dec_faster_than_tag_gen_at_scale() {
        // The paper: "result encryption and decryption … are even faster
        // with the same sized input, literally an order of magnitude" —
        // our from-scratch AES is slower than AES-NI, but decryption must
        // at least not exceed tag generation by much at 100 KB+.
        let rows = run(3);
        let big = &rows[2];
        assert!(
            big.result_dec < big.tag_gen * 10,
            "dec {:?} vs tag {:?}",
            big.result_dec,
            big.tag_gen
        );
    }

    #[test]
    fn render_has_all_sizes() {
        let rows = run(1);
        let text = render(&rows);
        for label in ["1KB", "10KB", "100KB", "1MB"] {
            assert!(text.contains(label), "{label} missing");
        }
    }
}
