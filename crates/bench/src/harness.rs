//! Timing utilities shared by all experiments.

use std::sync::Arc;
use std::time::{Duration, Instant};

use speed_enclave::Platform;

/// Measures `f`, returning its output and the elapsed *total* time:
/// wall-clock plus the simulated SGX overhead accrued on `platform`'s
/// clock during the call.
pub fn measure<R>(platform: &Platform, f: impl FnOnce() -> R) -> (R, Duration) {
    let sim_before = platform.clock().total_ns();
    let start = Instant::now();
    let result = f();
    let wall = start.elapsed();
    let sim = platform.clock().total_ns() - sim_before;
    (result, wall + Duration::from_nanos(sim))
}

/// Runs `f` `trials` times and returns the mean duration (the paper
/// reports the mean of 10 trials).
pub fn mean_duration(
    platform: &Platform,
    trials: usize,
    mut f: impl FnMut(),
) -> Duration {
    assert!(trials > 0);
    let mut total = Duration::ZERO;
    for _ in 0..trials {
        let (_, elapsed) = measure(platform, &mut f);
        total += elapsed;
    }
    total / trials as u32
}

/// Pretty-prints a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Formats a byte count like the paper's axes (1KB … 1MB).
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1024 * 1024 {
        format!("{}MB", bytes / (1024 * 1024))
    } else if bytes >= 1024 {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

/// Renders an aligned text table: header row plus data rows.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(columns) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let divider: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
    out.push_str(&"-".repeat(divider));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Renders horizontal ASCII bars: one row per `(label, value)`, scaled so
/// `full_scale` occupies `width` characters. Values beyond full scale are
/// clipped with a `>` marker.
pub fn render_bars(rows: &[(String, f64)], full_scale: f64, width: usize) -> String {
    let label_width = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in rows {
        let fraction = (value / full_scale).max(0.0);
        let clipped = fraction.min(1.0);
        let filled = (clipped * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:>label_width$} |{}{}{}\n",
            "█".repeat(filled),
            " ".repeat(width - filled),
            if fraction > 1.0 { ">" } else { "|" },
        ));
    }
    out
}

/// A platform pair for experiments: one hosting applications, one hosting
/// the store (the paper's two-machine setup collapses onto one platform
/// when `colocated`).
pub struct TestBed {
    /// Platform the application enclaves run on.
    pub app_platform: Arc<Platform>,
    /// Platform the store enclave runs on (same as `app_platform` when
    /// co-located).
    pub store_platform: Arc<Platform>,
}

impl TestBed {
    /// A co-located deployment with the given cost model.
    pub fn colocated(model: speed_enclave::CostModel) -> TestBed {
        let platform = Platform::new(model);
        TestBed { app_platform: Arc::clone(&platform), store_platform: platform }
    }

    /// Total simulated overhead across both platforms.
    pub fn simulated_ns(&self) -> u64 {
        if Arc::ptr_eq(&self.app_platform, &self.store_platform) {
            self.app_platform.clock().total_ns()
        } else {
            self.app_platform.clock().total_ns() + self.store_platform.clock().total_ns()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_enclave::CostModel;

    #[test]
    fn measure_includes_simulated_time() {
        let platform = Platform::new(CostModel::default_sgx());
        let enclave = platform.create_enclave(b"t").unwrap();
        let (_, with_sim) = measure(&platform, || {
            enclave.ecall("x", || {});
        });
        assert!(with_sim >= Duration::from_nanos(CostModel::default_sgx().ecall_ns));
    }

    #[test]
    fn mean_of_trials() {
        let platform = Platform::new(CostModel::no_sgx());
        let mean = mean_duration(&platform, 5, || {
            std::hint::black_box(42 + 1);
        });
        assert!(mean < Duration::from_millis(50));
    }

    #[test]
    fn formatting_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_bytes(1024), "1KB");
        assert_eq!(fmt_bytes(2 * 1024 * 1024), "2MB");
        assert_eq!(fmt_bytes(100), "100B");
    }

    #[test]
    fn bars_scale_and_clip() {
        let rows = vec![
            ("half".to_string(), 0.5),
            ("full".to_string(), 1.0),
            ("over".to_string(), 1.5),
        ];
        let chart = render_bars(&rows, 1.0, 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(&"█".repeat(5)));
        assert!(lines[1].contains(&"█".repeat(10)));
        assert!(lines[2].ends_with('>'));
    }

    #[test]
    fn table_rendering_aligns() {
        let table = render_table(
            &["col", "value"],
            &[vec!["a".into(), "1".into()], vec!["long".into(), "22".into()]],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("col"));
        assert!(lines[1].starts_with('-'));
    }
}
