//! Regenerates the SPEED paper's tables and figures.
//!
//! ```text
//! cargo run --release -p speed-bench --bin repro -- all
//! cargo run --release -p speed-bench --bin repro -- fig5a [trials]
//! cargo run --release -p speed-bench --bin repro -- table1
//! cargo run --release -p speed-bench --bin repro -- fig6
//! cargo run --release -p speed-bench --bin repro -- ablation-rce
//! ```

use speed_bench::apps::App;
use speed_bench::{ablations, fig5, fig6, table1};

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment> [trials]\n\
         experiments:\n\
           fig5a | fig5b | fig5c | fig5d   relative runtime of the 4 apps\n\
           fig5                            all four sub-figures\n\
           table1                          crypto operation latency\n\
           fig6                            store throughput, SGX vs no SGX\n\
           ablation-rce                    RCE vs single-key protection\n\
           ablation-async                  sync vs async PUT\n\
           ablation-switch                 world-switch cost sensitivity\n\
           ablation-transport              in-process vs TCP store\n\
           ablation-adaptive               adaptive dedup policy (§VII)\n\
           ablations                       all five ablations\n\
           all                             everything above"
    );
    std::process::exit(2)
}

fn run_fig5(app: App, trials: usize) {
    let rows = fig5::run(app, trials);
    println!("{}", fig5::render(app, &rows));
    println!();
}

fn run_ablations(trials: usize) {
    println!("{}", ablations::render_rce(&ablations::rce_vs_single_key(trials)));
    println!();
    println!("{}", ablations::render_async(&ablations::sync_vs_async_put(trials)));
    println!();
    println!("{}", ablations::render_switch(&ablations::switch_cost_sensitivity()));
    println!();
    println!("{}", ablations::render_transport(&ablations::transport_comparison()));
    println!();
    println!("{}", ablations::render_adaptive(&ablations::adaptive_policy(60), 60));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiment = args.first().map(String::as_str).unwrap_or("all");
    let trials: usize = args
        .get(1)
        .map(|s| s.parse().unwrap_or_else(|_| usage()))
        .unwrap_or(3);

    match experiment {
        "fig5a" => run_fig5(App::Sift, trials),
        "fig5b" => run_fig5(App::Deflate, trials),
        "fig5c" => run_fig5(App::Match, trials),
        "fig5d" => run_fig5(App::Bow, trials),
        "fig5" => {
            for app in App::ALL {
                run_fig5(app, trials);
            }
        }
        "table1" => println!("{}", table1::render(&table1::run(trials.max(5)))),
        "fig6" => println!("{}", fig6::render(&fig6::run())),
        "ablation-rce" => {
            println!("{}", ablations::render_rce(&ablations::rce_vs_single_key(trials)))
        }
        "ablation-async" => println!(
            "{}",
            ablations::render_async(&ablations::sync_vs_async_put(trials))
        ),
        "ablation-switch" => println!(
            "{}",
            ablations::render_switch(&ablations::switch_cost_sensitivity())
        ),
        "ablation-transport" => println!(
            "{}",
            ablations::render_transport(&ablations::transport_comparison())
        ),
        "ablation-adaptive" => println!(
            "{}",
            ablations::render_adaptive(&ablations::adaptive_policy(60), 60)
        ),
        "ablations" => run_ablations(trials),
        "all" => {
            for app in App::ALL {
                run_fig5(app, trials);
            }
            println!("{}", table1::render(&table1::run(trials.max(5))));
            println!();
            println!("{}", fig6::render(&fig6::run()));
            println!();
            run_ablations(trials);
        }
        _ => usage(),
    }
}
