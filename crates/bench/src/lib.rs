//! Experiment harness regenerating every table and figure of the SPEED
//! paper's evaluation (§V).
//!
//! | Paper artefact | Module | Regeneration |
//! |---|---|---|
//! | Fig. 5a–d (relative runtime of 4 apps) | [`fig5`] | `cargo run -p speed-bench --bin repro -- fig5a` … `fig5d` |
//! | Table I (crypto op latency) | [`table1`] | `… -- table1` and `cargo bench -p speed-bench --bench crypto_ops` |
//! | Fig. 6 (store throughput, SGX vs no SGX) | [`fig6`] | `… -- fig6` and `cargo bench -p speed-bench --bench store_throughput` |
//! | Ablations (RCE vs single key, async PUT, switch cost, transport) | [`ablations`] | `… -- ablation-…` |
//!
//! Timing model: real computation runs natively; SGX-specific overheads
//! (world switches, boundary copies, paging) accrue on the platform's
//! simulated clock. Every measurement below reports
//! `wall-clock elapsed + simulated overhead accrued`, so the *shape* of the
//! paper's results (who wins, by what factor, where the crossover sits)
//! reproduces even though absolute numbers come from different hardware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod apps;
pub mod fig5;
pub mod fig6;
pub mod harness;
pub mod table1;
