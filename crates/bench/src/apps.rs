//! The four evaluation applications (§V-A), wired for deduplication.
//!
//! Each app exposes three things the experiments need:
//! an input generator (seeded, size-parameterized), the raw computation
//! (`bytes → bytes`, deterministic), and the [`speed_core::FuncDesc`]
//! under which it is marked deduplicable.

use std::sync::{Arc, OnceLock};

use speed_core::{DedupMode, DedupRuntime, FuncDesc, TrustedLibrary};
use speed_enclave::{CostModel, Platform};
use speed_matcher::RuleSet;
use speed_store::{ResultStore, StoreConfig};
use speed_wire::SessionAuthority;
use speed_workloads::{images, packets, pages, rules, text};

/// Which of the paper's four use cases an experiment runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum App {
    /// Use case 1: SIFT feature extraction via `libsiftpp`.
    Sift,
    /// Use case 2: data compression via `zlib`.
    Deflate,
    /// Use case 3: pattern matching via `libpcre` + Snort rules.
    Match,
    /// Use case 4: BoW computation via `mapreduce`.
    Bow,
}

impl App {
    /// All four applications, in the paper's Fig. 5 order.
    pub const ALL: [App; 4] = [App::Sift, App::Deflate, App::Match, App::Bow];

    /// Display name matching the paper's figure captions.
    pub fn name(&self) -> &'static str {
        match self {
            App::Sift => "feature extraction (libsiftpp)",
            App::Deflate => "data compression (zlib)",
            App::Match => "pattern matching (libpcre)",
            App::Bow => "BoW computation (mapreduce)",
        }
    }

    /// The paper's Fig. 4 function description for this app.
    pub fn desc(&self) -> FuncDesc {
        match self {
            App::Sift => FuncDesc::new("libsiftpp", "0.8.1", "Keypoints sift(Image)"),
            App::Deflate => FuncDesc::new("zlib", "1.2.11", "int deflate(...)"),
            App::Match => {
                FuncDesc::new("libpcre", "8.40", "int pcre_exec(rules-v3700, ...)")
            }
            App::Bow => FuncDesc::new("mapreduce", "1.0", "Counts bow_mapper(Pages)"),
        }
    }

    /// Human-readable label for an input of `size` "units" (bytes, pixels,
    /// packets, or pages depending on the app).
    pub fn size_label(&self, size: usize) -> String {
        match self {
            App::Sift => format!("{size}px"),
            App::Deflate => crate::harness::fmt_bytes(size),
            App::Match => format!("{size}pkt"),
            App::Bow => format!("{size}pg"),
        }
    }

    /// The input-size sweep used for Fig. 5 (kept laptop-friendly; the
    /// paper sweeps analogous ranges on server hardware).
    pub fn fig5_sizes(&self) -> Vec<usize> {
        match self {
            App::Sift => vec![96, 128, 192, 256],
            App::Deflate => vec![64 << 10, 256 << 10, 1 << 20, 4 << 20],
            App::Match => vec![50, 150, 450, 1350],
            App::Bow => vec![75, 225, 675, 2025],
        }
    }

    /// Generates one serialized input of `size` units.
    pub fn generate_input(&self, size: usize, seed: u64) -> Vec<u8> {
        match self {
            App::Sift => images::image_to_bytes(&images::synthetic_image(size, seed)),
            App::Deflate => text::synthetic_text(size, seed).into_bytes(),
            App::Match => {
                let sigs = rules::signatures(&match_rule_corpus());
                let trace = packets::packet_trace(
                    &packets::TraceConfig {
                        count: size,
                        malicious_ratio: 0.05,
                        signatures: sigs,
                        ..packets::TraceConfig::default()
                    },
                    seed,
                );
                packets::batch_payload(&trace)
            }
            App::Bow => {
                let corpus = pages::page_corpus(size, 200, seed);
                let mut out = Vec::new();
                out.extend_from_slice(&(corpus.len() as u32).to_le_bytes());
                for page in corpus {
                    out.extend_from_slice(&(page.len() as u32).to_le_bytes());
                    out.extend_from_slice(page.as_bytes());
                }
                out
            }
        }
    }

    /// The raw computation, `input bytes → result bytes`. Deterministic —
    /// the contract SPEED requires of marked functions.
    pub fn compute(&self, input: &[u8]) -> Vec<u8> {
        match self {
            App::Sift => {
                let image = images::image_from_bytes(input).expect("valid image input");
                let features = speed_sift::sift(&image, &speed_sift::SiftParams::default());
                speed_sift::features_to_bytes(&features)
            }
            App::Deflate => speed_deflate::compress(input, speed_deflate::Level::Default),
            App::Match => {
                let ruleset = match_ruleset();
                let mut matches_out = Vec::new();
                let mut count = 0u32;
                let mut pos = 0usize;
                let mut packet_idx = 0u32;
                while pos + 4 <= input.len() {
                    let len = u32::from_le_bytes(
                        input[pos..pos + 4].try_into().expect("sized"),
                    ) as usize;
                    pos += 4;
                    let end = (pos + len).min(input.len());
                    for m in ruleset.scan(&input[pos..end]) {
                        matches_out.extend_from_slice(&packet_idx.to_le_bytes());
                        matches_out.extend_from_slice(&m.rule_id.to_le_bytes());
                        count += 1;
                    }
                    pos = end;
                    packet_idx += 1;
                }
                let mut out = count.to_le_bytes().to_vec();
                out.extend_from_slice(&matches_out);
                out
            }
            App::Bow => {
                let mut docs = Vec::new();
                if input.len() >= 4 {
                    let count =
                        u32::from_le_bytes(input[..4].try_into().expect("sized")) as usize;
                    let mut pos = 4usize;
                    for _ in 0..count {
                        if pos + 4 > input.len() {
                            break;
                        }
                        let len = u32::from_le_bytes(
                            input[pos..pos + 4].try_into().expect("sized"),
                        ) as usize;
                        pos += 4;
                        let end = (pos + len).min(input.len());
                        docs.push(String::from_utf8_lossy(&input[pos..end]).into_owned());
                        pos = end;
                    }
                }
                let counts = speed_mapreduce::bag_of_words(
                    &docs,
                    &speed_mapreduce::BowConfig::default(),
                );
                speed_mapreduce::counts_to_bytes(&counts)
            }
        }
    }
}

/// Rule corpus shared by every pattern-matching experiment: 3,500 literal +
/// 200 regex rules — the paper's ">3,700 patterns from Snort rules".
pub fn match_rule_corpus() -> Vec<speed_matcher::Rule> {
    rules::rule_corpus(3500, 200, 0xC0DE)
}

fn match_ruleset() -> &'static RuleSet {
    static RULESET: OnceLock<RuleSet> = OnceLock::new();
    RULESET.get_or_init(|| {
        RuleSet::compile(match_rule_corpus()).expect("generated rules compile")
    })
}

/// A complete deduplication environment: platform, store, authority, and a
/// trusted-library registry covering all four applications.
pub struct DedupEnv {
    /// The (co-located) platform.
    pub platform: Arc<Platform>,
    /// The shared encrypted result store.
    pub store: Arc<ResultStore>,
    /// The attestation/session authority.
    pub authority: Arc<SessionAuthority>,
}

impl DedupEnv {
    /// Creates an environment with the given SGX cost model.
    pub fn new(model: CostModel) -> DedupEnv {
        DedupEnv::with_store_config(model, StoreConfig::default())
    }

    /// Creates an environment with a custom store configuration.
    pub fn with_store_config(model: CostModel, config: StoreConfig) -> DedupEnv {
        let platform = Platform::new(model);
        let store =
            Arc::new(ResultStore::new(&platform, config).expect("store fits in epc"));
        let authority = Arc::new(SessionAuthority::new());
        DedupEnv { platform, store, authority }
    }

    /// The trusted library set covering all four use cases.
    pub fn trusted_libraries() -> Vec<TrustedLibrary> {
        let mut sift = TrustedLibrary::new("libsiftpp", "0.8.1");
        sift.register("Keypoints sift(Image)", b"speed-sift pipeline v1");
        let mut zlib = TrustedLibrary::new("zlib", "1.2.11");
        zlib.register("int deflate(...)", b"speed-deflate lz77+huffman v1");
        let mut pcre = TrustedLibrary::new("libpcre", "8.40");
        pcre.register(
            "int pcre_exec(rules-v3700, ...)",
            b"speed-matcher aho-corasick+regex v1 rules seed 0xC0DE 3500+200",
        );
        let mut mapreduce = TrustedLibrary::new("mapreduce", "1.0");
        mapreduce.register("Counts bow_mapper(Pages)", b"speed-mapreduce bow v1");
        vec![sift, zlib, pcre, mapreduce]
    }

    /// Builds an application runtime connected to this environment's store.
    pub fn runtime(&self, app_code: &[u8]) -> Arc<DedupRuntime> {
        self.runtime_with(app_code, DedupMode::CrossApp, false)
    }

    /// Builds a runtime with explicit mode and async-PUT setting.
    pub fn runtime_with(
        &self,
        app_code: &[u8],
        mode: DedupMode,
        async_put: bool,
    ) -> Arc<DedupRuntime> {
        let mut builder = DedupRuntime::builder(Arc::clone(&self.platform), app_code)
            .in_process_store(Arc::clone(&self.store), Arc::clone(&self.authority))
            .mode(mode)
            .async_put(async_put);
        for library in DedupEnv::trusted_libraries() {
            builder = builder.trusted_library(library);
        }
        builder.build().expect("runtime construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_core::DedupOutcome;

    #[test]
    fn all_apps_compute_deterministically() {
        for app in App::ALL {
            let size = app.fig5_sizes()[0];
            let input = app.generate_input(size, 1);
            assert_eq!(app.compute(&input), app.compute(&input), "{app:?}");
            // Result should be nonempty for every app on these inputs.
            assert!(!app.compute(&input).is_empty(), "{app:?}");
        }
    }

    #[test]
    fn all_apps_dedup_end_to_end() {
        let env = DedupEnv::new(CostModel::default_sgx());
        for app in App::ALL {
            let runtime = env.runtime(format!("test-{app:?}").as_bytes());
            let identity = runtime.resolve(&app.desc()).expect("registered");
            let input = app.generate_input(app.fig5_sizes()[0], 2);

            let (result1, outcome1) = runtime
                .execute_raw(&identity, &input, |bytes| app.compute(bytes))
                .unwrap();
            assert_eq!(outcome1, DedupOutcome::Miss, "{app:?}");

            let (result2, outcome2) = runtime
                .execute_raw(&identity, &input, |_| panic!("must dedup"))
                .unwrap();
            assert_eq!(outcome2, DedupOutcome::Hit, "{app:?}");
            assert_eq!(result1, result2, "{app:?}");
        }
    }

    #[test]
    fn match_app_finds_planted_signatures() {
        let app = App::Match;
        let input = app.generate_input(200, 3);
        let result = app.compute(&input);
        let count = u32::from_le_bytes(result[..4].try_into().unwrap());
        assert!(count > 0, "no signatures detected in 200 packets");
    }

    #[test]
    fn input_sizes_scale_results() {
        let app = App::Deflate;
        let small = app.generate_input(64 << 10, 4);
        let large = app.generate_input(1 << 20, 4);
        assert!(large.len() > small.len() * 10);
    }
}
