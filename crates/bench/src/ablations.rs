//! Ablation experiments for the design choices DESIGN.md calls out.
//!
//! 1. **RCE vs single key** (§III-B vs §III-C): what does keyless
//!    cross-application sharing cost per call?
//! 2. **Synchronous vs asynchronous PUT** (§IV-B remark on processing PUT
//!    "in a separated thread"): how much initial-computation latency does
//!    the async worker hide?
//! 3. **World-switch cost sensitivity**: how does store latency scale as
//!    ECALL/OCALL costs grow (the HotCalls/Eleos motivation)?
//! 4. **In-process vs TCP transport**: what does the dedicated-server
//!    deployment cost per GET?

use std::sync::Arc;
use std::time::Duration;

use speed_core::{AdaptiveConfig, DedupMode, DedupOutcome, DedupPolicy};
use speed_crypto::Key128;
use speed_enclave::{CostModel, Platform};
use speed_store::server::{StoreServer, TcpStoreClient};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::{AppId, CompTag, Message, Record, SessionAuthority};

use crate::apps::{App, DedupEnv};
use crate::harness::{fmt_duration, measure, render_table};

/// Result of the protection-scheme ablation.
#[derive(Clone, Debug)]
pub struct RceAblation {
    /// Mean initial-computation time under cross-app RCE.
    pub rce_initial: Duration,
    /// Mean subsequent-computation time under cross-app RCE.
    pub rce_subsequent: Duration,
    /// Mean initial-computation time under the single-key scheme.
    pub single_initial: Duration,
    /// Mean subsequent-computation time under the single-key scheme.
    pub single_subsequent: Duration,
    /// Mean initial-computation time under deterministic convergent
    /// encryption.
    pub convergent_initial: Duration,
    /// Mean subsequent-computation time under convergent encryption.
    pub convergent_subsequent: Duration,
}

/// Measures RCE vs single-key per-call cost on the compression app.
pub fn rce_vs_single_key(trials: usize) -> RceAblation {
    let app = App::Deflate;
    let size = 256 << 10;

    let run_mode = |mode: DedupMode| -> (Duration, Duration) {
        let env = DedupEnv::new(CostModel::default_sgx());
        let runtime = env.runtime_with(b"ablation-rce", mode, false);
        let identity = runtime.resolve(&app.desc()).expect("registered");
        let mut initial = Duration::ZERO;
        let mut subsequent = Duration::ZERO;
        for t in 0..trials {
            let input = app.generate_input(size, 0xAB << 8 | t as u64);
            let (_, init_elapsed) = measure(&env.platform, || {
                runtime
                    .execute_raw(&identity, &input, |bytes| app.compute(bytes))
                    .expect("store reachable")
            });
            initial += init_elapsed;
            let (outcome, subsq_elapsed) = measure(&env.platform, || {
                runtime
                    .execute_raw(&identity, &input, |_| panic!("must hit"))
                    .expect("store reachable")
                    .1
            });
            assert_eq!(outcome, DedupOutcome::Hit);
            subsequent += subsq_elapsed;
        }
        (initial / trials as u32, subsequent / trials as u32)
    };

    let (rce_initial, rce_subsequent) = run_mode(DedupMode::CrossApp);
    let (single_initial, single_subsequent) =
        run_mode(DedupMode::SingleKey(Key128::from_bytes([9u8; 16])));
    let (convergent_initial, convergent_subsequent) = run_mode(DedupMode::Convergent);
    RceAblation {
        rce_initial,
        rce_subsequent,
        single_initial,
        single_subsequent,
        convergent_initial,
        convergent_subsequent,
    }
}

/// Renders the RCE ablation.
pub fn render_rce(result: &RceAblation) -> String {
    let rows = vec![
        vec![
            "cross-app RCE".to_string(),
            fmt_duration(result.rce_initial),
            fmt_duration(result.rce_subsequent),
        ],
        vec![
            "convergent (CE)".to_string(),
            fmt_duration(result.convergent_initial),
            fmt_duration(result.convergent_subsequent),
        ],
        vec![
            "single key".to_string(),
            fmt_duration(result.single_initial),
            fmt_duration(result.single_subsequent),
        ],
    ];
    format!(
        "Ablation — result protection scheme (compression, 256KB)\n{}",
        render_table(&["scheme", "Init. Comp.", "Subsq. Comp."], &rows)
    )
}

/// Result of the sync-vs-async PUT ablation.
#[derive(Clone, Debug)]
pub struct AsyncAblation {
    /// Mean initial-computation latency with synchronous PUT.
    pub sync_initial: Duration,
    /// Mean initial-computation latency with the async PUT worker.
    pub async_initial: Duration,
    /// Raw (baseline) computation time, for reference.
    pub baseline: Duration,
}

/// Measures initial-computation latency with and without the async PUT
/// worker (compression at 4 MB — a large result makes the PUT roundtrip
/// worth hiding).
pub fn sync_vs_async_put(trials: usize) -> AsyncAblation {
    let app = App::Deflate;
    let size = 4 << 20;

    let run_config = |async_put: bool| -> Duration {
        let env = DedupEnv::new(CostModel::default_sgx());
        let runtime = env.runtime_with(b"ablation-async", DedupMode::CrossApp, async_put);
        let identity = runtime.resolve(&app.desc()).expect("registered");
        let mut total = Duration::ZERO;
        for t in 0..trials {
            let input = app.generate_input(size, 0xA5 << 8 | t as u64);
            let (_, elapsed) = measure(&env.platform, || {
                runtime
                    .execute_raw(&identity, &input, |bytes| app.compute(bytes))
                    .expect("store reachable")
            });
            total += elapsed;
        }
        runtime.flush();
        total / trials as u32
    };

    let baseline = {
        let env = DedupEnv::new(CostModel::default_sgx());
        let enclave = env.platform.create_enclave(b"ablation-baseline").expect("epc");
        let mut total = Duration::ZERO;
        for t in 0..trials {
            let input = app.generate_input(size, 0xA5 << 8 | t as u64);
            let (_, elapsed) = measure(&env.platform, || {
                enclave.ecall("app_main", || app.compute(&input))
            });
            total += elapsed;
        }
        total / trials as u32
    };

    AsyncAblation {
        sync_initial: run_config(false),
        async_initial: run_config(true),
        baseline,
    }
}

/// Renders the async ablation.
pub fn render_async(result: &AsyncAblation) -> String {
    let rel = |d: Duration| {
        format!("{:.1}%", d.as_secs_f64() / result.baseline.as_secs_f64() * 100.0)
    };
    let rows = vec![
        vec!["baseline (no SPEED)".to_string(), fmt_duration(result.baseline), "100%".into()],
        vec![
            "sync PUT".to_string(),
            fmt_duration(result.sync_initial),
            rel(result.sync_initial),
        ],
        vec![
            "async PUT".to_string(),
            fmt_duration(result.async_initial),
            rel(result.async_initial),
        ],
    ];
    format!(
        "Ablation — initial computation with sync vs async PUT (compression, 4MB)\n{}",
        render_table(&["configuration", "Init. Comp.", "vs baseline"], &rows)
    )
}

/// One point of the switch-cost sensitivity sweep.
#[derive(Clone, Debug)]
pub struct SwitchPoint {
    /// Multiplier applied to the default ECALL/OCALL costs.
    pub multiplier: u64,
    /// Time for 100 1 KB GETs at that cost.
    pub get_time: Duration,
}

/// Sweeps ECALL/OCALL cost multipliers (0, 1, 4, 16×) and measures 1 KB
/// GET batches.
pub fn switch_cost_sensitivity() -> Vec<SwitchPoint> {
    [0u64, 1, 4, 16]
        .iter()
        .map(|&multiplier| {
            let base = CostModel::default_sgx();
            let model = CostModel {
                ecall_ns: base.ecall_ns * multiplier,
                ocall_ns: base.ocall_ns * multiplier,
                ..base
            };
            let env = DedupEnv::with_store_config(model, StoreConfig::default());
            for i in 0..100usize {
                let mut tag = [1u8; 32];
                tag[..8].copy_from_slice(&(i as u64).to_le_bytes());
                env.store.handle(Message::PutRequest {
                    app: AppId(1),
                    tag: CompTag::from_bytes(tag),
                    record: Record {
                        challenge: vec![0; 32],
                        wrapped_key: [0; 16],
                        nonce: [0; 12],
                        boxed_result: vec![7; 1 << 10],
                    },
                });
            }
            let (_, get_time) = measure(&env.platform, || {
                for i in 0..100usize {
                    let mut tag = [1u8; 32];
                    tag[..8].copy_from_slice(&(i as u64).to_le_bytes());
                    env.store.handle(Message::GetRequest {
                        app: AppId(2),
                        tag: CompTag::from_bytes(tag),
                    });
                }
            });
            SwitchPoint { multiplier, get_time }
        })
        .collect()
}

/// Renders the switch-cost sweep.
pub fn render_switch(points: &[SwitchPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![format!("{}x", p.multiplier), fmt_duration(p.get_time)])
        .collect();
    format!(
        "Ablation — world-switch cost sensitivity (100 GETs, 1KB)\n{}",
        render_table(&["ECALL/OCALL cost", "GET batch time"], &rows)
    )
}

/// Result of the transport ablation.
#[derive(Clone, Debug)]
pub struct TransportAblation {
    /// Mean per-GET latency through the in-process secure channel.
    pub in_process: Duration,
    /// Mean per-GET latency over loopback TCP (attested handshake, sealed
    /// frames).
    pub tcp: Duration,
}

/// Measures in-process vs TCP GET latency (1 KB records, 100 ops each).
pub fn transport_comparison() -> TransportAblation {
    let ops = 100usize;
    let record = Record {
        challenge: vec![0; 32],
        wrapped_key: [0; 16],
        nonce: [0; 12],
        boxed_result: vec![3; 1 << 10],
    };

    // Shared store, populated once.
    let platform = Platform::new(CostModel::default_sgx());
    let store = Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
    let authority = Arc::new(SessionAuthority::new());
    for i in 0..ops {
        let mut tag = [2u8; 32];
        tag[..8].copy_from_slice(&(i as u64).to_le_bytes());
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: CompTag::from_bytes(tag),
            record: record.clone(),
        });
    }

    // In-process client.
    let app_enclave = platform.create_enclave(b"transport-inproc").unwrap();
    let mut in_proc_client = speed_core::InProcessClient::connect(
        Arc::clone(&store),
        &authority,
        &platform,
        &app_enclave,
    )
    .unwrap();
    use speed_core::StoreClient;
    let (_, in_proc_total) = measure(&platform, || {
        for i in 0..ops {
            let mut tag = [2u8; 32];
            tag[..8].copy_from_slice(&(i as u64).to_le_bytes());
            let response = in_proc_client
                .roundtrip(&Message::GetRequest {
                    app: AppId(3),
                    tag: CompTag::from_bytes(tag),
                })
                .expect("in-process roundtrip");
            assert!(matches!(response, Message::GetResponse(b) if b.found));
        }
    });

    // TCP client over loopback.
    let server = StoreServer::spawn(
        Arc::clone(&store),
        Arc::clone(&platform),
        Arc::clone(&authority),
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let tcp_enclave = platform.create_enclave(b"transport-tcp").unwrap();
    let mut tcp_client =
        TcpStoreClient::connect(server.addr(), &platform, &tcp_enclave, &authority)
            .expect("connect");
    let (_, tcp_total) = measure(&platform, || {
        for i in 0..ops {
            let mut tag = [2u8; 32];
            tag[..8].copy_from_slice(&(i as u64).to_le_bytes());
            let response = tcp_client
                .roundtrip(&Message::GetRequest {
                    app: AppId(4),
                    tag: CompTag::from_bytes(tag),
                })
                .expect("tcp roundtrip");
            assert!(matches!(response, Message::GetResponse(b) if b.found));
        }
    });
    server.shutdown();

    TransportAblation {
        in_process: in_proc_total / ops as u32,
        tcp: tcp_total / ops as u32,
    }
}

/// Renders the transport ablation.
pub fn render_transport(result: &TransportAblation) -> String {
    let rows = vec![
        vec!["in-process".to_string(), fmt_duration(result.in_process)],
        vec!["TCP loopback".to_string(), fmt_duration(result.tcp)],
    ];
    format!(
        "Ablation — store transport (per 1KB GET)\n{}",
        render_table(&["transport", "latency"], &rows)
    )
}

/// Result of the adaptive-policy ablation (§VII future work).
#[derive(Clone, Debug)]
pub struct AdaptiveAblation {
    /// Total time for the low-redundancy cheap workload under
    /// always-dedup.
    pub always: Duration,
    /// Same workload under the adaptive policy.
    pub adaptive: Duration,
    /// Same workload with no SPEED at all (the floor).
    pub baseline: Duration,
    /// How many of the adaptive runtime's calls were bypassed.
    pub bypassed: u64,
}

/// A worst case for always-on deduplication: a *cheap* function over
/// all-distinct inputs (zero redundancy), where every call pays the dedup
/// overhead and never collects a hit. The adaptive policy detects this and
/// bypasses the store.
pub fn adaptive_policy(calls: usize) -> AdaptiveAblation {
    let app = App::Deflate;
    let size = 8 << 10; // small input: compression is fast, overhead matters

    let run_policy = |policy: Option<DedupPolicy>| -> (Duration, u64) {
        let env = DedupEnv::new(CostModel::default_sgx());
        match policy {
            None => {
                let enclave =
                    env.platform.create_enclave(b"adaptive-baseline").expect("epc");
                let mut total = Duration::ZERO;
                for i in 0..calls {
                    let input = app.generate_input(size, 0xADA0 + i as u64);
                    let (_, elapsed) = measure(&env.platform, || {
                        enclave.ecall("app_main", || app.compute(&input))
                    });
                    total += elapsed;
                }
                (total, 0)
            }
            Some(policy) => {
                let mut builder = speed_core::DedupRuntime::builder(
                    Arc::clone(&env.platform),
                    b"adaptive-ablation",
                )
                .in_process_store(Arc::clone(&env.store), Arc::clone(&env.authority))
                .policy(policy);
                for library in DedupEnv::trusted_libraries() {
                    builder = builder.trusted_library(library);
                }
                let runtime = builder.build().expect("runtime");
                let identity = runtime.resolve(&app.desc()).expect("registered");
                let mut total = Duration::ZERO;
                for i in 0..calls {
                    let input = app.generate_input(size, 0xADA0 + i as u64);
                    let (_, elapsed) = measure(&env.platform, || {
                        runtime
                            .execute_raw(&identity, &input, |bytes| app.compute(bytes))
                            .expect("store reachable")
                    });
                    total += elapsed;
                }
                (total, runtime.stats().bypasses)
            }
        }
    };

    let (baseline, _) = run_policy(None);
    let (always, _) = run_policy(Some(DedupPolicy::Always));
    let (adaptive, bypassed) = run_policy(Some(DedupPolicy::Adaptive(AdaptiveConfig {
        min_speedup: 1.0,
        warmup_calls: 3,
        probe_interval: 16,
        ewma_alpha: 0.3,
    })));
    AdaptiveAblation { always, adaptive, baseline, bypassed }
}

/// Renders the adaptive ablation.
pub fn render_adaptive(result: &AdaptiveAblation, calls: usize) -> String {
    let rows = vec![
        vec!["no SPEED".to_string(), fmt_duration(result.baseline), "-".into()],
        vec!["always dedup".to_string(), fmt_duration(result.always), "0".into()],
        vec![
            "adaptive".to_string(),
            fmt_duration(result.adaptive),
            result.bypassed.to_string(),
        ],
    ];
    format!(
        "Ablation — adaptive policy on a zero-redundancy cheap workload \
         ({calls} calls, 8KB compression)\n{}",
        render_table(&["policy", "total time", "bypassed"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_cost_is_monotonic() {
        let points = switch_cost_sensitivity();
        assert_eq!(points.len(), 4);
        // 16x switches must cost more than 0x.
        assert!(points[3].get_time > points[0].get_time);
    }

    #[test]
    fn transport_comparison_runs() {
        let result = transport_comparison();
        assert!(result.tcp > Duration::ZERO);
        assert!(result.in_process > Duration::ZERO);
    }

    #[test]
    fn async_put_not_slower_than_sync() {
        let result = sync_vs_async_put(2);
        // Async hides PUT latency; allow generous noise margin.
        assert!(
            result.async_initial
                < result.sync_initial + Duration::from_millis(200),
            "async {:?} vs sync {:?}",
            result.async_initial,
            result.sync_initial
        );
    }
}
