//! Fig. 6 — throughput of the encrypted `ResultStore`'s two operations
//! (GET and PUT), with and without SGX, for result sizes 1 KB–1 MB.
//!
//! "Fig. 6 shows the time cost of processing 100 times of each operation
//! at ResultStore, where the incoming data are all different. […] the
//! speed of each operation with SGX is much slower when facing a small
//! sized result […] and the gap is getting smaller with the growth of
//! result size."

use std::time::Duration;

use speed_enclave::CostModel;
use speed_store::StoreConfig;
use speed_wire::{AppId, CompTag, Message, Record};

use crate::apps::DedupEnv;
use crate::harness::{fmt_bytes, fmt_duration, measure, render_table};

/// The paper's result sizes.
pub const SIZES: [usize; 4] = [1 << 10, 10 << 10, 100 << 10, 1 << 20];

/// Operations per measured batch (the paper uses 100).
pub const OPS: usize = 100;

/// One measured point.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Result size in bytes.
    pub size: usize,
    /// Time for 100 PUTs with SGX.
    pub put_sgx: Duration,
    /// Time for 100 GETs with SGX.
    pub get_sgx: Duration,
    /// Time for 100 PUTs without SGX.
    pub put_plain: Duration,
    /// Time for 100 GETs without SGX.
    pub get_plain: Duration,
}

fn record_of(size: usize, fill: u8) -> Record {
    Record {
        challenge: vec![fill; 32],
        wrapped_key: [fill; 16],
        nonce: [fill; 12],
        boxed_result: vec![fill; size],
    }
}

fn tag_of(i: usize, round: u8) -> CompTag {
    let mut bytes = [round; 32];
    bytes[..8].copy_from_slice(&(i as u64).to_le_bytes());
    CompTag::from_bytes(bytes)
}

fn run_one(model: CostModel, size: usize) -> (Duration, Duration) {
    let env = DedupEnv::with_store_config(model, StoreConfig::default());
    let store = &env.store;

    // 100 PUTs of all-different records.
    let (_, put_time) = measure(&env.platform, || {
        for i in 0..OPS {
            let response = store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag_of(i, 1),
                record: record_of(size, (i % 251) as u8),
            });
            assert!(matches!(response, Message::PutResponse(b) if b.accepted));
        }
    });

    // 100 GETs of those records.
    let (_, get_time) = measure(&env.platform, || {
        for i in 0..OPS {
            let response =
                store.handle(Message::GetRequest { app: AppId(2), tag: tag_of(i, 1) });
            assert!(matches!(response, Message::GetResponse(b) if b.found));
        }
    });
    (put_time, get_time)
}

/// Runs the full Fig. 6 sweep.
pub fn run() -> Vec<Fig6Row> {
    SIZES
        .iter()
        .map(|&size| {
            let (put_sgx, get_sgx) = run_one(CostModel::default_sgx(), size);
            let (put_plain, get_plain) = run_one(CostModel::no_sgx(), size);
            Fig6Row { size, put_sgx, get_sgx, put_plain, get_plain }
        })
        .collect()
}

/// Renders the figure data (time per 100 operations).
pub fn render(rows: &[Fig6Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let overhead = |sgx: Duration, plain: Duration| {
                format!("{:.2}x", sgx.as_secs_f64() / plain.as_secs_f64().max(1e-12))
            };
            vec![
                fmt_bytes(row.size),
                fmt_duration(row.put_sgx),
                fmt_duration(row.put_plain),
                overhead(row.put_sgx, row.put_plain),
                fmt_duration(row.get_sgx),
                fmt_duration(row.get_plain),
                overhead(row.get_sgx, row.get_plain),
            ]
        })
        .collect();
    format!(
        "Fig. 6 — ResultStore: time per {OPS} operations\n{}",
        render_table(
            &[
                "size",
                "PUT (SGX)",
                "PUT (no SGX)",
                "PUT ovh",
                "GET (SGX)",
                "GET (no SGX)",
                "GET ovh",
            ],
            &table_rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgx_is_slower_and_gap_narrows() {
        let small = {
            let (put_sgx, get_sgx) = run_one(CostModel::default_sgx(), 1 << 10);
            let (put_plain, get_plain) = run_one(CostModel::no_sgx(), 1 << 10);
            Fig6Row { size: 1 << 10, put_sgx, get_sgx, put_plain, get_plain }
        };
        // With SGX both ops carry world-switch cost.
        assert!(small.put_sgx > small.put_plain);
        assert!(small.get_sgx > small.get_plain);

        let large = {
            let (put_sgx, get_sgx) = run_one(CostModel::default_sgx(), 1 << 20);
            let (put_plain, get_plain) = run_one(CostModel::no_sgx(), 1 << 20);
            Fig6Row { size: 1 << 20, put_sgx, get_sgx, put_plain, get_plain }
        };
        // Relative gap narrows as the result grows (paper's observation).
        let rel = |row: &Fig6Row| row.get_sgx.as_secs_f64() / row.get_plain.as_secs_f64();
        assert!(
            rel(&large) < rel(&small),
            "gap did not narrow: small {:.2} large {:.2}",
            rel(&small),
            rel(&large)
        );
    }

    #[test]
    fn render_mentions_all_sizes() {
        let rows = vec![Fig6Row {
            size: 1 << 10,
            put_sgx: Duration::from_millis(2),
            get_sgx: Duration::from_millis(1),
            put_plain: Duration::from_micros(500),
            get_plain: Duration::from_micros(300),
        }];
        let text = render(&rows);
        assert!(text.contains("1KB"));
        assert!(text.contains("PUT (SGX)"));
    }
}
