//! Fig. 5 — relative running time of the four applications in three cases:
//! baseline (no SPEED), initial computation (miss + publish), and
//! subsequent computation (dedup hit).

use std::time::Duration;

use speed_enclave::CostModel;

use crate::apps::{App, DedupEnv};
use crate::harness::{fmt_duration, measure, render_table};

/// One measured point of a Fig. 5 sub-figure.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Input size label (px / bytes / packets / pages).
    pub size: String,
    /// Running time without SPEED.
    pub baseline: Duration,
    /// Running time of the initial computation with SPEED.
    pub initial: Duration,
    /// Running time of the subsequent computation with SPEED.
    pub subsequent: Duration,
}

impl Fig5Row {
    /// Initial computation relative to baseline (1.0 = same, >1 = slower),
    /// i.e. the paper's "Init. Comp." bar height.
    pub fn initial_relative(&self) -> f64 {
        self.initial.as_secs_f64() / self.baseline.as_secs_f64()
    }

    /// Subsequent computation relative to baseline — the "Subsq. Comp."
    /// bar height.
    pub fn subsequent_relative(&self) -> f64 {
        self.subsequent.as_secs_f64() / self.baseline.as_secs_f64()
    }

    /// The dedup speedup (baseline / subsequent) the paper headlines.
    pub fn speedup(&self) -> f64 {
        self.baseline.as_secs_f64() / self.subsequent.as_secs_f64()
    }
}

/// Runs one Fig. 5 sub-figure for `app`, averaging `trials` runs per point.
pub fn run(app: App, trials: usize) -> Vec<Fig5Row> {
    let env = DedupEnv::new(CostModel::default_sgx());
    let runtime = env.runtime(b"fig5-application");
    let identity = runtime.resolve(&app.desc()).expect("app registered");
    let baseline_enclave =
        env.platform.create_enclave(b"fig5-baseline-application").expect("epc space");

    let mut rows = Vec::new();
    for size in app.fig5_sizes() {
        // Distinct input per trial; a trial's input is reused across the
        // three cases so they compute the same thing.
        let inputs: Vec<Vec<u8>> = (0..trials)
            .map(|t| app.generate_input(size, (size as u64) << 8 | t as u64))
            .collect();

        // Baseline: the ported application without SPEED — the function
        // simply runs inside its enclave.
        let mut baseline = Duration::ZERO;
        for input in &inputs {
            let (_, elapsed) = measure(&env.platform, || {
                baseline_enclave.ecall("app_main", || app.compute(input))
            });
            baseline += elapsed;
        }

        // Initial computation: first time each input is seen (miss +
        // encrypt + synchronous PUT, like the paper's prototype default).
        let mut initial = Duration::ZERO;
        for input in &inputs {
            let (_, elapsed) = measure(&env.platform, || {
                runtime
                    .execute_raw(&identity, input, |bytes| app.compute(bytes))
                    .expect("store reachable")
            });
            initial += elapsed;
        }

        // Subsequent computation: the same inputs again — every call is a
        // verified dedup hit.
        let mut subsequent = Duration::ZERO;
        for input in &inputs {
            let (result, elapsed) = measure(&env.platform, || {
                runtime
                    .execute_raw(&identity, input, |_| {
                        panic!("subsequent computation must not execute")
                    })
                    .expect("store reachable")
            });
            assert_eq!(result.1, speed_core::DedupOutcome::Hit);
            subsequent += elapsed;
        }

        rows.push(Fig5Row {
            size: app.size_label(size),
            baseline: baseline / trials as u32,
            initial: initial / trials as u32,
            subsequent: subsequent / trials as u32,
        });
    }
    rows
}

/// Renders a sub-figure in the paper's terms (percent of baseline), with
/// the bar chart the figure shows: full scale is the 100% baseline line.
pub fn render(app: App, rows: &[Fig5Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.size.clone(),
                fmt_duration(row.baseline),
                format!("{:.1}%", row.initial_relative() * 100.0),
                format!("{:.2}%", row.subsequent_relative() * 100.0),
                format!("{:.0}x", row.speedup()),
            ]
        })
        .collect();
    let mut bars = Vec::new();
    for row in rows {
        bars.push((format!("{} init ", row.size), row.initial_relative()));
        bars.push((format!("{} subsq", row.size), row.subsequent_relative()));
    }
    format!(
        "Fig. 5 — {}\n(baseline = 100%)\n{}\n{}(bar full scale = baseline; `>` = exceeds baseline)",
        app.name(),
        render_table(
            &["input", "baseline", "Init. Comp.", "Subsq. Comp.", "speedup"],
            &table_rows,
        ),
        crate::harness::render_bars(&bars, 1.0, 40),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sift_dedup_wins_big() {
        // One small point, one trial: the shape must already show.
        let rows = run(App::Sift, 1);
        let first = &rows[0];
        assert!(
            first.speedup() > 5.0,
            "sift speedup only {:.1}x",
            first.speedup()
        );
        // Initial computation overhead is small for slow functions.
        assert!(first.initial_relative() < 1.5);
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = vec![Fig5Row {
            size: "64px".into(),
            baseline: Duration::from_millis(100),
            initial: Duration::from_millis(102),
            subsequent: Duration::from_millis(2),
        }];
        let text = render(App::Sift, &rows);
        assert!(text.contains("64px"));
        assert!(text.contains("50x"));
        assert!(text.contains("102.0%"));
    }
}
