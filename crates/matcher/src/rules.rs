//! Snort-style rule sets combining literal and regex patterns.

use std::collections::HashSet;

use crate::aho::AhoCorasick;
use crate::error::MatcherError;
use crate::regex::Regex;

/// One detection rule.
#[derive(Clone, Debug)]
pub struct Rule {
    id: u32,
    kind: RuleKind,
    message: String,
}

#[derive(Clone, Debug)]
enum RuleKind {
    Literal(Vec<u8>),
    LiteralNoCase(Vec<u8>),
    Regex(Regex),
}

impl Rule {
    /// A literal content rule (Snort `content:"..."`).
    pub fn literal(id: u32, content: impl AsRef<[u8]>) -> Self {
        Rule {
            id,
            kind: RuleKind::Literal(content.as_ref().to_vec()),
            message: String::new(),
        }
    }

    /// A case-insensitive literal content rule (Snort
    /// `content:"..."; nocase;`).
    pub fn literal_nocase(id: u32, content: impl AsRef<[u8]>) -> Self {
        Rule {
            id,
            kind: RuleKind::LiteralNoCase(content.as_ref().to_vec()),
            message: String::new(),
        }
    }

    /// A regex rule (Snort `pcre:"/.../"`).
    ///
    /// # Errors
    ///
    /// Returns [`MatcherError::BadPattern`] if the pattern fails to compile.
    pub fn regex(id: u32, pattern: &str) -> Result<Self, MatcherError> {
        Ok(Rule {
            id,
            kind: RuleKind::Regex(Regex::new(pattern)?),
            message: String::new(),
        })
    }

    /// Attaches a human-readable alert message.
    pub fn with_message(mut self, message: impl Into<String>) -> Self {
        self.message = message.into();
        self
    }

    /// The rule id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The alert message (may be empty).
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// One alert produced by a scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleMatch {
    /// Which rule fired.
    pub rule_id: u32,
    /// Byte offset where the match ends (literals) or starts (regexes).
    pub offset: usize,
}

/// A compiled rule set: case-sensitive and case-insensitive literals fused
/// into two Aho-Corasick automata, regexes evaluated per rule — the
/// standard IDS fast-path/slow-path split.
#[derive(Clone, Debug)]
pub struct RuleSet {
    automaton: AhoCorasick,
    literal_ids: Vec<u32>,
    nocase_automaton: AhoCorasick,
    nocase_ids: Vec<u32>,
    regex_rules: Vec<(u32, Regex)>,
    rule_count: usize,
}

impl RuleSet {
    /// Compiles `rules` into a scanner.
    ///
    /// # Errors
    ///
    /// - [`MatcherError::DuplicateRuleId`] if two rules share an id.
    /// - [`MatcherError::EmptyPattern`] for empty literal content.
    pub fn compile(rules: Vec<Rule>) -> Result<Self, MatcherError> {
        let mut seen = HashSet::new();
        let mut literals = Vec::new();
        let mut literal_ids = Vec::new();
        let mut nocase_literals = Vec::new();
        let mut nocase_ids = Vec::new();
        let mut regex_rules = Vec::new();
        let rule_count = rules.len();
        for rule in rules {
            if !seen.insert(rule.id) {
                return Err(MatcherError::DuplicateRuleId(rule.id));
            }
            match rule.kind {
                RuleKind::Literal(content) => {
                    if content.is_empty() {
                        return Err(MatcherError::EmptyPattern);
                    }
                    literals.push(content);
                    literal_ids.push(rule.id);
                }
                RuleKind::LiteralNoCase(content) => {
                    if content.is_empty() {
                        return Err(MatcherError::EmptyPattern);
                    }
                    nocase_literals.push(content);
                    nocase_ids.push(rule.id);
                }
                RuleKind::Regex(regex) => regex_rules.push((rule.id, regex)),
            }
        }
        Ok(RuleSet {
            automaton: AhoCorasick::new(&literals),
            literal_ids,
            nocase_automaton: AhoCorasick::with_case(&nocase_literals, true),
            nocase_ids,
            regex_rules,
            rule_count,
        })
    }

    /// Total number of rules.
    pub fn len(&self) -> usize {
        self.rule_count
    }

    /// Whether the set has no rules.
    pub fn is_empty(&self) -> bool {
        self.rule_count == 0
    }

    /// Scans `payload`, returning each fired rule once (first occurrence).
    pub fn scan(&self, payload: &[u8]) -> Vec<RuleMatch> {
        let mut fired = HashSet::new();
        let mut out = Vec::new();
        self.automaton.for_each_match(payload, |m| {
            let id = self.literal_ids[m.pattern];
            if fired.insert(id) {
                out.push(RuleMatch { rule_id: id, offset: m.end });
            }
            true
        });
        self.nocase_automaton.for_each_match(payload, |m| {
            let id = self.nocase_ids[m.pattern];
            if fired.insert(id) {
                out.push(RuleMatch { rule_id: id, offset: m.end });
            }
            true
        });
        for (id, regex) in &self.regex_rules {
            if let Some((start, _)) = regex.find(payload) {
                if fired.insert(*id) {
                    out.push(RuleMatch { rule_id: *id, offset: start });
                }
            }
        }
        out.sort_by_key(|m| m.rule_id);
        out
    }

    /// Scans a batch of packets, returning `(packet_index, matches)` for
    /// packets that fired at least one rule — the virus-scanner workload of
    /// the paper's evaluation.
    pub fn scan_packets<'a>(
        &self,
        packets: impl IntoIterator<Item = &'a [u8]>,
    ) -> Vec<(usize, Vec<RuleMatch>)> {
        packets
            .into_iter()
            .enumerate()
            .filter_map(|(idx, payload)| {
                let matches = self.scan(payload);
                (!matches.is_empty()).then_some((idx, matches))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ruleset() -> RuleSet {
        RuleSet::compile(vec![
            Rule::literal(1, "EICAR").with_message("test virus"),
            Rule::literal(2, "cmd.exe"),
            Rule::regex(3, r"SELECT .+ FROM .+ WHERE").unwrap(),
            Rule::regex(4, r"^\x7fELF").unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn literal_rules_fire() {
        let rs = ruleset();
        let matches = rs.scan(b"download cmd.exe now");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].rule_id, 2);
    }

    #[test]
    fn regex_rules_fire() {
        let rs = ruleset();
        let matches = rs.scan(b"SELECT name FROM users WHERE id=1");
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].rule_id, 3);
    }

    #[test]
    fn anchored_regex_respects_position() {
        let rs = ruleset();
        assert_eq!(rs.scan(b"\x7fELF binary").len(), 1);
        assert!(rs.scan(b"not \x7fELF").is_empty());
    }

    #[test]
    fn multiple_rules_fire_sorted() {
        let rs = ruleset();
        let matches = rs.scan(b"EICAR cmd.exe SELECT a FROM b WHERE c");
        let ids: Vec<u32> = matches.iter().map(|m| m.rule_id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn each_rule_fires_once() {
        let rs = ruleset();
        let matches = rs.scan(b"EICAR EICAR EICAR");
        assert_eq!(matches.len(), 1);
    }

    #[test]
    fn clean_payload_fires_nothing() {
        let rs = ruleset();
        assert!(rs.scan(b"perfectly innocent traffic").is_empty());
    }

    #[test]
    fn duplicate_ids_rejected() {
        let err = RuleSet::compile(vec![Rule::literal(7, "a"), Rule::literal(7, "b")])
            .unwrap_err();
        assert_eq!(err, MatcherError::DuplicateRuleId(7));
    }

    #[test]
    fn empty_literal_rejected() {
        assert_eq!(
            RuleSet::compile(vec![Rule::literal(1, "")]).unwrap_err(),
            MatcherError::EmptyPattern
        );
    }

    #[test]
    fn scan_packets_reports_only_hits() {
        let rs = ruleset();
        let packets: Vec<&[u8]> = vec![b"clean", b"has cmd.exe", b"clean", b"EICAR!"];
        let report = rs.scan_packets(packets);
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].0, 1);
        assert_eq!(report[1].0, 3);
    }

    #[test]
    fn large_rule_set_scan() {
        let mut rules: Vec<Rule> =
            (0..2000).map(|i| Rule::literal(i, format!("malware-sig-{i:04}"))).collect();
        rules.push(Rule::regex(5000, r"evil-[0-9]{4}-payload").unwrap());
        let rs = RuleSet::compile(rules).unwrap();
        assert_eq!(rs.len(), 2001);
        let matches = rs.scan(b"xx malware-sig-1234 yy evil-9999-payload zz");
        assert_eq!(matches.len(), 2);
        assert!(matches.iter().any(|m| m.rule_id == 1234));
        assert!(matches.iter().any(|m| m.rule_id == 5000));
    }

    #[test]
    fn nocase_rules_fold_case() {
        let rs = RuleSet::compile(vec![
            Rule::literal(1, "Exact"),
            Rule::literal_nocase(2, "AnyCase"),
        ])
        .unwrap();
        // Case-sensitive rule only fires on exact case.
        assert!(rs.scan(b"prefix Exact suffix").iter().any(|m| m.rule_id == 1));
        assert!(rs.scan(b"prefix exact suffix").is_empty());
        // Nocase rule fires on any casing.
        for payload in [&b"xx ANYCASE yy"[..], b"xx anycase yy", b"xx AnYcAsE yy"] {
            let matches = rs.scan(payload);
            assert_eq!(matches.len(), 1, "{payload:?}");
            assert_eq!(matches[0].rule_id, 2);
        }
    }

    #[test]
    fn empty_nocase_literal_rejected() {
        assert_eq!(
            RuleSet::compile(vec![Rule::literal_nocase(1, "")]).unwrap_err(),
            MatcherError::EmptyPattern
        );
    }

    #[test]
    fn message_accessor() {
        let rule = Rule::literal(1, "x").with_message("alert!");
        assert_eq!(rule.message(), "alert!");
        assert_eq!(rule.id(), 1);
    }
}
