//! The Aho-Corasick multi-pattern automaton.

use std::collections::VecDeque;

/// A literal match: which pattern, ending where.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LiteralMatch {
    /// Index of the pattern in construction order.
    pub pattern: usize,
    /// Byte offset one past the match's last byte.
    pub end: usize,
}

#[derive(Clone, Debug)]
struct Node {
    // Dense next-state table; u32::MAX means "no transition yet".
    next: [u32; 256],
    fail: u32,
    // Indices of patterns ending at this node (including via suffix links,
    // folded in during construction).
    outputs: Vec<u32>,
}

impl Node {
    fn new() -> Self {
        Node { next: [u32::MAX; 256], fail: 0, outputs: Vec::new() }
    }
}

/// A compiled Aho-Corasick automaton over byte patterns.
///
/// Matching runs in `O(haystack + matches)` regardless of pattern count —
/// the reason IDS engines prefilter with it before invoking per-rule
/// regexes.
///
/// # Example
///
/// ```
/// use speed_matcher::AhoCorasick;
///
/// let ac = AhoCorasick::new(&[b"he".to_vec(), b"she".to_vec(), b"hers".to_vec()]);
/// let matches = ac.find_all(b"ushers");
/// assert_eq!(matches.len(), 3); // "she", "he", "hers"
/// ```
#[derive(Clone, Debug)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_lens: Vec<usize>,
    case_insensitive: bool,
}

impl AhoCorasick {
    /// Builds an automaton over `patterns` (case-sensitive).
    pub fn new(patterns: &[Vec<u8>]) -> Self {
        AhoCorasick::with_case(patterns, false)
    }

    /// Builds an automaton, optionally folding ASCII case.
    pub fn with_case(patterns: &[Vec<u8>], case_insensitive: bool) -> Self {
        let mut nodes = vec![Node::new()];
        let mut pattern_lens = Vec::with_capacity(patterns.len());

        // Trie construction.
        for (idx, pattern) in patterns.iter().enumerate() {
            pattern_lens.push(pattern.len());
            let mut state = 0u32;
            for &raw in pattern {
                let byte = if case_insensitive { raw.to_ascii_lowercase() } else { raw };
                let next = nodes[state as usize].next[usize::from(byte)];
                state = if next == u32::MAX {
                    let new_state = nodes.len() as u32;
                    nodes[state as usize].next[usize::from(byte)] = new_state;
                    nodes.push(Node::new());
                    new_state
                } else {
                    next
                };
            }
            nodes[state as usize].outputs.push(idx as u32);
        }

        // BFS failure links, converting the trie into a dense DFA.
        let mut queue = VecDeque::new();
        for byte in 0..256 {
            let child = nodes[0].next[byte];
            if child == u32::MAX {
                nodes[0].next[byte] = 0;
            } else {
                nodes[child as usize].fail = 0;
                queue.push_back(child);
            }
        }
        while let Some(state) = queue.pop_front() {
            let fail = nodes[state as usize].fail;
            let fail_outputs = nodes[fail as usize].outputs.clone();
            nodes[state as usize].outputs.extend(fail_outputs);
            for byte in 0..256 {
                let child = nodes[state as usize].next[byte];
                if child == u32::MAX {
                    nodes[state as usize].next[byte] = nodes[fail as usize].next[byte];
                } else {
                    nodes[child as usize].fail = nodes[fail as usize].next[byte];
                    queue.push_back(child);
                }
            }
        }

        AhoCorasick { nodes, pattern_lens, case_insensitive }
    }

    /// Number of patterns compiled in.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }

    /// Number of automaton states (for capacity diagnostics).
    pub fn state_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finds all pattern occurrences in `haystack`.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<LiteralMatch> {
        let mut out = Vec::new();
        self.for_each_match(haystack, |m| {
            out.push(m);
            true
        });
        out
    }

    /// Returns whether any pattern occurs (early exit on first match).
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        let mut found = false;
        self.for_each_match(haystack, |_| {
            found = true;
            false
        });
        found
    }

    /// Streams matches to `visit`; return `false` from the callback to stop.
    pub fn for_each_match(
        &self,
        haystack: &[u8],
        mut visit: impl FnMut(LiteralMatch) -> bool,
    ) {
        let mut state = 0u32;
        for (pos, &raw) in haystack.iter().enumerate() {
            let byte = if self.case_insensitive { raw.to_ascii_lowercase() } else { raw };
            state = self.nodes[state as usize].next[usize::from(byte)];
            for &pattern in &self.nodes[state as usize].outputs {
                let keep_going =
                    visit(LiteralMatch { pattern: pattern as usize, end: pos + 1 });
                if !keep_going {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns(strs: &[&str]) -> Vec<Vec<u8>> {
        strs.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    #[test]
    fn classic_ushers_example() {
        let ac = AhoCorasick::new(&patterns(&["he", "she", "his", "hers"]));
        let matches = ac.find_all(b"ushers");
        let found: Vec<(usize, usize)> =
            matches.iter().map(|m| (m.pattern, m.end)).collect();
        assert!(found.contains(&(1, 4))); // she @ 4
        assert!(found.contains(&(0, 4))); // he @ 4
        assert!(found.contains(&(3, 6))); // hers @ 6
        assert_eq!(matches.len(), 3);
    }

    #[test]
    fn no_match() {
        let ac = AhoCorasick::new(&patterns(&["xyz"]));
        assert!(ac.find_all(b"abcabcabc").is_empty());
        assert!(!ac.is_match(b"abcabcabc"));
    }

    #[test]
    fn overlapping_occurrences() {
        let ac = AhoCorasick::new(&patterns(&["aa"]));
        assert_eq!(ac.find_all(b"aaaa").len(), 3);
    }

    #[test]
    fn pattern_at_start_and_end() {
        let ac = AhoCorasick::new(&patterns(&["ab"]));
        let matches = ac.find_all(b"abxxab");
        assert_eq!(matches.len(), 2);
        assert_eq!(matches[0].end, 2);
        assert_eq!(matches[1].end, 6);
    }

    #[test]
    fn case_insensitive_matching() {
        let ac = AhoCorasick::with_case(&patterns(&["Virus"]), true);
        assert!(ac.is_match(b"VIRUS detected"));
        assert!(ac.is_match(b"virus detected"));
        assert!(ac.is_match(b"ViRuS detected"));
        let cs = AhoCorasick::new(&patterns(&["Virus"]));
        assert!(!cs.is_match(b"VIRUS detected"));
    }

    #[test]
    fn early_exit_is_match() {
        let ac = AhoCorasick::new(&patterns(&["needle"]));
        let haystack = [b"needle".to_vec(), vec![b'x'; 1_000_000]].concat();
        // is_match must not visit the rest.
        assert!(ac.is_match(&haystack));
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[vec![0x00, 0xFF, 0x00], vec![0xDE, 0xAD]]);
        let haystack = [0x01, 0x00, 0xFF, 0x00, 0xDE, 0xAD, 0xBE];
        let matches = ac.find_all(&haystack);
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn many_patterns_shared_prefixes() {
        let pats: Vec<Vec<u8>> =
            (0..500).map(|i| format!("prefix-{i:03}").into_bytes()).collect();
        let ac = AhoCorasick::new(&pats);
        assert_eq!(ac.pattern_count(), 500);
        let matches = ac.find_all(b"xx prefix-042 yy prefix-499 zz");
        assert_eq!(matches.len(), 2);
        assert!(matches.iter().any(|m| m.pattern == 42));
        assert!(matches.iter().any(|m| m.pattern == 499));
    }

    #[test]
    fn duplicate_patterns_both_reported() {
        let ac = AhoCorasick::new(&patterns(&["dup", "dup"]));
        let matches = ac.find_all(b"a dup b");
        assert_eq!(matches.len(), 2);
    }

    #[test]
    fn empty_haystack() {
        let ac = AhoCorasick::new(&patterns(&["a"]));
        assert!(ac.find_all(b"").is_empty());
    }

    #[test]
    fn suffix_patterns_fold_into_outputs() {
        // "abcde" contains "bcd" which contains "cd": all three must be
        // reported at the right positions via failure-link output folding.
        let ac = AhoCorasick::new(&patterns(&["abcde", "bcd", "cd"]));
        let matches = ac.find_all(b"xabcdex");
        let found: Vec<(usize, usize)> =
            matches.iter().map(|m| (m.pattern, m.end)).collect();
        assert!(found.contains(&(2, 5))); // cd ends at 5
        assert!(found.contains(&(1, 5))); // bcd ends at 5
        assert!(found.contains(&(0, 6))); // abcde ends at 6
    }

    #[test]
    fn throughput_is_rule_count_independent() {
        // Linear scanning: 10× the patterns must not mean 10× the time.
        let haystack: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        let small = AhoCorasick::new(
            &(0..100).map(|i| format!("sig{i:05}").into_bytes()).collect::<Vec<_>>(),
        );
        let large = AhoCorasick::new(
            &(0..1000).map(|i| format!("sig{i:05}").into_bytes()).collect::<Vec<_>>(),
        );
        let time = |ac: &AhoCorasick| {
            let start = std::time::Instant::now();
            let _ = ac.find_all(&haystack);
            start.elapsed()
        };
        let small_time = time(&small).max(std::time::Duration::from_micros(1));
        let large_time = time(&large);
        assert!(
            large_time < small_time * 5,
            "large {large_time:?} vs small {small_time:?}"
        );
    }
}
