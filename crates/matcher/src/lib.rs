//! Multi-pattern matching — the reproduction's stand-in for `libpcre`'s
//! `pcre_exec(·)` driven by Snort rules (use case 3 of the SPEED paper,
//! §V-A: "over 4 million valid network packets […] and over 3,700 patterns
//! from Snort rules").
//!
//! Two engines compose, as in real intrusion-detection pipelines:
//!
//! - [`AhoCorasick`] — a failure-link automaton matching thousands of
//!   literal patterns in one pass over the payload.
//! - [`Regex`] — a backtracking engine for a PCRE subset (literals, `.`,
//!   classes, escapes, `*` `+` `?` quantifiers, alternation, groups,
//!   anchors), used for rules that need more than literals.
//! - [`RuleSet`] — Snort-style rules mixing both kinds, with a
//!   [`RuleSet::scan`] entry point whose cost is linear in
//!   `rules × payload` for the regex part — the expensive, highly
//!   deduplicable computation of Fig. 5c.
//!
//! # Example
//!
//! ```
//! use speed_matcher::{Rule, RuleSet};
//!
//! let rules = RuleSet::compile(vec![
//!     Rule::literal(1, "cmd.exe"),
//!     Rule::regex(2, r"GET /admin/.*\.php").unwrap(),
//! ])
//! .unwrap();
//! let matches = rules.scan(b"GET /admin/login.php HTTP/1.1");
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].rule_id, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aho;
mod error;
mod regex;
mod rules;

pub use aho::{AhoCorasick, LiteralMatch};
pub use error::MatcherError;
pub use regex::Regex;
pub use rules::{Rule, RuleMatch, RuleSet};
