use std::error::Error;
use std::fmt;

/// Errors from pattern compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MatcherError {
    /// A regex pattern failed to parse.
    BadPattern {
        /// The offending pattern.
        pattern: String,
        /// Byte offset of the problem.
        at: usize,
        /// What went wrong.
        why: String,
    },
    /// A rule set contained a duplicate rule id.
    DuplicateRuleId(u32),
    /// An empty literal pattern (would match everywhere).
    EmptyPattern,
}

impl fmt::Display for MatcherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatcherError::BadPattern { pattern, at, why } => {
                write!(f, "bad pattern `{pattern}` at byte {at}: {why}")
            }
            MatcherError::DuplicateRuleId(id) => write!(f, "duplicate rule id {id}"),
            MatcherError::EmptyPattern => write!(f, "empty literal pattern"),
        }
    }
}

impl Error for MatcherError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let err = MatcherError::BadPattern {
            pattern: "a(".into(),
            at: 2,
            why: "unclosed group".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("a("));
        assert!(msg.contains("unclosed group"));
    }
}
