//! A backtracking regex engine for a PCRE subset.
//!
//! Supported syntax: literals, `.`, character classes (`[a-z]`, `[^0-9]`),
//! escapes (`\d \D \w \W \s \S \n \r \t \xHH` and escaped metacharacters),
//! quantifiers `*` `+` `?` `{m}` `{m,}` `{m,n}` (greedy), alternation `|`,
//! non-capturing groups `(...)`, and anchors `^` `$`.
//!
//! Patterns compile to a small instruction set executed by a backtracking
//! VM with an explicit stack and a step budget (hostile patterns cannot
//! hang the scanner — they run out of budget and report "no match").

use crate::error::MatcherError;

const MAX_REPEAT_EXPANSION: u32 = 256;
const STEP_BUDGET_PER_BYTE: usize = 512;

#[derive(Clone, Debug, PartialEq, Eq)]
struct ClassSpec {
    negated: bool,
    ranges: Vec<(u8, u8)>,
}

impl ClassSpec {
    fn matches(&self, byte: u8) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= byte && byte <= hi);
        inside != self.negated
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Inst {
    Char(u8),
    Any,
    Class(u16),
    Split(u32, u32),
    Jmp(u32),
    AnchorStart,
    AnchorEnd,
    Accept,
}

/// A compiled regular expression.
///
/// # Example
///
/// ```
/// use speed_matcher::Regex;
///
/// let re = Regex::new(r"^GET /[a-z]+\.(php|cgi)").unwrap();
/// assert!(re.is_match(b"GET /index.php HTTP/1.1"));
/// assert!(!re.is_match(b"POST /index.php HTTP/1.1"));
/// ```
#[derive(Clone, Debug)]
pub struct Regex {
    pattern: String,
    program: Vec<Inst>,
    classes: Vec<ClassSpec>,
    anchored_start: bool,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    classes: Vec<ClassSpec>,
}

#[derive(Clone, Debug)]
enum Ast {
    Empty,
    Literal(u8),
    Any,
    Class(u16),
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Repeat { node: Box<Ast>, min: u32, max: Option<u32> },
    AnchorStart,
    AnchorEnd,
}

impl<'a> Parser<'a> {
    fn error(&self, why: impl Into<String>) -> MatcherError {
        MatcherError::BadPattern {
            pattern: String::from_utf8_lossy(self.bytes).into_owned(),
            at: self.pos,
            why: why.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.pos += 1;
        Some(byte)
    }

    fn parse_alternation(&mut self) -> Result<Ast, MatcherError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, MatcherError> {
        let mut parts = Vec::new();
        while let Some(byte) = self.peek() {
            if byte == b'|' || byte == b')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, MatcherError> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some(b'*') => {
                self.bump();
                (0, None)
            }
            Some(b'+') => {
                self.bump();
                (1, None)
            }
            Some(b'?') => {
                self.bump();
                (0, Some(1))
            }
            Some(b'{') => {
                self.bump();
                let (min, max) = self.parse_bounds()?;
                (min, max)
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd) {
            return Err(self.error("quantifier on anchor"));
        }
        if let Some(max) = max {
            if max < min {
                return Err(self.error("repeat bound max < min"));
            }
            if max > MAX_REPEAT_EXPANSION {
                return Err(self.error("repeat bound too large"));
            }
        }
        if min > MAX_REPEAT_EXPANSION {
            return Err(self.error("repeat bound too large"));
        }
        Ok(Ast::Repeat { node: Box::new(atom), min, max })
    }

    fn parse_bounds(&mut self) -> Result<(u32, Option<u32>), MatcherError> {
        let min = self.parse_number()?;
        match self.bump() {
            Some(b'}') => Ok((min, Some(min))),
            Some(b',') => {
                if self.peek() == Some(b'}') {
                    self.bump();
                    Ok((min, None))
                } else {
                    let max = self.parse_number()?;
                    match self.bump() {
                        Some(b'}') => Ok((min, Some(max))),
                        _ => Err(self.error("expected `}` after repeat bounds")),
                    }
                }
            }
            _ => Err(self.error("expected `,` or `}` in repeat bounds")),
        }
    }

    fn parse_number(&mut self) -> Result<u32, MatcherError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.error("expected number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are utf-8")
            .parse()
            .map_err(|_| self.error("number too large"))
    }

    fn parse_atom(&mut self) -> Result<Ast, MatcherError> {
        match self.bump().ok_or_else(|| self.error("unexpected end of pattern"))? {
            b'(' => {
                // Accept non-capturing prefix `?:` for PCRE compatibility.
                if self.peek() == Some(b'?') {
                    self.bump();
                    if self.bump() != Some(b':') {
                        return Err(self.error("only (?:...) groups supported"));
                    }
                }
                let inner = self.parse_alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.error("unclosed group"));
                }
                Ok(inner)
            }
            b')' => Err(self.error("unmatched `)`")),
            b'[' => {
                let class = self.parse_class()?;
                Ok(self.intern_class(class))
            }
            b'.' => Ok(Ast::Any),
            b'^' => Ok(Ast::AnchorStart),
            b'$' => Ok(Ast::AnchorEnd),
            b'\\' => {
                let class_or_literal = self.parse_escape()?;
                Ok(class_or_literal)
            }
            b'*' | b'+' | b'?' => Err(self.error("quantifier with nothing to repeat")),
            byte => Ok(Ast::Literal(byte)),
        }
    }

    fn parse_escape(&mut self) -> Result<Ast, MatcherError> {
        let byte = self.bump().ok_or_else(|| self.error("dangling escape"))?;
        Ok(match byte {
            b'd' => self
                .intern_class(ClassSpec { negated: false, ranges: vec![(b'0', b'9')] }),
            b'D' => {
                self.intern_class(ClassSpec { negated: true, ranges: vec![(b'0', b'9')] })
            }
            b'w' => {
                self.intern_class(ClassSpec { negated: false, ranges: word_ranges() })
            }
            b'W' => self.intern_class(ClassSpec { negated: true, ranges: word_ranges() }),
            b's' => {
                self.intern_class(ClassSpec { negated: false, ranges: space_ranges() })
            }
            b'S' => {
                self.intern_class(ClassSpec { negated: true, ranges: space_ranges() })
            }
            b'n' => Ast::Literal(b'\n'),
            b'r' => Ast::Literal(b'\r'),
            b't' => Ast::Literal(b'\t'),
            b'0' => Ast::Literal(0),
            b'x' => {
                let hi = self.bump().ok_or_else(|| self.error("truncated \\x escape"))?;
                let lo = self.bump().ok_or_else(|| self.error("truncated \\x escape"))?;
                let value = (hex_value(hi).ok_or_else(|| self.error("bad hex digit"))?
                    << 4)
                    | hex_value(lo).ok_or_else(|| self.error("bad hex digit"))?;
                Ast::Literal(value)
            }
            other => Ast::Literal(other),
        })
    }

    fn parse_class(&mut self) -> Result<ClassSpec, MatcherError> {
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            let byte = self.bump().ok_or_else(|| self.error("unclosed class"))?;
            if byte == b']' {
                if ranges.is_empty() {
                    // PCRE treats a leading `]` as a literal.
                    ranges.push((b']', b']'));
                    continue;
                }
                break;
            }
            let lo = if byte == b'\\' {
                match self.parse_escape()? {
                    Ast::Literal(b) => ClassAtom::Byte(b),
                    Ast::Class(idx) => ClassAtom::Nested(idx),
                    _ => return Err(self.error("bad class escape")),
                }
            } else {
                ClassAtom::Byte(byte)
            };
            match lo {
                ClassAtom::Nested(idx) => {
                    // Fold a nested \d/\w/\s into this class's ranges.
                    let nested = self.classes[usize::from(idx)].clone();
                    if nested.negated {
                        return Err(self.error("negated escape inside class"));
                    }
                    ranges.extend(nested.ranges);
                }
                ClassAtom::Byte(lo) => {
                    if self.peek() == Some(b'-')
                        && self.bytes.get(self.pos + 1).copied() != Some(b']')
                        && self.bytes.get(self.pos + 1).is_some()
                    {
                        self.bump();
                        let hi_byte =
                            self.bump().ok_or_else(|| self.error("unclosed range"))?;
                        let hi = if hi_byte == b'\\' {
                            match self.parse_escape()? {
                                Ast::Literal(b) => b,
                                _ => return Err(self.error("bad range bound")),
                            }
                        } else {
                            hi_byte
                        };
                        if hi < lo {
                            return Err(self.error("reversed range"));
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
        }
        Ok(ClassSpec { negated, ranges })
    }

    fn intern_class(&mut self, class: ClassSpec) -> Ast {
        let idx = self.classes.len() as u16;
        self.classes.push(class);
        Ast::Class(idx)
    }
}

enum ClassAtom {
    Byte(u8),
    Nested(u16),
}

fn word_ranges() -> Vec<(u8, u8)> {
    vec![(b'a', b'z'), (b'A', b'Z'), (b'0', b'9'), (b'_', b'_')]
}

fn space_ranges() -> Vec<(u8, u8)> {
    vec![(b' ', b' '), (b'\t', b'\t'), (b'\n', b'\n'), (b'\r', b'\r'), (0x0B, 0x0C)]
}

fn hex_value(byte: u8) -> Option<u8> {
    match byte {
        b'0'..=b'9' => Some(byte - b'0'),
        b'a'..=b'f' => Some(byte - b'a' + 10),
        b'A'..=b'F' => Some(byte - b'A' + 10),
        _ => None,
    }
}

struct Compiler {
    program: Vec<Inst>,
}

impl Compiler {
    fn emit(&mut self, inst: Inst) -> u32 {
        self.program.push(inst);
        (self.program.len() - 1) as u32
    }

    fn compile(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(b) => {
                self.emit(Inst::Char(*b));
            }
            Ast::Any => {
                self.emit(Inst::Any);
            }
            Ast::Class(idx) => {
                self.emit(Inst::Class(*idx));
            }
            Ast::AnchorStart => {
                self.emit(Inst::AnchorStart);
            }
            Ast::AnchorEnd => {
                self.emit(Inst::AnchorEnd);
            }
            Ast::Concat(parts) => {
                for part in parts {
                    self.compile(part);
                }
            }
            Ast::Alt(branches) => {
                // split b1, split b2, ... with jumps to the join point.
                let mut jumps = Vec::new();
                for (i, branch) in branches.iter().enumerate() {
                    if i + 1 < branches.len() {
                        let split = self.emit(Inst::Split(0, 0));
                        self.compile(branch);
                        jumps.push(self.emit(Inst::Jmp(0)));
                        let next = self.program.len() as u32;
                        self.program[split as usize] = Inst::Split(split + 1, next);
                    } else {
                        self.compile(branch);
                    }
                }
                let join = self.program.len() as u32;
                for jump in jumps {
                    self.program[jump as usize] = Inst::Jmp(join);
                }
            }
            Ast::Repeat { node, min, max } => {
                // Mandatory copies.
                for _ in 0..*min {
                    self.compile(node);
                }
                match max {
                    None => {
                        // Greedy loop: split(body, exit); body; jmp split.
                        let split = self.emit(Inst::Split(0, 0));
                        self.compile(node);
                        self.emit(Inst::Jmp(split));
                        let exit = self.program.len() as u32;
                        self.program[split as usize] = Inst::Split(split + 1, exit);
                    }
                    Some(max) => {
                        // Optional copies: each guarded by a split to exit.
                        let mut splits = Vec::new();
                        for _ in *min..*max {
                            splits.push(self.emit(Inst::Split(0, 0)));
                            self.compile(node);
                        }
                        let exit = self.program.len() as u32;
                        for split in splits {
                            self.program[split as usize] = Inst::Split(split + 1, exit);
                        }
                    }
                }
            }
        }
    }
}

impl Regex {
    /// Compiles `pattern`.
    ///
    /// # Errors
    ///
    /// Returns [`MatcherError::BadPattern`] with the byte offset of the
    /// problem.
    pub fn new(pattern: &str) -> Result<Self, MatcherError> {
        let mut parser =
            Parser { bytes: pattern.as_bytes(), pos: 0, classes: Vec::new() };
        let ast = parser.parse_alternation()?;
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters (unmatched `)`?)"));
        }
        let mut compiler = Compiler { program: Vec::new() };
        compiler.compile(&ast);
        compiler.emit(Inst::Accept);
        let anchored_start = matches!(compiler.program.first(), Some(Inst::AnchorStart));
        Ok(Regex {
            pattern: pattern.to_string(),
            program: compiler.program,
            classes: parser.classes,
            anchored_start,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Returns whether the pattern matches anywhere in `haystack`
    /// (unanchored search, like `pcre_exec`).
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        self.find(haystack).is_some()
    }

    /// Finds the first match, returning `(start, end)` byte offsets.
    pub fn find(&self, haystack: &[u8]) -> Option<(usize, usize)> {
        let budget = STEP_BUDGET_PER_BYTE * (haystack.len() + 16);
        let starts: Box<dyn Iterator<Item = usize>> = if self.anchored_start {
            Box::new(std::iter::once(0))
        } else {
            Box::new(0..=haystack.len())
        };
        let mut steps = 0usize;
        for start in starts {
            if let Some(end) = self.match_at(haystack, start, &mut steps, budget) {
                return Some((start, end));
            }
            if steps >= budget {
                return None;
            }
        }
        None
    }

    fn match_at(
        &self,
        haystack: &[u8],
        start: usize,
        steps: &mut usize,
        budget: usize,
    ) -> Option<usize> {
        // Backtracking VM with an explicit stack of (pc, pos).
        let mut stack: Vec<(u32, usize)> = vec![(0, start)];
        while let Some((mut pc, mut pos)) = stack.pop() {
            loop {
                *steps += 1;
                if *steps >= budget {
                    return None;
                }
                match self.program[pc as usize] {
                    Inst::Accept => return Some(pos),
                    Inst::Char(expected) => {
                        if haystack.get(pos) == Some(&expected) {
                            pc += 1;
                            pos += 1;
                        } else {
                            break;
                        }
                    }
                    Inst::Any => {
                        if pos < haystack.len() {
                            pc += 1;
                            pos += 1;
                        } else {
                            break;
                        }
                    }
                    Inst::Class(idx) => {
                        let matched = haystack
                            .get(pos)
                            .is_some_and(|&b| self.classes[usize::from(idx)].matches(b));
                        if matched {
                            pc += 1;
                            pos += 1;
                        } else {
                            break;
                        }
                    }
                    Inst::AnchorStart => {
                        if pos == 0 {
                            pc += 1;
                        } else {
                            break;
                        }
                    }
                    Inst::AnchorEnd => {
                        if pos == haystack.len() {
                            pc += 1;
                        } else {
                            break;
                        }
                    }
                    Inst::Jmp(target) => pc = target,
                    Inst::Split(primary, alternative) => {
                        stack.push((alternative, pos));
                        pc = primary;
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches(pattern: &str, haystack: &str) -> bool {
        Regex::new(pattern).unwrap().is_match(haystack.as_bytes())
    }

    #[test]
    fn literal_match() {
        assert!(matches("abc", "xxabcxx"));
        assert!(!matches("abc", "ab c"));
    }

    #[test]
    fn dot_matches_any_byte() {
        assert!(matches("a.c", "abc"));
        assert!(matches("a.c", "a\0c"));
        assert!(!matches("a.c", "ac"));
    }

    #[test]
    fn star_quantifier() {
        assert!(matches("ab*c", "ac"));
        assert!(matches("ab*c", "abbbbc"));
        assert!(!matches("ab*c", "adc"));
    }

    #[test]
    fn plus_quantifier() {
        assert!(!matches("ab+c", "ac"));
        assert!(matches("ab+c", "abc"));
        assert!(matches("ab+c", "abbbc"));
    }

    #[test]
    fn question_quantifier() {
        assert!(matches("colou?r", "color"));
        assert!(matches("colou?r", "colour"));
        assert!(!matches("colou?r", "colouur"));
    }

    #[test]
    fn bounded_repeats() {
        assert!(matches("a{3}", "aaa"));
        assert!(!matches("^a{3}$", "aa"));
        assert!(matches("a{2,4}", "aaa"));
        assert!(matches("^a{2,}$", "aaaaa"));
        assert!(!matches("^a{2,4}$", "aaaaa"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(matches("cat|dog", "hotdog stand"));
        assert!(matches("(ab|cd)+", "xxabcdab"));
        assert!(matches("a(?:b|c)d", "acd"));
        assert!(!matches("^(ab|cd)$", "ad"));
    }

    #[test]
    fn character_classes() {
        assert!(matches("[a-f]+", "deadbeef"));
        assert!(!matches("^[a-f]+$", "xyz"));
        assert!(matches("[^0-9]", "a"));
        assert!(!matches("^[^0-9]+$", "123"));
        assert!(matches("[]x]", "]")); // leading ] is literal
    }

    #[test]
    fn escapes() {
        assert!(matches(r"\d+", "abc123"));
        assert!(!matches(r"^\d+$", "abc"));
        assert!(matches(r"\w+", "word_1"));
        assert!(matches(r"\s", "a b"));
        assert!(matches(r"\.", "a.b"));
        assert!(!matches(r"^\.$", "x"));
        assert!(matches(r"\x41", "A"));
        assert!(matches(r"a\nb", "a\nb"));
    }

    #[test]
    fn class_with_escape_inside() {
        assert!(matches(r"^[\d\s]+$", "1 2 3"));
        assert!(!matches(r"^[\d\s]+$", "1a2"));
    }

    #[test]
    fn anchors() {
        assert!(matches("^start", "start of line"));
        assert!(!matches("^start", "a start"));
        assert!(matches("end$", "the end"));
        assert!(!matches("end$", "end of story"));
        assert!(matches("^exact$", "exact"));
    }

    #[test]
    fn unanchored_find_positions() {
        let re = Regex::new("world").unwrap();
        assert_eq!(re.find(b"hello world"), Some((6, 11)));
        assert_eq!(re.find(b"nothing"), None);
    }

    #[test]
    fn greedy_matching_end() {
        let re = Regex::new("a+").unwrap();
        assert_eq!(re.find(b"caaat"), Some((1, 4)));
    }

    #[test]
    fn empty_pattern_matches_empty() {
        assert!(matches("", ""));
        assert!(matches("", "anything"));
    }

    #[test]
    fn snort_like_patterns() {
        assert!(matches(r"GET /.*\.php", "GET /admin/index.php HTTP/1.1"));
        assert!(matches(r"^User-Agent: (curl|wget)/\d", "User-Agent: curl/7.88"));
        let re = Regex::new(r"\x00\x01\x86\xa5").unwrap();
        assert!(re.is_match(&[0x00, 0x01, 0x86, 0xa5, b'x']));
    }

    #[test]
    fn parse_errors_have_positions() {
        for (pattern, fragment) in [
            ("a(", "unclosed group"),
            ("a)", "trailing"),
            ("*a", "nothing to repeat"),
            ("[a-", "unclosed"),
            ("[z-a]", "reversed range"),
            (r"\x4", "truncated"),
            ("a{4,2}", "max < min"),
            ("a{99999}", "too large"),
        ] {
            let err = Regex::new(pattern).unwrap_err();
            match err {
                MatcherError::BadPattern { why, .. } => {
                    assert!(why.contains(fragment), "pattern {pattern}: {why}")
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn pathological_pattern_terminates() {
        // (a+)+b against aaaa…a — classic catastrophic backtracking; the
        // step budget must keep this fast and return "no match".
        let re = Regex::new("(a+)+b").unwrap();
        let haystack = vec![b'a'; 64];
        let start = std::time::Instant::now();
        assert!(!re.is_match(&haystack));
        assert!(start.elapsed() < std::time::Duration::from_secs(2));
    }

    #[test]
    fn alternation_binds_looser_than_concat() {
        // `ab|cd` is (ab)|(cd), not a(b|c)d.
        assert!(matches("^ab|cd$", "ab"));
        assert!(matches("^ab|cd$", "cd"));
        assert!(!matches("^(ab|cd)$", "ad"));
        assert!(!matches("^(ab|cd)$", "abd"));
    }

    #[test]
    fn nested_groups_with_quantifiers() {
        assert!(matches("^(a(bc)*d)+$", "adabcd"));
        assert!(matches("^(a(bc)*d)+$", "abcbcd"));
        assert!(!matches("^(a(bc)*d)+$", "abcbc"));
    }

    #[test]
    fn class_with_escaped_bounds() {
        assert!(matches(r"^[\x30-\x39]+$", "0123456789"));
        assert!(!matches(r"^[\x30-\x39]+$", "12a"));
        assert!(matches(r"^[\t\n ]+$", " \t\n"));
    }

    #[test]
    fn open_ended_bounded_repeat() {
        assert!(matches("^a{3,}$", "aaaa"));
        assert!(!matches("^a{3,}$", "aa"));
    }

    #[test]
    fn dollar_inside_alternation() {
        assert!(matches("end$|stop", "will stop now"));
        assert!(matches("end$|stop", "the end"));
        assert!(!matches("^(end$|stop)$", "endx"));
    }

    #[test]
    fn binary_input_matching() {
        let re = Regex::new(r"\x00{4}").unwrap();
        assert!(re.is_match(&[1, 0, 0, 0, 0, 1]));
        assert!(!re.is_match(&[1, 0, 0, 1]));
    }
}
