//! End-to-end exercise of the `speedctl` binary: serve a store, drive it
//! with `put`/`get`, and scrape it with `metrics` in both formats.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

const SECRET: &str = "4242";

struct Server {
    child: Child,
    addr: String,
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `speedctl serve` on an ephemeral port and parses the bound
/// address from its first stdout line.
fn spawn_server() -> Server {
    let mut child = Command::new(env!("CARGO_BIN_EXE_speedctl"))
        .args(["serve", "--addr", "127.0.0.1:0", "--secret", SECRET, "--shards", "4"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn speedctl serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines.next().expect("serve prints a banner").expect("banner readable");
    let addr = banner
        .rsplit_once(" listening on ")
        .map(|(_, addr)| addr.trim().to_string())
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"));
    // Keep draining stdout in the background so the child never blocks on
    // a full pipe while the test runs.
    std::thread::spawn(move || for _ in lines {});
    Server { child, addr }
}

fn speedctl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_speedctl"))
        .args(args)
        .output()
        .expect("run speedctl")
}

#[test]
fn metrics_subcommand_scrapes_a_live_server() {
    let server = spawn_server();

    let put = speedctl(&[
        "put",
        "--addr",
        &server.addr,
        "--secret",
        SECRET,
        "--tag",
        "0b0b",
        "--data",
        "payload",
    ]);
    assert!(put.status.success(), "put failed: {put:?}");
    let get =
        speedctl(&["get", "--addr", &server.addr, "--secret", SECRET, "--tag", "0b0b"]);
    assert!(get.status.success(), "get failed: {get:?}");

    // Prometheus text exposition (the default).
    let metrics = speedctl(&["metrics", "--addr", &server.addr, "--secret", SECRET]);
    assert!(metrics.status.success(), "metrics failed: {metrics:?}");
    let text = String::from_utf8(metrics.stdout).expect("utf-8 exposition");
    assert!(text.contains("# TYPE store_gets_total counter"), "got:\n{text}");
    assert!(text.contains("# TYPE store_entries gauge"));
    assert!(text.contains("# TYPE store_request_duration_ns histogram"));
    assert!(text.contains("store_request_duration_ns_bucket{le=\"+Inf\"}"));
    assert!(text.contains("enclave_transitions_total{kind=\"ecall\"}"));
    assert!(text.contains("store_shard_entries{shard=\"0\"}"));
    // The put/get workload above is reflected in the counters.
    let line = text
        .lines()
        .find(|l| l.starts_with("store_hits_total "))
        .expect("store_hits_total rendered");
    let hits: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(hits >= 1, "the GET above must count as a hit, got {line}");

    // JSONL via --json.
    let metrics =
        speedctl(&["metrics", "--addr", &server.addr, "--secret", SECRET, "--json"]);
    assert!(metrics.status.success(), "metrics --json failed: {metrics:?}");
    let jsonl = String::from_utf8(metrics.stdout).expect("utf-8 jsonl");
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert!(
            line.starts_with("{\"name\":") && line.ends_with('}'),
            "malformed jsonl line: {line}"
        );
    }
    assert!(jsonl.contains("\"name\":\"store_puts_total\""));
    assert!(jsonl.contains("\"type\":\"histogram\""));
}
