//! Per-application quota and rate limiting.
//!
//! "A malicious application may issue a large number of 'update' requests
//! for polluting the ResultStore with useless results. To defend against it,
//! we can adopt the rate-limiting strategy into SPEED, which involves a
//! quota mechanism to limit the cache space for each application." (§III-D)

use std::collections::HashMap;

use speed_wire::AppId;

/// Limits applied to each application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuotaPolicy {
    /// Maximum live entries an application may own.
    pub max_entries_per_app: u64,
    /// Maximum total ciphertext bytes an application may have stored.
    pub max_bytes_per_app: u64,
    /// Maximum PUT requests per window.
    pub max_puts_per_window: u64,
    /// Rate-limit window length in milliseconds.
    pub window_ms: u64,
}

impl QuotaPolicy {
    /// Effectively unlimited (benchmarking configuration).
    pub fn unlimited() -> Self {
        QuotaPolicy {
            max_entries_per_app: u64::MAX,
            max_bytes_per_app: u64::MAX,
            max_puts_per_window: u64::MAX,
            window_ms: 1_000,
        }
    }
}

impl Default for QuotaPolicy {
    fn default() -> Self {
        QuotaPolicy {
            max_entries_per_app: 100_000,
            max_bytes_per_app: 4 * 1024 * 1024 * 1024,
            max_puts_per_window: 10_000,
            window_ms: 1_000,
        }
    }
}

/// The outcome of a quota check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuotaDecision {
    /// The request may proceed.
    Allow,
    /// The request must be rejected with the given reason.
    Deny(String),
}

impl QuotaDecision {
    /// Whether the decision allows the request.
    pub fn is_allowed(&self) -> bool {
        matches!(self, QuotaDecision::Allow)
    }
}

#[derive(Debug, Default, Clone)]
struct AppUsage {
    entries: u64,
    bytes: u64,
    window_start_ms: u64,
    puts_in_window: u64,
}

/// Tracks per-application usage against a [`QuotaPolicy`].
///
/// Time is injected by the caller (`now_ms`) so the tracker is fully
/// deterministic in tests; the store feeds it a monotonic millisecond clock.
#[derive(Debug)]
pub struct QuotaTracker {
    policy: QuotaPolicy,
    usage: HashMap<AppId, AppUsage>,
}

impl QuotaTracker {
    /// Creates a tracker for `policy`.
    pub fn new(policy: QuotaPolicy) -> Self {
        QuotaTracker { policy, usage: HashMap::new() }
    }

    /// The policy in force.
    pub fn policy(&self) -> QuotaPolicy {
        self.policy
    }

    /// Checks whether `app` may PUT `bytes` more ciphertext at `now_ms`,
    /// and records the PUT if allowed.
    ///
    /// Every attempt — allowed or denied — counts against the rate-limit
    /// window: an application hammering the store with oversized or
    /// otherwise-denied PUTs burns its own request budget and eventually
    /// trips the rate limit instead of retrying for free.
    pub fn check_put(&mut self, app: AppId, bytes: u64, now_ms: u64) -> QuotaDecision {
        let usage = self.usage.entry(app).or_default();
        if now_ms.saturating_sub(usage.window_start_ms) >= self.policy.window_ms {
            usage.window_start_ms = now_ms;
            usage.puts_in_window = 0;
        }
        usage.puts_in_window = usage.puts_in_window.saturating_add(1);
        if usage.puts_in_window > self.policy.max_puts_per_window {
            return QuotaDecision::Deny(format!(
                "rate limit: {} puts in current window",
                usage.puts_in_window
            ));
        }
        if usage.entries >= self.policy.max_entries_per_app {
            return QuotaDecision::Deny(format!(
                "entry quota: {} entries stored",
                usage.entries
            ));
        }
        if usage.bytes.saturating_add(bytes) > self.policy.max_bytes_per_app {
            return QuotaDecision::Deny(format!(
                "byte quota: {} bytes stored, {} requested",
                usage.bytes, bytes
            ));
        }
        usage.entries += 1;
        usage.bytes += bytes;
        QuotaDecision::Allow
    }

    /// Returns quota for an entry that was evicted or replaced.
    pub fn release(&mut self, app: AppId, bytes: u64) {
        if let Some(usage) = self.usage.get_mut(&app) {
            usage.entries = usage.entries.saturating_sub(1);
            usage.bytes = usage.bytes.saturating_sub(bytes);
        }
    }

    /// Current (entries, bytes) charged to `app`.
    pub fn usage(&self, app: AppId) -> (u64, u64) {
        self.usage.get(&app).map_or((0, 0), |u| (u.entries, u.bytes))
    }
}

/// Locks `mutex`, recovering the guard if a previous holder panicked (quota
/// buckets stay consistent across any panic point).
fn lock_bucket<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Quota tracking partitioned by application id.
///
/// Every app's state lives wholly inside one bucket, so per-app semantics
/// are identical to a single [`QuotaTracker`] — the partitioning only
/// removes the global serialization point that one tracker mutex would put
/// on the sharded store's PUT path.
#[derive(Debug)]
pub struct ShardedQuota {
    buckets: Vec<std::sync::Mutex<QuotaTracker>>,
}

impl ShardedQuota {
    /// Creates `buckets` independent trackers sharing `policy` (at least
    /// one).
    pub fn new(policy: QuotaPolicy, buckets: usize) -> Self {
        let buckets = buckets.max(1);
        ShardedQuota {
            buckets: (0..buckets)
                .map(|_| std::sync::Mutex::new(QuotaTracker::new(policy)))
                .collect(),
        }
    }

    fn bucket(&self, app: AppId) -> &std::sync::Mutex<QuotaTracker> {
        &self.buckets[app.0 as usize % self.buckets.len()]
    }

    /// See [`QuotaTracker::check_put`].
    pub fn check_put(&self, app: AppId, bytes: u64, now_ms: u64) -> QuotaDecision {
        lock_bucket(self.bucket(app)).check_put(app, bytes, now_ms)
    }

    /// See [`QuotaTracker::release`].
    pub fn release(&self, app: AppId, bytes: u64) {
        lock_bucket(self.bucket(app)).release(app, bytes);
    }

    /// See [`QuotaTracker::usage`].
    pub fn usage(&self, app: AppId) -> (u64, u64) {
        lock_bucket(self.bucket(app)).usage(app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_policy() -> QuotaPolicy {
        QuotaPolicy {
            max_entries_per_app: 3,
            max_bytes_per_app: 100,
            max_puts_per_window: 2,
            window_ms: 1_000,
        }
    }

    #[test]
    fn allows_within_limits() {
        let mut tracker = QuotaTracker::new(small_policy());
        assert!(tracker.check_put(AppId(1), 10, 0).is_allowed());
        assert_eq!(tracker.usage(AppId(1)), (1, 10));
    }

    #[test]
    fn rate_limit_trips_within_window() {
        let mut tracker = QuotaTracker::new(small_policy());
        assert!(tracker.check_put(AppId(1), 1, 0).is_allowed());
        assert!(tracker.check_put(AppId(1), 1, 100).is_allowed());
        let denied = tracker.check_put(AppId(1), 1, 200);
        assert!(matches!(denied, QuotaDecision::Deny(ref r) if r.contains("rate limit")));
    }

    #[test]
    fn denied_puts_count_against_rate_limit() {
        // Regression: denied attempts must burn the rate-limit budget, or a
        // misbehaving app could hammer the store with oversized PUTs forever
        // without ever tripping the rate limiter.
        let mut tracker = QuotaTracker::new(small_policy());
        // Oversized PUT: denied on byte quota, but still counts as attempt #1.
        let denied = tracker.check_put(AppId(1), 500, 0);
        assert!(matches!(denied, QuotaDecision::Deny(ref r) if r.contains("byte quota")));
        assert_eq!(
            tracker.usage(AppId(1)),
            (0, 0),
            "denied PUT must not consume storage quota"
        );
        // Attempt #2 (allowed) exhausts the 2-per-window budget.
        assert!(tracker.check_put(AppId(1), 1, 100).is_allowed());
        // Attempt #3 is rate-limited even though only one PUT was stored.
        let denied = tracker.check_put(AppId(1), 1, 200);
        assert!(matches!(denied, QuotaDecision::Deny(ref r) if r.contains("rate limit")));
    }

    #[test]
    fn rate_limit_resets_after_window() {
        let mut tracker = QuotaTracker::new(small_policy());
        tracker.check_put(AppId(1), 1, 0);
        tracker.check_put(AppId(1), 1, 1);
        assert!(!tracker.check_put(AppId(1), 1, 2).is_allowed());
        assert!(tracker.check_put(AppId(1), 1, 1_000).is_allowed());
    }

    #[test]
    fn entry_quota_trips() {
        let mut tracker = QuotaTracker::new(small_policy());
        for i in 0..3u64 {
            assert!(tracker.check_put(AppId(1), 1, i * 1_000).is_allowed());
        }
        let denied = tracker.check_put(AppId(1), 1, 10_000);
        assert!(
            matches!(denied, QuotaDecision::Deny(ref r) if r.contains("entry quota"))
        );
    }

    #[test]
    fn byte_quota_trips() {
        let mut tracker = QuotaTracker::new(small_policy());
        assert!(tracker.check_put(AppId(1), 90, 0).is_allowed());
        let denied = tracker.check_put(AppId(1), 20, 1_000);
        assert!(matches!(denied, QuotaDecision::Deny(ref r) if r.contains("byte quota")));
    }

    #[test]
    fn quotas_are_per_app() {
        let mut tracker = QuotaTracker::new(small_policy());
        tracker.check_put(AppId(1), 90, 0);
        assert!(tracker.check_put(AppId(2), 90, 0).is_allowed());
    }

    #[test]
    fn release_returns_quota() {
        let mut tracker = QuotaTracker::new(small_policy());
        tracker.check_put(AppId(1), 90, 0);
        tracker.release(AppId(1), 90);
        assert_eq!(tracker.usage(AppId(1)), (0, 0));
        assert!(tracker.check_put(AppId(1), 90, 2_000).is_allowed());
    }

    #[test]
    fn release_unknown_app_is_noop() {
        let mut tracker = QuotaTracker::new(small_policy());
        tracker.release(AppId(42), 10);
        assert_eq!(tracker.usage(AppId(42)), (0, 0));
    }

    #[test]
    fn unlimited_policy_never_denies() {
        let mut tracker = QuotaTracker::new(QuotaPolicy::unlimited());
        for i in 0..1_000u64 {
            assert!(tracker.check_put(AppId(1), 1 << 20, i).is_allowed());
        }
    }

    #[test]
    fn sharded_quota_matches_single_tracker_semantics() {
        let quota = ShardedQuota::new(small_policy(), 4);
        // Two apps landing in different buckets are independent; each app's
        // own limits behave exactly like a lone QuotaTracker.
        assert!(quota.check_put(AppId(1), 90, 0).is_allowed());
        assert!(quota.check_put(AppId(2), 90, 0).is_allowed());
        let denied = quota.check_put(AppId(1), 20, 1_000);
        assert!(matches!(denied, QuotaDecision::Deny(ref r) if r.contains("byte quota")));
        quota.release(AppId(1), 90);
        assert_eq!(quota.usage(AppId(1)), (0, 0));
        assert!(quota.check_put(AppId(1), 90, 2_000).is_allowed());
    }

    #[test]
    fn sharded_quota_shares_buckets_without_cross_talk() {
        // Apps 0 and 4 collide in the same bucket of a 4-way quota; their
        // accounting must still be per-app.
        let quota = ShardedQuota::new(small_policy(), 4);
        assert!(quota.check_put(AppId(0), 90, 0).is_allowed());
        assert!(quota.check_put(AppId(4), 90, 0).is_allowed());
        assert_eq!(quota.usage(AppId(0)), (1, 90));
        assert_eq!(quota.usage(AppId(4)), (1, 90));
    }
}
