//! Write-ahead-log record format for the log-structured store backend.
//!
//! Each durable mutation becomes one WAL record appended to the active
//! segment file of the shard it routes to. The on-disk frame is
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][sealed payload: len bytes]
//! ```
//!
//! where the payload is *sealed per record* under the store enclave's
//! identity ([`SealPolicy::MrEnclave`]) — the storage data path stays
//! protected without trusting the filesystem, and sealing one small record
//! at a time keeps the sealed path cheap enough for the hot write path.
//! The CRC covers the sealed bytes: recovery can cut a torn tail without
//! paying an unseal attempt per corrupt candidate record.
//!
//! Recovery scans a segment front to back and stops at the first record
//! that is short, fails its CRC, fails to unseal, or fails to decode — the
//! classic torn-tail rule. Everything before the stop point is trusted
//! (CRC + AEAD tag both passed); everything after is discarded.

use speed_enclave::sealing::{seal, unseal, SealPolicy, SealedData};
use speed_enclave::{Enclave, Platform};
use speed_wire::{CompTag, Reader, SyncEntry, WireDecode, WireEncode, Writer};

use crate::StoreError;

/// Sealing AAD for WAL records. Versioned independently of the snapshot
/// AAD so a WAL record can never be replayed as a snapshot or vice versa.
pub const WAL_AAD: &[u8] = b"speed-store-wal-v1";

/// Upper bound on one sealed record. A length prefix above this is treated
/// as corruption (torn tail), not an allocation request.
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// One logical mutation in the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// A new entry became live (reference count starts at 1).
    Put(SyncEntry),
    /// An additional reference to an existing entry (a duplicate PUT whose
    /// ciphertext was deduplicated against the first writer's record).
    Ref(CompTag),
    /// One reference released; the entry dies when the count reaches zero.
    Unref(CompTag),
    /// The entry was removed outright (eviction, TTL expiry, dangling-blob
    /// cleanup) regardless of its reference count.
    Delete(CompTag),
}

/// A sequenced WAL record. Sequence numbers are global across all shard
/// logs and strictly increasing, so replay can merge per-shard segment
/// files back into one mutation order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Global sequence number (1-based; 0 means "nothing logged yet").
    pub seq: u64,
    /// The mutation.
    pub op: WalOp,
}

impl WalRecord {
    /// The tag this record concerns.
    pub fn tag(&self) -> &CompTag {
        match &self.op {
            WalOp::Put(entry) => &entry.tag,
            WalOp::Ref(tag) | WalOp::Unref(tag) | WalOp::Delete(tag) => tag,
        }
    }
}

const OP_PUT: u8 = 1;
const OP_REF: u8 = 2;
const OP_UNREF: u8 = 3;
const OP_DELETE: u8 = 4;

fn encode_plain(record: &WalRecord) -> Vec<u8> {
    let mut writer = Writer::new();
    record.seq.encode(&mut writer);
    match &record.op {
        WalOp::Put(entry) => {
            OP_PUT.encode(&mut writer);
            entry.encode(&mut writer);
        }
        WalOp::Ref(tag) => {
            OP_REF.encode(&mut writer);
            tag.encode(&mut writer);
        }
        WalOp::Unref(tag) => {
            OP_UNREF.encode(&mut writer);
            tag.encode(&mut writer);
        }
        WalOp::Delete(tag) => {
            OP_DELETE.encode(&mut writer);
            tag.encode(&mut writer);
        }
    }
    writer.into_bytes()
}

fn decode_plain(bytes: &[u8]) -> Option<WalRecord> {
    let mut reader = Reader::new(bytes);
    let seq = u64::decode(&mut reader).ok()?;
    let kind = u8::decode(&mut reader).ok()?;
    let op = match kind {
        OP_PUT => WalOp::Put(SyncEntry::decode(&mut reader).ok()?),
        OP_REF | OP_UNREF | OP_DELETE => {
            let tag = CompTag::decode(&mut reader).ok()?;
            match kind {
                OP_REF => WalOp::Ref(tag),
                OP_UNREF => WalOp::Unref(tag),
                _ => WalOp::Delete(tag),
            }
        }
        _ => return None,
    };
    reader.finish().ok()?;
    Some(WalRecord { seq, op })
}

/// Seals and frames one record for appending to a segment file.
pub fn encode_record(
    platform: &Platform,
    enclave: &Enclave,
    record: &WalRecord,
) -> Result<Vec<u8>, StoreError> {
    let plain = encode_plain(record);
    let sealed =
        seal(platform, enclave, &SealPolicy::MrEnclave, WAL_AAD, &plain).to_bytes();
    let len = u32::try_from(sealed.len()).map_err(|_| {
        StoreError::Protocol("WAL record exceeds the u32 frame limit".into())
    })?;
    if len > MAX_RECORD_LEN {
        return Err(StoreError::Protocol(format!(
            "WAL record of {len} bytes exceeds the {MAX_RECORD_LEN}-byte limit"
        )));
    }
    let mut framed = Vec::with_capacity(8 + sealed.len());
    framed.extend_from_slice(&len.to_le_bytes());
    framed.extend_from_slice(&crc32(&sealed).to_le_bytes());
    framed.extend_from_slice(&sealed);
    Ok(framed)
}

/// The outcome of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Records recovered, in file order (their `seq`s are increasing
    /// within one file, except for records re-appended by compaction).
    pub records: Vec<WalRecord>,
    /// Byte offsets at which each recovered record's frame starts, plus a
    /// final entry equal to `valid_len` — i.e. the record boundaries.
    pub offsets: Vec<u64>,
    /// Length of the valid prefix; bytes past this are a torn tail.
    pub valid_len: u64,
    /// Whether a torn/corrupt tail was cut.
    pub torn: bool,
}

/// Scans a segment's bytes, stopping at the first short, corrupt,
/// unsealable, or undecodable record (the torn-tail rule).
pub fn scan_segment(platform: &Platform, enclave: &Enclave, bytes: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    let mut offsets = vec![0u64];
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len as u32 > MAX_RECORD_LEN || rest.len() < 8 + len {
            break;
        }
        let sealed_bytes = &rest[8..8 + len];
        if crc32(sealed_bytes) != crc {
            break;
        }
        let Ok(sealed) = SealedData::from_bytes(sealed_bytes) else { break };
        let Ok(plain) =
            unseal(platform, enclave, &SealPolicy::MrEnclave, WAL_AAD, &sealed)
        else {
            break;
        };
        let Some(record) = decode_plain(&plain) else { break };
        records.push(record);
        pos += 8 + len;
        offsets.push(pos as u64);
    }
    let torn = pos < bytes.len();
    SegmentScan { records, offsets, valid_len: pos as u64, torn }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let index = (crc ^ u32::from(b)) & 0xFF;
        crc = (crc >> 8) ^ TABLE[index as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_enclave::CostModel;
    use speed_wire::{CompTag, Record};

    fn context() -> (std::sync::Arc<Platform>, std::sync::Arc<Enclave>) {
        let platform = Platform::new(CostModel::no_sgx());
        let enclave = platform.create_enclave(b"wal-test-enclave").unwrap();
        (platform, enclave)
    }

    fn put_record(seq: u64, fill: u8) -> WalRecord {
        WalRecord {
            seq,
            op: WalOp::Put(SyncEntry {
                tag: CompTag::from_bytes([fill; 32]),
                record: Record {
                    challenge: vec![fill; 32],
                    wrapped_key: [fill; 16],
                    nonce: [fill; 12],
                    boxed_result: vec![fill; 20],
                },
                hits: u64::from(fill),
            }),
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard zlib test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn records_roundtrip_through_a_segment() {
        let (platform, enclave) = context();
        let mut segment = Vec::new();
        let originals = vec![
            put_record(1, 7),
            WalRecord { seq: 2, op: WalOp::Ref(CompTag::from_bytes([7; 32])) },
            WalRecord { seq: 3, op: WalOp::Unref(CompTag::from_bytes([7; 32])) },
            WalRecord { seq: 4, op: WalOp::Delete(CompTag::from_bytes([7; 32])) },
        ];
        for record in &originals {
            segment.extend(encode_record(&platform, &enclave, record).unwrap());
        }
        let scan = scan_segment(&platform, &enclave, &segment);
        assert_eq!(scan.records, originals);
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, segment.len() as u64);
        assert_eq!(scan.offsets.len(), originals.len() + 1);
    }

    #[test]
    fn torn_tail_truncates_at_every_offset() {
        let (platform, enclave) = context();
        let mut segment = Vec::new();
        let mut boundaries = vec![0usize];
        for seq in 1..=3u64 {
            segment
                .extend(encode_record(&platform, &enclave, &put_record(seq, 9)).unwrap());
            boundaries.push(segment.len());
        }
        for cut in 0..segment.len() {
            let scan = scan_segment(&platform, &enclave, &segment[..cut]);
            // Recovered records = complete frames strictly below the cut.
            let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(scan.records.len(), complete, "cut={cut}");
            assert_eq!(scan.valid_len as usize, boundaries[complete], "cut={cut}");
        }
    }

    #[test]
    fn corrupt_byte_stops_the_scan() {
        let (platform, enclave) = context();
        let mut segment = Vec::new();
        for seq in 1..=3u64 {
            segment
                .extend(encode_record(&platform, &enclave, &put_record(seq, 3)).unwrap());
        }
        let record_len = segment.len() / 3;
        // Flip a byte in the second record's sealed payload.
        segment[record_len + 12] ^= 0xFF;
        let scan = scan_segment(&platform, &enclave, &segment);
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn);
    }

    #[test]
    fn foreign_enclave_records_are_rejected() {
        let (platform, enclave) = context();
        let other_platform = Platform::new(CostModel::no_sgx());
        let other = other_platform.create_enclave(b"wal-test-enclave").unwrap();
        let frame = encode_record(&platform, &enclave, &put_record(1, 1)).unwrap();
        let scan = scan_segment(&other_platform, &other, &frame);
        assert!(scan.records.is_empty());
        assert!(scan.torn);
    }

    #[test]
    fn hostile_length_prefix_is_corruption_not_allocation() {
        let (platform, enclave) = context();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 100]);
        let scan = scan_segment(&platform, &enclave, &bytes);
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
    }
}
