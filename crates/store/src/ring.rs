//! Lock-free bounded rings for the switchless call path.
//!
//! The switchless design (after "Speeding up enclave transitions for
//! IO-intensive applications") replaces per-request ECALLs with a pair of
//! shared-memory rings: untrusted I/O threads push sealed requests, a
//! resident in-enclave worker drains them and pushes responses back. The
//! rings are single-producer/single-consumer; coordination is purely via
//! per-slot sequence counters (the Vyukov bounded-queue scheme), so
//! neither side ever blocks on the other.
//!
//! Each slot carries a `Mutex<Option<T>>` purely as a safe-Rust cell for
//! the value handoff: the sequence protocol guarantees producer and
//! consumer never touch the same slot concurrently, so the lock is always
//! uncontended — an atomic flag in spirit, a mutex in the type system.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

#[derive(Debug)]
struct Slot<T> {
    /// Sequence counter: equals the slot's ticket when free for the
    /// producer, ticket + 1 when holding a value for the consumer.
    seq: AtomicU64,
    value: Mutex<Option<T>>,
}

/// A bounded single-producer/single-consumer ring.
#[derive(Debug)]
pub(crate) struct SpscRing<T> {
    slots: Box<[Slot<T>]>,
    /// Next ticket the producer will claim.
    tail: AtomicU64,
    /// Next ticket the consumer will claim.
    head: AtomicU64,
}

impl<T> SpscRing<T> {
    /// A ring with `capacity` slots (minimum 2 — with a single slot the
    /// sequence scheme cannot tell "full" from "free again": after a fill,
    /// `seq` equals the producer's next ticket and the slot would be
    /// overwritten).
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        let slots = (0..capacity as u64)
            .map(|i| Slot { seq: AtomicU64::new(i), value: Mutex::new(None) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscRing { slots, tail: AtomicU64::new(0), head: AtomicU64::new(0) }
    }

    /// Slots in the ring.
    #[cfg(test)]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Enqueues `value`, or returns it if the ring is full. Producer side
    /// only — one thread at a time.
    pub(crate) fn push(&self, value: T) -> Result<(), T> {
        let ticket = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        if slot.seq.load(Ordering::Acquire) != ticket {
            return Err(value); // consumer hasn't freed this slot yet
        }
        // The sequence check above proves the consumer is done with this
        // slot, so the lock is uncontended by construction.
        *lock_unpoisoned(&slot.value) = Some(value);
        slot.seq.store(ticket + 1, Ordering::Release);
        self.tail.store(ticket + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Dequeues the oldest value, if any. Consumer side only — one thread
    /// at a time.
    pub(crate) fn pop(&self) -> Option<T> {
        let ticket = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        if slot.seq.load(Ordering::Acquire) != ticket + 1 {
            return None; // producer hasn't filled this slot yet
        }
        let value = lock_unpoisoned(&slot.value).take();
        slot.seq.store(ticket + self.slots.len() as u64, Ordering::Release);
        self.head.store(ticket + 1, Ordering::Relaxed);
        value
    }

    /// Approximate occupancy (exact from either endpoint's own thread).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.saturating_sub(head) as usize
    }
}

/// The slot protocol makes poisoning unreachable in practice (a panic
/// while holding the lock would have to come from `T`'s drop); recover
/// the value rather than propagate.
fn lock_unpoisoned<T>(lock: &Mutex<Option<T>>) -> std::sync::MutexGuard<'_, Option<T>> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fills_and_drains_in_order() {
        let ring = SpscRing::new(4);
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.push(99), Err(99), "full ring refuses the value back");
        for i in 0..4 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn wraps_around_many_times() {
        let ring = SpscRing::new(3);
        for round in 0u64..100 {
            ring.push(round * 2).unwrap();
            ring.push(round * 2 + 1).unwrap();
            assert_eq!(ring.pop(), Some(round * 2));
            assert_eq!(ring.pop(), Some(round * 2 + 1));
        }
        assert_eq!(ring.pop(), None);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn tiny_capacities_round_up_to_two() {
        for requested in [0, 1] {
            let ring = SpscRing::new(requested);
            assert_eq!(ring.capacity(), 2);
            ring.push(7).unwrap();
            ring.push(8).unwrap();
            assert_eq!(ring.push(9), Err(9), "a full ring must refuse, not overwrite");
            assert_eq!(ring.pop(), Some(7));
            assert_eq!(ring.pop(), Some(8));
            assert_eq!(ring.pop(), None);
        }
    }

    #[test]
    fn cross_thread_handoff_preserves_every_item() {
        const ITEMS: u64 = 50_000;
        let ring = Arc::new(SpscRing::new(64));
        let producer_ring = Arc::clone(&ring);
        let producer = std::thread::spawn(move || {
            for i in 0..ITEMS {
                let mut item = i;
                loop {
                    match producer_ring.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut seen = 0u64;
        while seen < ITEMS {
            if let Some(value) = ring.pop() {
                assert_eq!(value, seen, "items arrive in order");
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(ring.pop(), None);
    }
}
