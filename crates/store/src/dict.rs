//! The in-enclave metadata dictionary.
//!
//! "The main data structure used here is an enclave-protected dictionary
//! storing previous computation results keyed by the tag t. To maximize the
//! utility of limited enclave memory, the dictionary entry is designed to be
//! small: it maintains some metadata (e.g. challenge message r and
//! authentication MAC), and a pointer to the real result ciphertexts that
//! are kept outside the enclave." (§IV-B)
//!
//! Lookups take `&self`: hit counting and recency use interior-mutability
//! atomics so a shard can serve concurrent readers under a read lock. The
//! LRU index is only rewritten on the (exclusive) write path; reads stamp a
//! per-entry recency sequence that [`MetadataDict::evict_lru`] reconciles
//! lazily before evicting.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use speed_enclave::BlobId;
use speed_wire::{AppId, CompTag};

/// One dictionary entry: small metadata plus the pointer to the
/// outside-enclave ciphertext.
#[derive(Debug)]
pub struct DictEntry {
    /// The RCE challenge message `r`.
    pub challenge: Vec<u8>,
    /// The wrapped result key `[k] = k ⊕ h`.
    pub wrapped_key: [u8; 16],
    /// GCM nonce of the result ciphertext.
    pub nonce: [u8; 12],
    /// Pointer to the ciphertext blob in untrusted memory.
    pub blob: BlobId,
    /// Length of the ciphertext blob in bytes.
    pub boxed_len: u32,
    /// Application that published the entry (for quota reclamation).
    pub owner: AppId,
    /// Logical-millisecond timestamp of insertion (drives TTL expiry).
    pub created_ms: u64,
    /// The entry's 64-bit prefilter tag when the publisher supplied one
    /// (prefiltered PUT variants). In-memory only — not persisted — so
    /// entries recovered from disk come back as `None` and conservatively
    /// mark the shard's negative filter incomplete.
    pub prefilter: Option<u64>,
    /// Times this entry satisfied a GET (atomic so the read path never
    /// needs an exclusive borrow).
    hits: AtomicU64,
    /// Recency sequence of the most recent touch (read-path stamp).
    last_touch: AtomicU64,
    /// The key this entry currently occupies in the LRU index. Only the
    /// write path moves entries in the index, so this may lag
    /// `last_touch`; eviction reconciles the two.
    lru_seq: u64,
}

impl Clone for DictEntry {
    fn clone(&self) -> Self {
        DictEntry {
            challenge: self.challenge.clone(),
            wrapped_key: self.wrapped_key,
            nonce: self.nonce,
            blob: self.blob,
            boxed_len: self.boxed_len,
            owner: self.owner,
            created_ms: self.created_ms,
            prefilter: self.prefilter,
            hits: AtomicU64::new(self.hits()),
            last_touch: AtomicU64::new(self.last_touch.load(Ordering::Relaxed)),
            lru_seq: self.lru_seq,
        }
    }
}

impl PartialEq for DictEntry {
    fn eq(&self, other: &Self) -> bool {
        self.challenge == other.challenge
            && self.wrapped_key == other.wrapped_key
            && self.nonce == other.nonce
            && self.blob == other.blob
            && self.boxed_len == other.boxed_len
            && self.owner == other.owner
            && self.created_ms == other.created_ms
            && self.hits() == other.hits()
    }
}

impl Eq for DictEntry {}

impl DictEntry {
    /// Times this entry satisfied a GET.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Approximate in-enclave footprint of this entry in bytes, used for
    /// EPC accounting.
    pub fn enclave_footprint(&self) -> usize {
        // tag key (32) + challenge + fixed fields + map overhead estimate.
        32 + self.challenge.len() + 16 + 12 + 8 + 4 + 8 + 8 + 64
    }
}

/// An LRU-evicting dictionary keyed by computation tag.
///
/// Lives logically inside one shard of the store's enclave; all mutating
/// access happens under an `ECALL` in [`crate::ResultStore`].
#[derive(Debug, Default)]
pub struct MetadataDict {
    entries: HashMap<CompTag, DictEntry>,
    lru: BTreeMap<u64, CompTag>,
    next_seq: AtomicU64,
    stored_bytes: u64,
}

impl MetadataDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        MetadataDict::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total ciphertext bytes referenced by entries.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Looks up `tag`, bumping its recency and hit count on success.
    ///
    /// Takes `&self`: the bumps go to per-entry atomics, so concurrent
    /// readers holding a shard's read lock never serialize on the lookup
    /// path. The LRU index catches up on the next eviction.
    pub fn get(&self, tag: &CompTag) -> Option<&DictEntry> {
        let entry = self.entries.get(tag)?;
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        entry.hits.fetch_add(1, Ordering::Relaxed);
        entry.last_touch.fetch_max(seq, Ordering::Relaxed);
        Some(entry)
    }

    /// Looks up `tag` without touching recency or hit counts (for sync).
    pub fn peek(&self, tag: &CompTag) -> Option<&DictEntry> {
        self.entries.get(tag)
    }

    /// Inserts an entry. Returns the previous entry's blob pointer if the
    /// tag was already present (the caller frees the orphaned blob) —
    /// duplicate tags can race between applications; only one ciphertext
    /// version is kept (the first one wins, matching the paper's remark
    /// that "only one version of result ciphertext needs to be stored").
    #[allow(clippy::too_many_arguments)] // one parameter per DictEntry field
    pub fn insert(
        &mut self,
        tag: CompTag,
        challenge: Vec<u8>,
        wrapped_key: [u8; 16],
        nonce: [u8; 12],
        blob: BlobId,
        boxed_len: u32,
        owner: AppId,
        created_ms: u64,
        prefilter: Option<u64>,
    ) -> Option<BlobId> {
        if self.entries.contains_key(&tag) {
            // First writer wins; reject the new blob.
            return Some(blob);
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.lru.insert(seq, tag);
        self.stored_bytes += u64::from(boxed_len);
        self.entries.insert(
            tag,
            DictEntry {
                challenge,
                wrapped_key,
                nonce,
                blob,
                boxed_len,
                owner,
                created_ms,
                prefilter,
                hits: AtomicU64::new(0),
                last_touch: AtomicU64::new(seq),
                lru_seq: seq,
            },
        );
        None
    }

    /// Removes `tag`, returning its entry.
    pub fn remove(&mut self, tag: &CompTag) -> Option<DictEntry> {
        let entry = self.entries.remove(tag)?;
        self.lru.remove(&entry.lru_seq);
        self.stored_bytes -= u64::from(entry.boxed_len);
        Some(entry)
    }

    /// Evicts the least-recently-used entry, returning it with its tag.
    ///
    /// The LRU index can lag behind read-path touches; entries that were
    /// read since their last index position are re-filed at their current
    /// recency instead of evicted.
    pub fn evict_lru(&mut self) -> Option<(CompTag, DictEntry)> {
        loop {
            let (&seq, &tag) = self.lru.iter().next()?;
            self.lru.remove(&seq);
            let touched = match self.entries.get(&tag) {
                Some(entry) => entry.last_touch.load(Ordering::Relaxed),
                // Index and entries drifted (cannot happen through the
                // public API); drop the stale index slot and keep going.
                None => continue,
            };
            if touched > seq {
                // Read since last filed: re-file at its current recency.
                // `touched` is unique (a fetch_add ticket) so it cannot
                // collide with another live index key.
                let entry = self.entries.get_mut(&tag).expect("entry checked above");
                entry.lru_seq = touched;
                self.lru.insert(touched, tag);
                continue;
            }
            let entry = self.entries.remove(&tag).expect("entry checked above");
            self.stored_bytes -= u64::from(entry.boxed_len);
            return Some((tag, entry));
        }
    }

    /// Overwrites the hit counter of an entry (snapshot restore). Returns
    /// `false` if the tag is absent.
    pub fn restore_hits(&self, tag: &CompTag, hits: u64) -> bool {
        match self.entries.get(tag) {
            Some(entry) => {
                entry.hits.store(hits, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Iterates over `(tag, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&CompTag, &DictEntry)> {
        self.entries.iter()
    }

    /// Entries with at least `min_hits` hits, most popular first — the
    /// master-store sync selection.
    pub fn popular(&self, min_hits: u64) -> Vec<(CompTag, DictEntry)> {
        let mut selected: Vec<(CompTag, DictEntry)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.hits() >= min_hits)
            .map(|(t, e)| (*t, e.clone()))
            .collect();
        selected.sort_by(|a, b| b.1.hits().cmp(&a.1.hits()).then(a.0.cmp(&b.0)));
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(n: u8) -> CompTag {
        CompTag::from_bytes([n; 32])
    }

    fn insert_basic(dict: &mut MetadataDict, n: u8, len: u32) -> Option<BlobId> {
        dict.insert(
            tag(n),
            vec![n; 32],
            [n; 16],
            [n; 12],
            BlobId::from_raw(u64::from(n)),
            len,
            AppId(1),
            0,
            Some(u64::from(n)),
        )
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut dict = MetadataDict::new();
        assert!(insert_basic(&mut dict, 1, 100).is_none());
        let entry = dict.get(&tag(1)).unwrap();
        assert_eq!(entry.challenge, vec![1; 32]);
        assert_eq!(entry.hits(), 1);
        assert_eq!(dict.len(), 1);
        assert_eq!(dict.stored_bytes(), 100);
    }

    #[test]
    fn get_missing_returns_none() {
        let dict = MetadataDict::new();
        assert!(dict.get(&tag(9)).is_none());
    }

    #[test]
    fn get_needs_no_exclusive_borrow() {
        // Regression for the read-path satellite: a shared reference must
        // be enough to look up and hit-count, so shard readers can share a
        // read lock.
        let mut dict = MetadataDict::new();
        insert_basic(&mut dict, 1, 10);
        let shared: &MetadataDict = &dict;
        let first = shared.get(&tag(1)).unwrap();
        let second = shared.get(&tag(1)).unwrap();
        assert_eq!(first.blob, second.blob);
        assert!(shared.peek(&tag(1)).unwrap().hits() >= 2);
    }

    #[test]
    fn duplicate_insert_first_writer_wins() {
        let mut dict = MetadataDict::new();
        assert!(insert_basic(&mut dict, 1, 10).is_none());
        let rejected = dict.insert(
            tag(1),
            vec![2; 32],
            [2; 16],
            [2; 12],
            BlobId::from_raw(99),
            20,
            AppId(2),
            0,
            None,
        );
        assert_eq!(rejected, Some(BlobId::from_raw(99)));
        assert_eq!(dict.peek(&tag(1)).unwrap().challenge, vec![1; 32]);
        assert_eq!(dict.stored_bytes(), 10);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut dict = MetadataDict::new();
        for n in 1..=3 {
            insert_basic(&mut dict, n, 10);
        }
        // Touch 1 so 2 becomes the LRU.
        dict.get(&tag(1));
        let (evicted_tag, _) = dict.evict_lru().unwrap();
        assert_eq!(evicted_tag, tag(2));
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn evict_on_empty_is_none() {
        let mut dict = MetadataDict::new();
        assert!(dict.evict_lru().is_none());
    }

    #[test]
    fn remove_updates_bytes() {
        let mut dict = MetadataDict::new();
        insert_basic(&mut dict, 1, 64);
        insert_basic(&mut dict, 2, 36);
        assert_eq!(dict.stored_bytes(), 100);
        let entry = dict.remove(&tag(1)).unwrap();
        assert_eq!(entry.boxed_len, 64);
        assert_eq!(dict.stored_bytes(), 36);
        assert!(dict.remove(&tag(1)).is_none());
    }

    #[test]
    fn remove_after_touch_keeps_index_consistent() {
        // A read moves an entry's recency stamp without moving its index
        // slot; remove must still clear the (stale) slot so eviction never
        // sees a dangling tag.
        let mut dict = MetadataDict::new();
        insert_basic(&mut dict, 1, 10);
        insert_basic(&mut dict, 2, 10);
        dict.get(&tag(1));
        assert!(dict.remove(&tag(1)).is_some());
        let (evicted, _) = dict.evict_lru().unwrap();
        assert_eq!(evicted, tag(2));
        assert!(dict.evict_lru().is_none());
    }

    #[test]
    fn peek_does_not_bump_hits() {
        let mut dict = MetadataDict::new();
        insert_basic(&mut dict, 1, 10);
        dict.peek(&tag(1));
        dict.peek(&tag(1));
        assert_eq!(dict.peek(&tag(1)).unwrap().hits(), 0);
    }

    #[test]
    fn popular_sorts_by_hits() {
        let mut dict = MetadataDict::new();
        for n in 1..=3 {
            insert_basic(&mut dict, n, 10);
        }
        for _ in 0..5 {
            dict.get(&tag(2));
        }
        dict.get(&tag(3));
        let popular = dict.popular(1);
        assert_eq!(popular.len(), 2);
        assert_eq!(popular[0].0, tag(2));
        assert_eq!(popular[1].0, tag(3));
        assert_eq!(dict.popular(100).len(), 0);
    }

    #[test]
    fn eviction_order_is_full_lru() {
        let mut dict = MetadataDict::new();
        for n in 1..=5 {
            insert_basic(&mut dict, n, 1);
        }
        dict.get(&tag(1));
        dict.get(&tag(3));
        let order: Vec<CompTag> =
            std::iter::from_fn(|| dict.evict_lru().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![tag(2), tag(4), tag(5), tag(1), tag(3)]);
    }

    #[test]
    fn repeated_touches_survive_eviction_pressure() {
        // An entry read many times must outlive entries never read, no
        // matter how stale the LRU index got in between.
        let mut dict = MetadataDict::new();
        for n in 1..=4 {
            insert_basic(&mut dict, n, 1);
        }
        for _ in 0..10 {
            dict.get(&tag(1));
        }
        for _ in 0..3 {
            dict.evict_lru().unwrap();
        }
        assert!(dict.peek(&tag(1)).is_some());
        assert_eq!(dict.len(), 1);
    }

    #[test]
    fn restore_hits_overwrites() {
        let mut dict = MetadataDict::new();
        insert_basic(&mut dict, 1, 10);
        assert!(dict.restore_hits(&tag(1), 7));
        assert_eq!(dict.peek(&tag(1)).unwrap().hits(), 7);
        assert!(!dict.restore_hits(&tag(9), 1));
    }

    #[test]
    fn footprint_is_small() {
        let mut dict = MetadataDict::new();
        insert_basic(&mut dict, 1, 1_000_000);
        // A 1 MB result only costs ~200 bytes of enclave memory.
        assert!(dict.peek(&tag(1)).unwrap().enclave_footprint() < 256);
    }
}
