//! The in-enclave metadata dictionary.
//!
//! "The main data structure used here is an enclave-protected dictionary
//! storing previous computation results keyed by the tag t. To maximize the
//! utility of limited enclave memory, the dictionary entry is designed to be
//! small: it maintains some metadata (e.g. challenge message r and
//! authentication MAC), and a pointer to the real result ciphertexts that
//! are kept outside the enclave." (§IV-B)

use std::collections::{BTreeMap, HashMap};

use speed_enclave::BlobId;
use speed_wire::{AppId, CompTag};

/// One dictionary entry: small metadata plus the pointer to the
/// outside-enclave ciphertext.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DictEntry {
    /// The RCE challenge message `r`.
    pub challenge: Vec<u8>,
    /// The wrapped result key `[k] = k ⊕ h`.
    pub wrapped_key: [u8; 16],
    /// GCM nonce of the result ciphertext.
    pub nonce: [u8; 12],
    /// Pointer to the ciphertext blob in untrusted memory.
    pub blob: BlobId,
    /// Length of the ciphertext blob in bytes.
    pub boxed_len: u32,
    /// Application that published the entry (for quota reclamation).
    pub owner: AppId,
    /// Times this entry satisfied a GET.
    pub hits: u64,
    /// Logical-millisecond timestamp of insertion (drives TTL expiry).
    pub created_ms: u64,
    lru_seq: u64,
}

impl DictEntry {
    /// Approximate in-enclave footprint of this entry in bytes, used for
    /// EPC accounting.
    pub fn enclave_footprint(&self) -> usize {
        // tag key (32) + challenge + fixed fields + map overhead estimate.
        32 + self.challenge.len() + 16 + 12 + 8 + 4 + 8 + 8 + 64
    }
}

/// An LRU-evicting dictionary keyed by computation tag.
///
/// Lives logically inside the store's enclave; all mutating access happens
/// under an `ECALL` in [`crate::ResultStore`].
#[derive(Debug, Default)]
pub struct MetadataDict {
    entries: HashMap<CompTag, DictEntry>,
    lru: BTreeMap<u64, CompTag>,
    next_seq: u64,
    stored_bytes: u64,
}

impl MetadataDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        MetadataDict::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total ciphertext bytes referenced by entries.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Looks up `tag`, bumping its recency and hit count on success.
    pub fn get(&mut self, tag: &CompTag) -> Option<&DictEntry> {
        let next_seq = self.next_seq;
        let entry = self.entries.get_mut(tag)?;
        self.lru.remove(&entry.lru_seq);
        entry.lru_seq = next_seq;
        entry.hits += 1;
        self.lru.insert(next_seq, *tag);
        self.next_seq += 1;
        Some(&*entry)
    }

    /// Looks up `tag` without touching recency or hit counts (for sync).
    pub fn peek(&self, tag: &CompTag) -> Option<&DictEntry> {
        self.entries.get(tag)
    }

    /// Inserts an entry. Returns the previous entry's blob pointer if the
    /// tag was already present (the caller frees the orphaned blob) —
    /// duplicate tags can race between applications; only one ciphertext
    /// version is kept (the first one wins, matching the paper's remark
    /// that "only one version of result ciphertext needs to be stored").
    #[allow(clippy::too_many_arguments)] // one parameter per DictEntry field
    pub fn insert(
        &mut self,
        tag: CompTag,
        challenge: Vec<u8>,
        wrapped_key: [u8; 16],
        nonce: [u8; 12],
        blob: BlobId,
        boxed_len: u32,
        owner: AppId,
        created_ms: u64,
    ) -> Option<BlobId> {
        if self.entries.contains_key(&tag) {
            // First writer wins; reject the new blob.
            return Some(blob);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lru.insert(seq, tag);
        self.stored_bytes += u64::from(boxed_len);
        self.entries.insert(
            tag,
            DictEntry {
                challenge,
                wrapped_key,
                nonce,
                blob,
                boxed_len,
                owner,
                hits: 0,
                created_ms,
                lru_seq: seq,
            },
        );
        None
    }

    /// Removes `tag`, returning its entry.
    pub fn remove(&mut self, tag: &CompTag) -> Option<DictEntry> {
        let entry = self.entries.remove(tag)?;
        self.lru.remove(&entry.lru_seq);
        self.stored_bytes -= u64::from(entry.boxed_len);
        Some(entry)
    }

    /// Evicts the least-recently-used entry, returning it with its tag.
    pub fn evict_lru(&mut self) -> Option<(CompTag, DictEntry)> {
        let (&seq, &tag) = self.lru.iter().next()?;
        self.lru.remove(&seq);
        let entry = self.entries.remove(&tag).expect("lru index out of sync");
        self.stored_bytes -= u64::from(entry.boxed_len);
        Some((tag, entry))
    }

    /// Overwrites the hit counter of an entry (snapshot restore). Returns
    /// `false` if the tag is absent.
    pub fn restore_hits(&mut self, tag: &CompTag, hits: u64) -> bool {
        match self.entries.get_mut(tag) {
            Some(entry) => {
                entry.hits = hits;
                true
            }
            None => false,
        }
    }

    /// Iterates over `(tag, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&CompTag, &DictEntry)> {
        self.entries.iter()
    }

    /// Entries with at least `min_hits` hits, most popular first — the
    /// master-store sync selection.
    pub fn popular(&self, min_hits: u64) -> Vec<(CompTag, DictEntry)> {
        let mut selected: Vec<(CompTag, DictEntry)> = self
            .entries
            .iter()
            .filter(|(_, e)| e.hits >= min_hits)
            .map(|(t, e)| (*t, e.clone()))
            .collect();
        selected.sort_by(|a, b| b.1.hits.cmp(&a.1.hits).then(a.0.cmp(&b.0)));
        selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(n: u8) -> CompTag {
        CompTag::from_bytes([n; 32])
    }

    fn insert_basic(dict: &mut MetadataDict, n: u8, len: u32) -> Option<BlobId> {
        dict.insert(
            tag(n),
            vec![n; 32],
            [n; 16],
            [n; 12],
            BlobId::from_raw(u64::from(n)),
            len,
            AppId(1),
            0,
        )
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut dict = MetadataDict::new();
        assert!(insert_basic(&mut dict, 1, 100).is_none());
        let entry = dict.get(&tag(1)).unwrap();
        assert_eq!(entry.challenge, vec![1; 32]);
        assert_eq!(entry.hits, 1);
        assert_eq!(dict.len(), 1);
        assert_eq!(dict.stored_bytes(), 100);
    }

    #[test]
    fn get_missing_returns_none() {
        let mut dict = MetadataDict::new();
        assert!(dict.get(&tag(9)).is_none());
    }

    #[test]
    fn duplicate_insert_first_writer_wins() {
        let mut dict = MetadataDict::new();
        assert!(insert_basic(&mut dict, 1, 10).is_none());
        let rejected = dict.insert(
            tag(1),
            vec![2; 32],
            [2; 16],
            [2; 12],
            BlobId::from_raw(99),
            20,
            AppId(2),
            0,
        );
        assert_eq!(rejected, Some(BlobId::from_raw(99)));
        assert_eq!(dict.peek(&tag(1)).unwrap().challenge, vec![1; 32]);
        assert_eq!(dict.stored_bytes(), 10);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut dict = MetadataDict::new();
        for n in 1..=3 {
            insert_basic(&mut dict, n, 10);
        }
        // Touch 1 so 2 becomes the LRU.
        dict.get(&tag(1));
        let (evicted_tag, _) = dict.evict_lru().unwrap();
        assert_eq!(evicted_tag, tag(2));
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn evict_on_empty_is_none() {
        let mut dict = MetadataDict::new();
        assert!(dict.evict_lru().is_none());
    }

    #[test]
    fn remove_updates_bytes() {
        let mut dict = MetadataDict::new();
        insert_basic(&mut dict, 1, 64);
        insert_basic(&mut dict, 2, 36);
        assert_eq!(dict.stored_bytes(), 100);
        let entry = dict.remove(&tag(1)).unwrap();
        assert_eq!(entry.boxed_len, 64);
        assert_eq!(dict.stored_bytes(), 36);
        assert!(dict.remove(&tag(1)).is_none());
    }

    #[test]
    fn peek_does_not_bump_hits() {
        let mut dict = MetadataDict::new();
        insert_basic(&mut dict, 1, 10);
        dict.peek(&tag(1));
        dict.peek(&tag(1));
        assert_eq!(dict.peek(&tag(1)).unwrap().hits, 0);
    }

    #[test]
    fn popular_sorts_by_hits() {
        let mut dict = MetadataDict::new();
        for n in 1..=3 {
            insert_basic(&mut dict, n, 10);
        }
        for _ in 0..5 {
            dict.get(&tag(2));
        }
        dict.get(&tag(3));
        let popular = dict.popular(1);
        assert_eq!(popular.len(), 2);
        assert_eq!(popular[0].0, tag(2));
        assert_eq!(popular[1].0, tag(3));
        assert_eq!(dict.popular(100).len(), 0);
    }

    #[test]
    fn eviction_order_is_full_lru() {
        let mut dict = MetadataDict::new();
        for n in 1..=5 {
            insert_basic(&mut dict, n, 1);
        }
        dict.get(&tag(1));
        dict.get(&tag(3));
        let order: Vec<CompTag> =
            std::iter::from_fn(|| dict.evict_lru().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![tag(2), tag(4), tag(5), tag(1), tag(3)]);
    }

    #[test]
    fn footprint_is_small() {
        let mut dict = MetadataDict::new();
        insert_basic(&mut dict, 1, 1_000_000);
        // A 1 MB result only costs ~200 bytes of enclave memory.
        assert!(dict.peek(&tag(1)).unwrap().enclave_footprint() < 256);
    }
}
