//! Readiness notification for the event-loop server: a minimal safe
//! wrapper over poll(2), plus a self-pipe waker.
//!
//! std offers no readiness API, and the workspace is zero-dependency, so
//! this module carries the single `unsafe` block in the tree: one
//! `extern "C"` binding to poll(2) (already linked via libc on every unix
//! target the workspace supports). poll scales linearly with the fd count,
//! which is fine for the server's budget of a few thousand connections —
//! the event-loop structure is what matters, and an epoll backend could
//! slot in behind the same interface without touching callers.

use std::io;
use std::os::fd::RawFd;
use std::os::unix::net::UnixStream;

/// Readable-data event (POLLIN).
pub const POLLIN: i16 = 0x001;
/// Writable-space event (POLLOUT).
pub const POLLOUT: i16 = 0x004;
/// Error condition (POLLERR; only ever set in `revents`).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (POLLHUP; only ever set in `revents`).
pub const POLLHUP: i16 = 0x010;

/// One pollable descriptor — layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// A descriptor watched for `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd { fd, events, revents: 0 }
    }

    /// Whether the kernel flagged this descriptor readable (or in an
    /// error/hangup state, which reads also surface).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    /// Whether the kernel flagged this descriptor writable (or in an
    /// error/hangup state, which writes also surface).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }
}

#[allow(unsafe_code)]
mod sys {
    use super::PollFd;

    extern "C" {
        // int poll(struct pollfd *fds, nfds_t nfds, int timeout);
        fn poll(
            fds: *mut PollFd,
            nfds: std::os::raw::c_ulong,
            timeout: std::os::raw::c_int,
        ) -> std::os::raw::c_int;
    }

    /// Direct poll(2). The slice pointer/length pair is valid for the
    /// duration of the call, which is all the kernel requires.
    pub(super) fn poll_raw(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        // SAFETY: `fds` is a live, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-compatible structs; the kernel reads
        // `events` and writes `revents` within the slice bounds.
        unsafe { poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, timeout_ms) }
    }
}

/// Blocks until at least one descriptor is ready or `timeout_ms` elapses
/// (`-1` blocks indefinitely, `0` polls). Returns how many descriptors
/// have non-zero `revents`; a signal interruption counts as zero ready.
///
/// # Errors
///
/// Propagates poll(2) failures other than `EINTR`.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    for fd in fds.iter_mut() {
        fd.revents = 0;
    }
    match sys::poll_raw(fds, timeout_ms) {
        n if n >= 0 => Ok(n as usize),
        _ => {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(err)
            }
        }
    }
}

/// A self-pipe waker: other threads write a byte to pop the owner's
/// event-loop thread out of [`poll`].
///
/// Built on a `UnixStream` pair so no extra FFI is needed; both ends are
/// non-blocking, and a full pipe simply coalesces wakeups.
#[derive(Debug)]
pub struct WakePipe {
    tx: UnixStream,
    rx: UnixStream,
}

impl WakePipe {
    /// A connected, non-blocking waker pair.
    ///
    /// # Errors
    ///
    /// Propagates socketpair failures.
    pub fn new() -> io::Result<Self> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(WakePipe { tx, rx })
    }

    /// The fd the event loop registers for [`POLLIN`].
    pub fn poll_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Wakes the polling thread. Safe from any thread; a full pipe means a
    /// wakeup is already pending, so errors are ignored.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Drains pending wakeup bytes so the next [`poll`] blocks again.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn poll_times_out_on_idle_fd() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.poll_fd(), POLLIN)];
        let start = Instant::now();
        let ready = poll(&mut fds, 30).unwrap();
        assert_eq!(ready, 0);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn wake_makes_fd_readable_and_drain_resets_it() {
        let pipe = WakePipe::new().unwrap();
        pipe.wake();
        let mut fds = [PollFd::new(pipe.poll_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());
        pipe.drain();
        assert_eq!(poll(&mut fds, 0).unwrap(), 0);
    }

    #[test]
    fn wake_from_another_thread_unblocks_poll() {
        let pipe = std::sync::Arc::new(WakePipe::new().unwrap());
        let waker = std::sync::Arc::clone(&pipe);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut fds = [PollFd::new(pipe.poll_fd(), POLLIN)];
        let ready = poll(&mut fds, 5000).unwrap();
        assert_eq!(ready, 1);
        handle.join().unwrap();
    }

    #[test]
    fn poll_reports_writable_socket() {
        let (a, _b) = UnixStream::pair().unwrap();
        use std::os::fd::AsRawFd;
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].writable());
    }
}
