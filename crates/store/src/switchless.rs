//! The switchless call engine: resident in-enclave workers draining
//! shared-memory request rings.
//!
//! Classic flow: every hot-path store op pays an ECALL world switch
//! (`ResultStore::handle` → `ecall_with_bytes`). Switchless flow: each
//! I/O thread owns a *lane* — an SPSC request ring and an SPSC response
//! ring — and a dedicated worker thread enters the enclave **once** (one
//! real ECALL for residence), then loops inside, popping requests,
//! serving them, and pushing responses back. Requests and responses still
//! cross the boundary as bytes (boundary-copy costs are charged), but no
//! further world switches happen: the enclave's `transitions()` counter
//! stays flat while `switchless_calls` grows.
//!
//! The worker parks on a condvar doorbell when its ring runs dry — the
//! simulation's stand-in for the pause/futex loop a real switchless
//! worker spins on — and the I/O thread is woken through its
//! [`WakePipe`] whenever a response lands.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use speed_wire::Message;

use crate::poller::WakePipe;
use crate::ring::SpscRing;
use crate::store::ResultStore;

/// One queued hot-path request, tagged with the connection token the I/O
/// thread uses to route the response back.
#[derive(Debug)]
pub(crate) struct RingItem {
    pub(crate) token: u64,
    pub(crate) msg: Message,
}

/// Wakes a worker parked on an empty ring. The flag absorbs the classic
/// lost-wakeup race: a doorbell rung between the worker's last `pop` and
/// its `wait` makes the wait return immediately.
#[derive(Debug, Default)]
struct Doorbell {
    rung: Mutex<bool>,
    cv: Condvar,
}

impl Doorbell {
    fn ring(&self) {
        *lock_unpoisoned(&self.rung) = true;
        self.cv.notify_one();
    }

    fn wait(&self, timeout: Duration) {
        let mut rung = lock_unpoisoned(&self.rung);
        if !*rung {
            let (guard, _) = self
                .cv
                .wait_timeout(rung, timeout)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            rung = guard;
        }
        *rung = false;
    }
}

fn lock_unpoisoned<T>(lock: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One I/O thread's private pair of rings plus its wakeup plumbing.
#[derive(Debug)]
struct Lane {
    requests: SpscRing<RingItem>,
    responses: SpscRing<RingItem>,
    doorbell: Doorbell,
    /// Waker of the I/O thread that owns this lane.
    io_waker: Arc<WakePipe>,
}

/// The engine: one lane and one resident enclave worker per I/O thread.
#[derive(Debug)]
pub(crate) struct SwitchlessEngine {
    lanes: Vec<Arc<Lane>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    shutdown: Arc<AtomicBool>,
}

impl SwitchlessEngine {
    /// Spawns one resident worker per entry of `io_wakers`; lane `i`
    /// belongs to I/O thread `i`. `shutdown` is shared with the server so
    /// one flag stops everything.
    pub(crate) fn start(
        store: Arc<ResultStore>,
        io_wakers: &[Arc<WakePipe>],
        ring_slots: usize,
        shutdown: Arc<AtomicBool>,
    ) -> Self {
        let lanes: Vec<Arc<Lane>> = io_wakers
            .iter()
            .map(|waker| {
                Arc::new(Lane {
                    requests: SpscRing::new(ring_slots),
                    responses: SpscRing::new(ring_slots),
                    doorbell: Doorbell::default(),
                    io_waker: Arc::clone(waker),
                })
            })
            .collect();
        let workers = lanes
            .iter()
            .enumerate()
            .map(|(index, lane)| {
                let lane = Arc::clone(lane);
                let store = Arc::clone(&store);
                let shutdown = Arc::clone(&shutdown);
                std::thread::Builder::new()
                    .name(format!("speed-switchless-{index}"))
                    .spawn(move || worker_loop(&store, &lane, &shutdown))
                    .expect("spawn switchless worker")
            })
            .collect();
        SwitchlessEngine { lanes, workers: Mutex::new(workers), shutdown }
    }

    /// How many resident worker threads the engine runs.
    pub(crate) fn worker_count(&self) -> usize {
        self.lanes.len()
    }

    /// Submits a request on `lane`; hands the message back if the ring is
    /// full so the caller can fall back to the classic ECALL path. Must
    /// only be called from the I/O thread owning `lane`.
    // The Err variant IS the unconsumed message — boxing it would add an
    // allocation to the full-ring fallback for no benefit.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_submit(
        &self,
        lane: usize,
        token: u64,
        msg: Message,
    ) -> Result<(), Message> {
        let lane = &self.lanes[lane];
        match lane.requests.push(RingItem { token, msg }) {
            Ok(()) => {
                lane.doorbell.ring();
                Ok(())
            }
            Err(item) => Err(item.msg),
        }
    }

    /// Drains every completed response on `lane` into `sink`. Must only
    /// be called from the I/O thread owning `lane`.
    pub(crate) fn drain_responses(
        &self,
        lane: usize,
        mut sink: impl FnMut(u64, Message),
    ) {
        let lane = &self.lanes[lane];
        while let Some(item) = lane.responses.pop() {
            sink(item.token, item.msg);
        }
    }

    /// Requests queued but not yet answered on `lane` (approximate).
    #[cfg(test)]
    pub(crate) fn lane_depth(&self, lane: usize) -> usize {
        self.lanes[lane].requests.len()
    }

    /// Flags shutdown, wakes every parked worker, and joins them. Workers
    /// finish requests already popped; anything still ringed is dropped.
    pub(crate) fn stop(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for lane in &self.lanes {
            lane.doorbell.ring();
        }
        for worker in lock_unpoisoned(&self.workers).drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for SwitchlessEngine {
    fn drop(&mut self) {
        self.stop();
    }
}

/// How long a dry worker parks before re-checking its ring — a safety net
/// only; the doorbell wakes it immediately on submit.
const PARK_TIMEOUT: Duration = Duration::from_millis(2);

fn worker_loop(store: &ResultStore, lane: &Lane, shutdown: &AtomicBool) {
    let enclave = store.enclave();
    // One real ECALL to take up residence; everything below runs
    // "inside", so the per-request handle() calls are switchless.
    enclave.ecall("switchless_worker_enter", || {
        let _resident = enclave.enter_switchless();
        while !shutdown.load(Ordering::Relaxed) {
            let mut served = false;
            while let Some(RingItem { token, msg }) = lane.requests.pop() {
                served = true;
                let mut response = RingItem { token, msg: store.handle(msg) };
                // The response ring can lag when the I/O thread is busy;
                // nudge it and retry rather than dropping the response.
                loop {
                    match lane.responses.push(response) {
                        Ok(()) => break,
                        Err(back) => {
                            if shutdown.load(Ordering::Relaxed) {
                                return;
                            }
                            response = back;
                            lane.io_waker.wake();
                            std::thread::yield_now();
                        }
                    }
                }
                lane.io_waker.wake();
            }
            if !served {
                lane.doorbell.wait(PARK_TIMEOUT);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use speed_enclave::{CostModel, Platform};
    use speed_wire::{AppId, CompTag, Record};

    fn engine_world() -> (Arc<ResultStore>, SwitchlessEngine, Arc<WakePipe>) {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let waker = Arc::new(WakePipe::new().unwrap());
        let shutdown = Arc::new(AtomicBool::new(false));
        let engine = SwitchlessEngine::start(
            Arc::clone(&store),
            std::slice::from_ref(&waker),
            8,
            shutdown,
        );
        (store, engine, waker)
    }

    fn collect_responses(
        engine: &SwitchlessEngine,
        expected: usize,
    ) -> Vec<(u64, Message)> {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut got = Vec::new();
        while got.len() < expected {
            engine.drain_responses(0, |token, msg| got.push((token, msg)));
            assert!(std::time::Instant::now() < deadline, "worker stalled");
            std::thread::sleep(Duration::from_micros(200));
        }
        got
    }

    #[test]
    fn requests_complete_without_transitions() {
        let (store, engine, _waker) = engine_world();
        // Let the worker take residence (its single entry ECALL).
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while store.enclave().stats().ecalls == 0 {
            assert!(std::time::Instant::now() < deadline, "worker never entered");
            std::thread::sleep(Duration::from_micros(200));
        }
        let baseline = store.enclave().stats();

        let tag = CompTag::from_bytes([3u8; 32]);
        let record = Record {
            challenge: vec![1u8; 32],
            wrapped_key: [2u8; 16],
            nonce: [3u8; 12],
            boxed_result: vec![4u8; 16],
        };
        engine
            .try_submit(0, 7, Message::PutRequest { app: AppId(1), tag, record })
            .unwrap();
        engine.try_submit(0, 8, Message::GetRequest { app: AppId(1), tag }).unwrap();

        let responses = collect_responses(&engine, 2);
        assert!(matches!(
            &responses[0],
            (7, Message::PutResponse(body)) if body.accepted
        ));
        assert!(matches!(
            &responses[1],
            (8, Message::GetResponse(body)) if body.found
        ));

        let after = store.enclave().stats();
        assert_eq!(
            after.transitions(),
            baseline.transitions(),
            "hot-path ops must not cross the boundary"
        );
        assert!(after.switchless_calls > baseline.switchless_calls);
        assert!(
            after.boundary_bytes > baseline.boundary_bytes,
            "ring payloads still pay boundary-copy costs"
        );
        engine.stop();
    }

    #[test]
    fn full_ring_hands_the_request_back() {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            Arc::new(ResultStore::new(&platform, StoreConfig::default()).unwrap());
        let waker = Arc::new(WakePipe::new().unwrap());
        // Engine with a stopped worker: submissions pile up in the ring.
        let shutdown = Arc::new(AtomicBool::new(true));
        let engine = SwitchlessEngine::start(
            Arc::clone(&store),
            std::slice::from_ref(&waker),
            2,
            shutdown,
        );
        engine.stop();
        let tag = CompTag::from_bytes([4u8; 32]);
        assert!(engine
            .try_submit(0, 1, Message::GetRequest { app: AppId(1), tag })
            .is_ok());
        assert!(engine
            .try_submit(0, 2, Message::GetRequest { app: AppId(1), tag })
            .is_ok());
        let bounced = engine.try_submit(0, 3, Message::GetRequest { app: AppId(1), tag });
        assert!(
            matches!(bounced, Err(Message::GetRequest { .. })),
            "full ring must return the message for the ECALL fallback"
        );
        assert_eq!(engine.lane_depth(0), 2);
    }

    #[test]
    fn stop_joins_workers_promptly() {
        let (_store, engine, _waker) = engine_world();
        let start = std::time::Instant::now();
        engine.stop();
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
