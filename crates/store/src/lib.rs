//! The encrypted `ResultStore` of SPEED (§IV-B).
//!
//! The store manages previously computed, encrypted results keyed by the
//! computation tag `t`. Its structure mirrors the paper's prototype:
//!
//! - **In-enclave metadata dictionary** ([`MetadataDict`]): small entries
//!   (challenge `r`, wrapped key `[k]`, GCM nonce, and a *pointer* to the
//!   ciphertext) kept inside protected memory.
//! - **Outside-enclave ciphertext heap**: the actual `[res]` bytes live in
//!   [`speed_enclave::UntrustedMemory`] — they are AES-GCM protected, so
//!   confidentiality and integrity survive outside the enclave.
//! - **Request handling** ([`ResultStore::handle`]): "the main body of
//!   encrypted ResultStore runs outside the enclave. Upon receiving a
//!   request, ResultStore first applies preliminary parsing, and then
//!   delegates the request to one of two customized ECALLs" — exactly the
//!   flow implemented here, with boundary-copy and world-switch costs
//!   charged to the platform's simulated clock.
//! - **DoS mitigation** ([`QuotaPolicy`]): the rate-limiting / quota
//!   mechanism sketched in §III-D to stop a malicious application from
//!   polluting the store with useless results.
//! - **Master-store synchronization** ([`sync`]): the §IV-B Remark — a
//!   dedicated master store periodically pulls popular entries from
//!   machine-local stores; tags are deterministic so only one ciphertext
//!   version is ever kept.
//! - **TCP deployment** ([`server::StoreServer`]): a framed, attested,
//!   AES-GCM-protected network front end.
//!
//! # Example
//!
//! ```
//! use speed_enclave::{CostModel, Platform};
//! use speed_store::{ResultStore, StoreConfig};
//! use speed_wire::{AppId, CompTag, Message, Record};
//!
//! let platform = Platform::new(CostModel::default_sgx());
//! let store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
//! let tag = CompTag::from_bytes([7u8; 32]);
//!
//! // First lookup misses…
//! let response = store.handle(Message::GetRequest { app: AppId(1), tag });
//! assert!(matches!(response, Message::GetResponse(body) if !body.found));
//!
//! // …after a PUT it hits.
//! let record = Record {
//!     challenge: vec![0u8; 32],
//!     wrapped_key: [0u8; 16],
//!     nonce: [0u8; 12],
//!     boxed_result: vec![1, 2, 3],
//! };
//! store.handle(Message::PutRequest { app: AppId(1), tag, record });
//! let response = store.handle(Message::GetRequest { app: AppId(1), tag });
//! assert!(matches!(response, Message::GetResponse(body) if body.found));
//! ```

// `deny` rather than `forbid`: the event-loop server needs readiness
// notification, which std does not expose, so `poller` carries the one
// tightly-scoped `#[allow(unsafe_code)]` in the workspace — a single
// extern "C" binding to poll(2). Everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod dict;
mod error;
mod log;
pub mod persist;
mod poller;
mod quota;
mod ring;
pub mod segment;
pub mod server;
mod store;
mod switchless;
pub mod sync;
pub mod vfs;
pub mod wal;

pub use backend::{
    BackendStats, CompactionStats, MemoryBackend, Recovery, RecoveryReport, StoreBackend,
};
pub use dict::{DictEntry, MetadataDict};
pub use error::StoreError;
pub use log::{LogBackend, LogConfig};
pub use quota::{QuotaDecision, QuotaPolicy, QuotaTracker, ShardedQuota};
pub use store::{AccessControl, ResultStore, StoreConfig, DEFAULT_SHARDS};
