//! `speedctl` — operate a SPEED `ResultStore` from the command line.
//!
//! The server and its clients derive their attestation trust from a shared
//! deployment secret (`--secret`), standing in for provisioning both sides
//! with the same attestation-service identity.
//!
//! ```text
//! # terminal 1: run a store server
//! speedctl serve --addr 127.0.0.1:7700 --secret 42
//!
//! # terminal 2: poke it
//! speedctl put   --addr 127.0.0.1:7700 --secret 42 --tag 0a0a --data "hello"
//! speedctl get   --addr 127.0.0.1:7700 --secret 42 --tag 0a0a
//! speedctl stats --addr 127.0.0.1:7700 --secret 42
//! speedctl bench --addr 127.0.0.1:7700 --secret 42 --ops 200 --size 4096
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use speed_enclave::{CostModel, Platform};
use speed_store::server::{ServerConfig, StoreServer, TcpStoreClient};
use speed_store::{ResultStore, StoreConfig};
use speed_wire::{
    AppId, CompTag, Message, MetricsFormat, Record, RingBody, RingNodeBody,
    SessionAuthority,
};

fn usage() -> ! {
    eprintln!(
        "usage: speedctl <command> [flags]\n\
         commands:\n\
           serve   --addr HOST:PORT --secret N [--no-sgx] [--max-entries N]\n\
                   [--max-bytes N] [--ttl-ms N] [--shards N] [--io-threads N]\n\
                   [--max-conns N] [--ring-slots N] [--no-switchless]\n\
                   [--metrics-jsonl PATH] [--data-dir PATH] [--checkpoint-every N]\n\
                   [--node-id N --peers ID=HOST:PORT[,ID=HOST:PORT...]]\n\
           ping    --addr HOST:PORT --secret N [--count N]\n\
           stats   --addr HOST:PORT --secret N\n\
           metrics --addr HOST:PORT --secret N [--json]\n\
           ring    --addr HOST:PORT --secret N\n\
           get     --addr HOST:PORT --secret N --tag HEX\n\
           put     --addr HOST:PORT --secret N --tag HEX --data STRING\n\
           bench   --addr HOST:PORT --secret N [--ops N] [--size BYTES]\n\
         notes:\n\
           --secret is the shared deployment secret both sides derive their\n\
           attestation trust from; --tag is zero-padded to 32 bytes\n\
           --data-dir enables the crash-safe log-structured backend: the\n\
           store recovers its contents from PATH on start and makes every\n\
           acknowledged PUT durable (see docs/OPERATIONS.md)\n\
           --node-id/--peers advertise a cluster membership ring that\n\
           ClusterClient callers fetch with `ring` (see docs/CLUSTER.md);\n\
           every member must be started with the same member list"
    );
    std::process::exit(2)
}

struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        values.insert(
                            name.to_string(),
                            iter.next().cloned().expect("peeked"),
                        );
                    }
                    _ => switches.push(name.to_string()),
                }
            } else {
                eprintln!("unexpected argument `{arg}`");
                usage();
            }
        }
        Flags { values, switches }
    }

    fn required(&self, name: &str) -> &str {
        match self.values.get(name) {
            Some(value) => value,
            None => {
                eprintln!("missing required flag --{name}");
                usage();
            }
        }
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.values.get(name).map(|raw| match raw.parse() {
            Ok(value) => value,
            Err(_) => {
                eprintln!("invalid value for --{name}: `{raw}`");
                usage();
            }
        })
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn parse_tag(hex: &str) -> CompTag {
    if !hex.len().is_multiple_of(2) || hex.len() > 64 {
        eprintln!("--tag must be an even-length hex string of at most 64 chars");
        usage();
    }
    let mut bytes = [0u8; 32];
    for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
        let pair = std::str::from_utf8(chunk).expect("hex ascii");
        bytes[i] = match u8::from_str_radix(pair, 16) {
            Ok(byte) => byte,
            Err(_) => {
                eprintln!("invalid hex in --tag: `{pair}`");
                usage();
            }
        };
    }
    CompTag::from_bytes(bytes)
}

fn connect(flags: &Flags) -> TcpStoreClient {
    let addr: std::net::SocketAddr = match flags.required("addr").parse() {
        Ok(addr) => addr,
        Err(_) => {
            eprintln!("invalid --addr");
            usage();
        }
    };
    let secret: u64 = flags.get_parsed("secret").unwrap_or_else(|| usage());
    let authority = SessionAuthority::with_seed(secret);
    let platform = Platform::new(CostModel::default_sgx());
    let enclave =
        platform.create_enclave(b"speedctl-client").expect("client enclave fits");
    match TcpStoreClient::connect(addr, &platform, &enclave, &authority) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("connect failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Parses a `--peers` list of `ID=HOST:PORT` pairs.
fn parse_peers(spec: &str) -> Vec<(u32, String)> {
    spec.split(',')
        .filter(|pair| !pair.is_empty())
        .map(|pair| {
            let Some((id, addr)) = pair.split_once('=') else {
                eprintln!("--peers entries must look like ID=HOST:PORT, got `{pair}`");
                usage();
            };
            match id.parse() {
                Ok(id) => (id, addr.to_string()),
                Err(_) => {
                    eprintln!("invalid node id in --peers entry `{pair}`");
                    usage();
                }
            }
        })
        .collect()
}

/// The membership ring a `serve --node-id/--peers` invocation advertises:
/// this node plus every peer, all weight 1, version 1. Every member of a
/// cluster is started with the same list, so they all advertise the same
/// ring and a client may bootstrap from any of them.
fn topology_from_flags(flags: &Flags, self_addr: &str) -> Option<RingBody> {
    let node_id: u32 = flags.get_parsed("node-id")?;
    let mut nodes =
        vec![RingNodeBody { id: node_id, addr: self_addr.to_string(), weight: 1 }];
    if let Some(spec) = flags.values.get("peers") {
        for (id, addr) in parse_peers(spec) {
            if nodes.iter().any(|n| n.id == id) {
                eprintln!("duplicate node id {id} in --node-id/--peers");
                usage();
            }
            nodes.push(RingNodeBody { id, addr, weight: 1 });
        }
    }
    nodes.sort_by_key(|n| n.id);
    Some(RingBody { version: 1, nodes })
}

fn cmd_serve(flags: &Flags) {
    let secret: u64 = flags.get_parsed("secret").unwrap_or_else(|| usage());
    let addr = flags.required("addr").to_string();
    let model =
        if flags.has("no-sgx") { CostModel::no_sgx() } else { CostModel::default_sgx() };
    let config = StoreConfig {
        max_entries: flags.get_parsed("max-entries").unwrap_or(1_000_000),
        max_stored_bytes: flags.get_parsed("max-bytes").unwrap_or(8 << 30),
        ttl_ms: flags.get_parsed("ttl-ms"),
        shards: flags.get_parsed("shards").unwrap_or(speed_store::DEFAULT_SHARDS),
        ..StoreConfig::default()
    };
    let defaults = ServerConfig::default();
    let server_config = ServerConfig {
        io_threads: flags.get_parsed("io-threads").unwrap_or(defaults.io_threads),
        max_connections: flags
            .get_parsed("max-conns")
            .unwrap_or(defaults.max_connections),
        switchless: !flags.has("no-switchless"),
        ring_slots: flags.get_parsed("ring-slots").unwrap_or(defaults.ring_slots),
        ..defaults
    };

    // A durable store must unseal WAL records and checkpoints written by
    // the *previous* run of this server. Real SGX fuse secrets are stable
    // per CPU; the simulation randomizes them per process, so with
    // --data-dir the fuse secret is derived from the deployment secret to
    // model a restart on the same machine.
    let platform = if flags.values.contains_key("data-dir") {
        Platform::with_seed(model, Some(secret))
    } else {
        Platform::new(model)
    };
    let store = match flags.values.get("data-dir") {
        Some(dir) => {
            let mut log_config = speed_store::LogConfig::new(dir);
            if let Some(every) = flags.get_parsed("checkpoint-every") {
                log_config.checkpoint_every = every;
            }
            let backend = Arc::new(speed_store::LogBackend::new(log_config));
            let (store, recovery) = ResultStore::open(&platform, config, backend)
                .expect("data directory usable");
            println!(
                "recovered {} entries from {dir} ({} checkpointed, {} WAL records \
                 replayed across {} segments, {} torn tails cut, {:.1} ms)",
                store.stats().entries,
                recovery.checkpoint_entries,
                recovery.wal_records_replayed,
                recovery.wal_segments,
                recovery.torn_segments,
                recovery.duration_ns as f64 / 1e6,
            );
            if recovery.quarantined_checkpoint {
                eprintln!(
                    "warning: the checkpoint was unreadable and has been \
                     quarantined to checkpoint.snap.corrupt"
                );
            }
            Arc::new(store)
        }
        None => Arc::new(ResultStore::new(&platform, config).expect("store fits in epc")),
    };
    if let Some(topology) = topology_from_flags(flags, &addr) {
        let members = topology.nodes.len();
        store.set_topology(topology);
        println!("cluster member: advertising a {members}-node ring (`speedctl ring`)");
    }
    let authority = Arc::new(SessionAuthority::with_seed(secret));
    let server = StoreServer::spawn_with_config(
        Arc::clone(&store),
        Arc::clone(&platform),
        authority,
        &addr,
        server_config,
    )
    .expect("bind listen address");
    println!("speed result store listening on {}", server.addr());
    println!("enclave measurement: {}", store.enclave().measurement());
    println!("dictionary shards: {}", store.shard_count());
    println!("press ctrl-c to stop");
    let metrics_jsonl = flags.values.get("metrics-jsonl").cloned();
    if let Some(path) = &metrics_jsonl {
        println!("emitting a JSONL metrics snapshot to {path} every 5s");
    }
    loop {
        std::thread::sleep(std::time::Duration::from_secs(5));
        if let Some(path) = &metrics_jsonl {
            // Refresh derived gauges, then overwrite the file with the
            // latest snapshot (one metric per line) so it stays bounded.
            store.sync_telemetry();
            let jsonl = speed_telemetry::global().snapshot().render_jsonl();
            if let Err(e) = std::fs::write(path, jsonl) {
                eprintln!("metrics-jsonl write failed: {e}");
            }
        }
        if let Some(reason) = store.backend().read_only() {
            eprintln!("[degraded] store is read-only: {reason}");
        }
        let stats = store.stats();
        let srv = server.stats();
        println!(
            "[stats] entries={} gets={} hits={} puts={} rejected={} bytes={} \
             evictions={} conns={}/{} (peak {}, busy-rejected {}) \
             switchless={} fallback={} proto-errors={} frame-timeouts={}",
            stats.entries,
            stats.gets,
            stats.hits,
            stats.puts,
            stats.rejected_puts,
            stats.stored_bytes,
            stats.evictions,
            srv.active,
            server_config.max_connections,
            srv.peak,
            srv.rejected,
            srv.switchless_requests,
            srv.switchless_fallbacks,
            srv.protocol_errors,
            srv.frame_timeouts,
        );
    }
}

fn cmd_ping(flags: &Flags) {
    let count: usize = flags.get_parsed("count").unwrap_or(4).max(1);
    // Connection time includes the attested handshake (quote exchange and
    // session-key derivation) — the cost the resilience layer pays on every
    // reconnect.
    let start = std::time::Instant::now();
    let mut client = connect(flags);
    let handshake = start.elapsed();
    println!("attested handshake: {handshake:?}");

    let mut worst = std::time::Duration::ZERO;
    let mut total = std::time::Duration::ZERO;
    for i in 0..count {
        let start = std::time::Instant::now();
        match client.roundtrip(&Message::StatsRequest) {
            Ok(Message::StatsResponse(_)) => {}
            Ok(other) => {
                eprintln!("unexpected response: {other:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("ping {i} failed: {e}");
                std::process::exit(1);
            }
        }
        let rtt = start.elapsed();
        println!("ping {i}: {rtt:?}");
        worst = worst.max(rtt);
        total += rtt;
    }
    println!(
        "{count} attested round-trips: avg {:?}, worst {worst:?}",
        total / count as u32
    );
}

fn cmd_stats(flags: &Flags) {
    let mut client = connect(flags);
    match client.roundtrip(&Message::StatsRequest) {
        Ok(Message::StatsResponse(stats)) => {
            println!("entries:       {}", stats.entries);
            println!("gets:          {}", stats.gets);
            println!("hits:          {}", stats.hits);
            println!("puts:          {}", stats.puts);
            println!("rejected puts: {}", stats.rejected_puts);
            println!("stored bytes:  {}", stats.stored_bytes);
            println!("evictions:     {}", stats.evictions);
            println!("shards:        {}", stats.shards.len());
            for (index, shard) in stats.shards.iter().enumerate() {
                println!(
                    "  shard {index:>2}: entries={} bytes={} evictions={} \
                     contention={} busy_ms={:.3}",
                    shard.entries,
                    shard.stored_bytes,
                    shard.evictions,
                    shard.lock_contention,
                    shard.busy_ns as f64 / 1e6,
                );
            }
        }
        Ok(other) => eprintln!("unexpected response: {other:?}"),
        Err(e) => eprintln!("request failed: {e}"),
    }
}

fn cmd_metrics(flags: &Flags) {
    let format =
        if flags.has("json") { MetricsFormat::Jsonl } else { MetricsFormat::Prometheus };
    let mut client = connect(flags);
    match client.roundtrip(&Message::MetricsRequest { format }) {
        Ok(Message::MetricsResponse(text)) => print!("{text}"),
        Ok(other) => {
            eprintln!("unexpected response: {other:?}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("request failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_ring(flags: &Flags) {
    let mut client = connect(flags);
    match client.roundtrip(&Message::RingRequest) {
        Ok(Message::RingResponse(body)) => {
            if body.nodes.is_empty() {
                println!("standalone node: no membership ring advertised");
                return;
            }
            println!("ring version {} ({} nodes)", body.version, body.nodes.len());
            for node in &body.nodes {
                let addr = if node.addr.is_empty() {
                    "(in-process)"
                } else {
                    node.addr.as_str()
                };
                println!("  node {:>3}  weight {}  {addr}", node.id, node.weight);
            }
        }
        Ok(other) => {
            eprintln!("unexpected response: {other:?}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("request failed: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_get(flags: &Flags) {
    let tag = parse_tag(flags.required("tag"));
    let mut client = connect(flags);
    match client.roundtrip(&Message::GetRequest { app: AppId(0xC71), tag }) {
        Ok(Message::GetResponse(body)) => {
            if let Some(record) = body.record {
                println!("found: {} ciphertext bytes", record.boxed_result.len());
                println!("challenge: {} bytes", record.challenge.len());
            } else {
                println!("not found");
                std::process::exit(3);
            }
        }
        Ok(other) => eprintln!("unexpected response: {other:?}"),
        Err(e) => eprintln!("request failed: {e}"),
    }
}

fn cmd_put(flags: &Flags) {
    let tag = parse_tag(flags.required("tag"));
    let data = flags.required("data").as_bytes().to_vec();
    let mut client = connect(flags);
    // speedctl stores raw bytes in the record body; real applications go
    // through DedupRuntime, which encrypts. This is an operator tool for
    // smoke-testing a deployment.
    let record = Record {
        challenge: vec![0u8; 32],
        wrapped_key: [0u8; 16],
        nonce: [0u8; 12],
        boxed_result: data,
    };
    match client.roundtrip(&Message::PutRequest { app: AppId(0xC71), tag, record }) {
        Ok(Message::PutResponse(body)) => {
            if body.accepted {
                println!(
                    "accepted{}",
                    body.reason.map(|r| format!(" ({r})")).unwrap_or_default()
                );
            } else {
                println!("rejected: {}", body.reason.unwrap_or_default());
                std::process::exit(4);
            }
        }
        Ok(other) => eprintln!("unexpected response: {other:?}"),
        Err(e) => eprintln!("request failed: {e}"),
    }
}

fn cmd_bench(flags: &Flags) {
    let ops: usize = flags.get_parsed("ops").unwrap_or(100);
    let size: usize = flags.get_parsed("size").unwrap_or(1024);
    let mut client = connect(flags);

    let record = |i: usize| Record {
        challenge: vec![0u8; 32],
        wrapped_key: [0u8; 16],
        nonce: [0u8; 12],
        boxed_result: vec![(i % 251) as u8; size],
    };
    let tag = |i: usize| {
        let mut bytes = [0xBEu8; 32];
        bytes[..8].copy_from_slice(&(i as u64).to_le_bytes());
        CompTag::from_bytes(bytes)
    };

    let start = std::time::Instant::now();
    for i in 0..ops {
        client
            .roundtrip(&Message::PutRequest {
                app: AppId(0xBE7C),
                tag: tag(i),
                record: record(i),
            })
            .expect("put");
    }
    let put_elapsed = start.elapsed();

    let start = std::time::Instant::now();
    for i in 0..ops {
        let response = client
            .roundtrip(&Message::GetRequest { app: AppId(0xBE7C), tag: tag(i) })
            .expect("get");
        assert!(matches!(response, Message::GetResponse(b) if b.found));
    }
    let get_elapsed = start.elapsed();

    println!(
        "{ops} PUTs of {size} B: {put_elapsed:?} ({:?}/op)",
        put_elapsed / ops as u32
    );
    println!(
        "{ops} GETs of {size} B: {get_elapsed:?} ({:?}/op)",
        get_elapsed / ops as u32
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let flags = Flags::parse(&args[1..]);
    match command.as_str() {
        "serve" => cmd_serve(&flags),
        "ping" => cmd_ping(&flags),
        "stats" => cmd_stats(&flags),
        "metrics" => cmd_metrics(&flags),
        "ring" => cmd_ring(&flags),
        "get" => cmd_get(&flags),
        "put" => cmd_put(&flags),
        "bench" => cmd_bench(&flags),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_values_and_switches() {
        let flags = Flags::parse(&args(&[
            "--addr",
            "127.0.0.1:7700",
            "--no-sgx",
            "--secret",
            "42",
        ]));
        assert_eq!(flags.required("addr"), "127.0.0.1:7700");
        assert_eq!(flags.get_parsed::<u64>("secret"), Some(42));
        assert!(flags.has("no-sgx"));
        assert!(!flags.has("sgx"));
        assert_eq!(flags.get_parsed::<u64>("ttl-ms"), None);
    }

    #[test]
    fn consecutive_switches_parse() {
        let flags = Flags::parse(&args(&["--no-sgx", "--verbose"]));
        assert!(flags.has("no-sgx"));
        assert!(flags.has("verbose"));
    }

    #[test]
    fn peers_parse_into_a_sorted_ring() {
        let flags = Flags::parse(&args(&[
            "--node-id",
            "2",
            "--peers",
            "0=10.0.0.1:7700,1=10.0.0.2:7700",
        ]));
        let body = topology_from_flags(&flags, "10.0.0.3:7700").unwrap();
        assert_eq!(body.version, 1);
        let ids: Vec<u32> = body.nodes.iter().map(|n| n.id).collect();
        assert_eq!(ids, [0, 1, 2]);
        assert_eq!(body.nodes[2].addr, "10.0.0.3:7700");
        assert!(body.nodes.iter().all(|n| n.weight == 1));
    }

    #[test]
    fn topology_absent_without_node_id() {
        let flags = Flags::parse(&args(&["--addr", "127.0.0.1:7700"]));
        assert!(topology_from_flags(&flags, "127.0.0.1:7700").is_none());
    }

    #[test]
    fn tag_parses_and_pads() {
        let tag = parse_tag("0a0b");
        assert_eq!(tag.as_bytes()[0], 0x0a);
        assert_eq!(tag.as_bytes()[1], 0x0b);
        assert_eq!(tag.as_bytes()[2], 0);
        let full = parse_tag(&"ff".repeat(32));
        assert_eq!(full.as_bytes(), &[0xff; 32]);
    }
}
