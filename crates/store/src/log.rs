//! The crash-safe log-structured store backend.
//!
//! Durable state lives in one directory:
//!
//! - WAL segment files (`wal-<log>-<first_seq>.log`, see [`crate::segment`])
//!   hold sealed, checksummed mutation records ([`crate::wal`]). Mutations
//!   are routed to one of [`LogConfig::logs`] shard logs by tag so hot
//!   shards don't serialize on one file, while a global sequence number per
//!   record merges the logs back into a single mutation order on replay.
//! - `checkpoint.snap` holds a sealed full-store image (the PR 5 snapshot
//!   payload wrapped with the sequence number it covers). A checkpoint
//!   bounds replay length: records at or below its sequence are collapsed
//!   into it, and the segments they occupied are deleted.
//!
//! Recovery on open: sweep leftover `*.tmp` files, load the checkpoint
//! (quarantining a corrupt one to `*.corrupt`), scan every segment with
//! the torn-tail rule (truncating the first corrupt/short record and
//! everything after it), merge records above the checkpoint sequence in
//! sequence order, and rebuild the in-memory index — entry liveness,
//! reference counts, and which segment holds each live record.
//!
//! Compaction rewrites one mostly-dead sealed segment at a time: live PUT
//! frames and still-replayable control frames are copied verbatim into the
//! active segment (already sealed — no re-encryption), then the source file
//! is deleted. A crash between the copy and the delete leaves duplicate
//! records, which replay tolerates: duplicate PUTs are recognized by equal
//! sequence numbers and duplicated Ref/Unref pairs cancel out.
//!
//! Any failed append or fsync degrades the backend to **read-only**: the
//! store keeps serving GETs but rejects further mutations rather than
//! acknowledging writes it cannot make durable (the disk-full contract).
//! Read-write operation resumes on restart once the underlying condition
//! clears.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use speed_enclave::sealing::{seal, unseal, SealPolicy, SealedData};
use speed_enclave::{Enclave, Platform};
use speed_telemetry::{names, Counter, Gauge, Histogram};
use speed_wire::{CompTag, SyncEntry};

use crate::backend::{
    BackendStats, CompactionStats, Recovery, RecoveryReport, StoreBackend,
};
use crate::persist::SnapshotLoad;
use crate::segment::{
    corrupt_sibling, list_segments, segment_file_name, sweep_tmp_files, tmp_sibling,
    CHECKPOINT_FILE,
};
use crate::vfs::{StdVfs, Vfs};
use crate::wal::{encode_record, scan_segment, WalOp, WalRecord};
use crate::StoreError;

/// Magic prefix of the checkpoint file, ahead of the sealed payload.
const CKPT_MAGIC: &[u8; 8] = b"SPDCKPT1";

/// Sealing AAD for checkpoints. Distinct from both the WAL-record AAD and
/// the standalone-snapshot AAD so sealed blobs can never cross roles.
const CHECKPOINT_AAD: &[u8] = b"speed-store-checkpoint-v1";

/// Tuning for the [`LogBackend`].
#[derive(Clone, Debug)]
pub struct LogConfig {
    /// Directory holding segments and the checkpoint. Created on open.
    pub dir: PathBuf,
    /// Number of shard logs mutations are routed across by tag.
    pub logs: usize,
    /// Rotate a shard log's active segment once it reaches this many bytes.
    pub segment_bytes: u64,
    /// Records between automatic checkpoints (replay-length bound);
    /// 0 disables automatic checkpointing.
    pub checkpoint_every: u64,
    /// Fsync appended records before acknowledging a request. Disable only
    /// for benchmarking — a power cut may then lose acknowledged writes.
    pub fsync: bool,
    /// Only compact a sealed segment carrying at least this many dead
    /// bytes (and at least half dead overall).
    pub compact_min_dead_bytes: u64,
}

impl LogConfig {
    /// Defaults rooted at `dir`: 4 shard logs, 1 MiB segments, a checkpoint
    /// every 4096 records, fsync on, 4 KiB compaction floor.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        LogConfig {
            dir: dir.into(),
            logs: 4,
            segment_bytes: 1024 * 1024,
            checkpoint_every: 4096,
            fsync: true,
            compact_min_dead_bytes: 4096,
        }
    }
}

/// Which shard log a tag's mutations append to.
fn log_of(tag: &CompTag, logs: usize) -> usize {
    usize::from(tag.as_bytes()[0]) % logs.max(1)
}

#[derive(Clone)]
struct Ctx {
    platform: Arc<Platform>,
    enclave: Arc<Enclave>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Ctx")
    }
}

/// Bookkeeping for one segment file currently on disk.
#[derive(Debug, Default)]
struct SegmentState {
    log: usize,
    len: u64,
    /// Prefix known durable (covered by a successful fsync). On a failed
    /// flush the file is truncated back to this point so records the
    /// caller reports as failed can never resurface on replay.
    synced_len: u64,
    live_bytes: u64,
    live_records: u64,
    max_seq: u64,
    dirty: bool,
    synced_dir: bool,
}

/// Where one live entry's durable PUT record resides.
#[derive(Debug)]
struct IndexEntry {
    refcount: u32,
    put_seq: u64,
    /// `None` when the entry is represented by the checkpoint.
    segment: Option<PathBuf>,
    frame_bytes: u64,
}

#[derive(Debug, Default)]
struct Inner {
    ctx: Option<Ctx>,
    /// Next sequence number to assign (1-based; 0 = nothing ever logged).
    next_seq: u64,
    checkpoint_seq: u64,
    records_since_checkpoint: u64,
    actives: Vec<PathBuf>,
    segments: HashMap<PathBuf, SegmentState>,
    index: HashMap<CompTag, IndexEntry>,
    read_only: Option<String>,
    appended_records: u64,
    appended_bytes: u64,
    reclaimed_bytes: u64,
}

#[derive(Debug)]
struct LogTelemetry {
    appends: Counter,
    appended_bytes: Counter,
    replayed: Counter,
    torn: Counter,
    checkpoints: Counter,
    compactions: Counter,
    reclaimed: Counter,
    quarantined: Counter,
    recovery: Histogram,
    read_only: Gauge,
}

impl LogTelemetry {
    fn from_global() -> Self {
        let registry = speed_telemetry::global();
        LogTelemetry {
            appends: registry
                .counter(names::STORE_WAL_APPENDS_TOTAL, "WAL records appended"),
            appended_bytes: registry.counter(
                names::STORE_WAL_APPENDED_BYTES_TOTAL,
                "framed WAL bytes appended",
            ),
            replayed: registry.counter(
                names::STORE_WAL_REPLAY_RECORDS_TOTAL,
                "WAL records replayed during recovery",
            ),
            torn: registry.counter(
                names::STORE_WAL_TORN_SEGMENTS_TOTAL,
                "segment files with a truncated torn tail",
            ),
            checkpoints: registry
                .counter(names::STORE_CHECKPOINTS_TOTAL, "checkpoints written"),
            compactions: registry.counter(
                names::STORE_COMPACTIONS_TOTAL,
                "compaction passes that rewrote a segment",
            ),
            reclaimed: registry.counter(
                names::STORE_COMPACTION_RECLAIMED_BYTES_TOTAL,
                "dead log bytes reclaimed by checkpoints and compaction",
            ),
            quarantined: registry.counter(
                names::STORE_SNAPSHOT_QUARANTINED_TOTAL,
                "corrupt snapshots/checkpoints quarantined to *.corrupt",
            ),
            recovery: registry.histogram(
                names::STORE_RECOVERY_DURATION_NS,
                "backend open/recovery pass duration",
            ),
            read_only: registry.gauge(
                names::STORE_READ_ONLY,
                "1 while the store is degraded to read-only",
            ),
        }
    }
}

/// The crash-safe log-structured [`StoreBackend`]. See the module docs for
/// the on-disk layout and recovery rules.
#[derive(Debug)]
pub struct LogBackend {
    vfs: Arc<dyn Vfs>,
    config: LogConfig,
    telemetry: LogTelemetry,
    inner: Mutex<Inner>,
}

enum CkptLoad {
    Missing,
    Loaded(u64, Vec<SyncEntry>),
    Bad(String),
}

impl LogBackend {
    /// Creates the backend on the production filesystem.
    pub fn new(config: LogConfig) -> Self {
        Self::with_vfs(Arc::new(StdVfs), config)
    }

    /// Creates the backend on an injected [`Vfs`] (fault testing).
    pub fn with_vfs(vfs: Arc<dyn Vfs>, config: LogConfig) -> Self {
        LogBackend {
            vfs,
            config,
            telemetry: LogTelemetry::from_global(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn checkpoint_path(&self) -> PathBuf {
        self.config.dir.join(CHECKPOINT_FILE)
    }

    fn degrade(&self, inner: &mut Inner, reason: String) -> StoreError {
        if inner.read_only.is_none() {
            inner.read_only = Some(reason.clone());
            self.telemetry.read_only.set(1);
        }
        StoreError::Io(reason)
    }

    fn load_checkpoint(&self, ctx: &Ctx, path: &Path) -> CkptLoad {
        let bytes = match self.vfs.read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return CkptLoad::Missing
            }
            Err(e) => return CkptLoad::Bad(format!("unreadable checkpoint: {e}")),
        };
        if bytes.len() < CKPT_MAGIC.len() + 12 || &bytes[..8] != CKPT_MAGIC {
            return CkptLoad::Bad("checkpoint header short or wrong magic".into());
        }
        let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
        let sealed_bytes = &bytes[20..];
        if crate::wal::crc32(sealed_bytes) != crc {
            return CkptLoad::Bad("checkpoint checksum mismatch (torn write?)".into());
        }
        let sealed = match SealedData::from_bytes(sealed_bytes) {
            Ok(sealed) => sealed,
            Err(e) => return CkptLoad::Bad(format!("checkpoint container: {e}")),
        };
        let payload = match unseal(
            &ctx.platform,
            &ctx.enclave,
            &SealPolicy::MrEnclave,
            CHECKPOINT_AAD,
            &sealed,
        ) {
            Ok(payload) => payload,
            Err(e) => return CkptLoad::Bad(format!("checkpoint unseal: {e}")),
        };
        match crate::persist::decode_payload(&payload) {
            Ok(entries) => CkptLoad::Loaded(seq, entries),
            Err(e) => CkptLoad::Bad(format!("checkpoint payload: {e}")),
        }
    }

    /// Appends one sequenced record, updating the index and segment
    /// bookkeeping, rotating the shard log if it grew past the limit.
    fn append_op(&self, op: WalOp) -> Result<(), StoreError> {
        let mut inner = self.lock();
        if let Some(reason) = &inner.read_only {
            return Err(StoreError::Io(format!("store is read-only: {reason}")));
        }
        let ctx = inner
            .ctx
            .clone()
            .ok_or_else(|| StoreError::Protocol("log backend not opened".into()))?;
        let seq = inner.next_seq.max(1);
        let record = WalRecord { seq, op };
        let frame = encode_record(&ctx.platform, &ctx.enclave, &record)?;
        let log = log_of(record.tag(), self.config.logs);
        let path = inner.actives[log].clone();
        if let Err(e) = self.vfs.append(&path, &frame) {
            return Err(self.degrade(&mut inner, format!("WAL append failed: {e}")));
        }
        let frame_len = frame.len() as u64;
        let dir = self.config.dir.clone();
        let state = inner.segments.entry(path.clone()).or_default();
        state.log = log;
        if !state.synced_dir {
            // First bytes of a fresh segment: the file's directory entry
            // must survive power loss too.
            if let Err(e) = self.vfs.fsync_dir(&dir) {
                return Err(
                    self.degrade(&mut inner, format!("WAL directory fsync failed: {e}"))
                );
            }
            let state = inner.segments.get_mut(&path).expect("just inserted");
            state.synced_dir = true;
        }
        let state = inner.segments.get_mut(&path).expect("just inserted");
        state.len += frame_len;
        state.max_seq = seq;
        state.dirty = true;
        let rotate = state.len >= self.config.segment_bytes;
        inner.next_seq = seq + 1;
        inner.records_since_checkpoint += 1;
        inner.appended_records += 1;
        inner.appended_bytes += frame_len;
        self.telemetry.appends.inc();
        self.telemetry.appended_bytes.add(frame_len);
        match &record.op {
            WalOp::Put(entry) => {
                let previous = inner.index.insert(
                    entry.tag,
                    IndexEntry {
                        refcount: 1,
                        put_seq: seq,
                        segment: Some(path.clone()),
                        frame_bytes: frame_len,
                    },
                );
                if let Some(previous) = previous {
                    Self::forget_frame(&mut inner.segments, &previous);
                }
                let state = inner.segments.get_mut(&path).expect("active exists");
                state.live_bytes += frame_len;
                state.live_records += 1;
            }
            WalOp::Ref(tag) => {
                if let Some(entry) = inner.index.get_mut(tag) {
                    entry.refcount = entry.refcount.saturating_add(1);
                }
            }
            WalOp::Unref(tag) => {
                let dead = match inner.index.get_mut(tag) {
                    Some(entry) => {
                        entry.refcount = entry.refcount.saturating_sub(1);
                        entry.refcount == 0
                    }
                    None => false,
                };
                if dead {
                    if let Some(entry) = inner.index.remove(tag) {
                        Self::forget_frame(&mut inner.segments, &entry);
                    }
                }
            }
            WalOp::Delete(tag) => {
                if let Some(entry) = inner.index.remove(tag) {
                    Self::forget_frame(&mut inner.segments, &entry);
                }
            }
        }
        if rotate {
            let next = self.config.dir.join(segment_file_name(log, inner.next_seq));
            inner.actives[log] = next.clone();
            inner
                .segments
                .entry(next)
                .or_insert_with(|| SegmentState { log, ..SegmentState::default() });
        }
        Ok(())
    }

    /// Drops a dead PUT frame from its segment's live accounting.
    fn forget_frame(segments: &mut HashMap<PathBuf, SegmentState>, entry: &IndexEntry) {
        if let Some(path) = &entry.segment {
            if let Some(state) = segments.get_mut(path) {
                state.live_bytes = state.live_bytes.saturating_sub(entry.frame_bytes);
                state.live_records = state.live_records.saturating_sub(1);
            }
        }
    }
}

impl StoreBackend for LogBackend {
    fn name(&self) -> &'static str {
        "log"
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn open(
        &self,
        platform: &Arc<Platform>,
        enclave: &Arc<Enclave>,
    ) -> Result<Recovery, StoreError> {
        let start = Instant::now();
        let dir = self.config.dir.clone();
        self.vfs.create_dir_all(&dir)?;
        let swept = sweep_tmp_files(self.vfs.as_ref(), &dir);
        let ctx = Ctx { platform: Arc::clone(platform), enclave: Arc::clone(enclave) };

        let mut report = RecoveryReport {
            backend: "log",
            swept_tmp_files: swept,
            ..RecoveryReport::default()
        };

        // Phase 1: checkpoint.
        let cp_path = self.checkpoint_path();
        let mut checkpoint_seq = 0u64;
        let mut checkpoint_entries: Vec<SyncEntry> = Vec::new();
        match self.load_checkpoint(&ctx, &cp_path) {
            CkptLoad::Missing => report.checkpoint = SnapshotLoad::FreshMissing,
            CkptLoad::Loaded(seq, entries) => {
                checkpoint_seq = seq;
                checkpoint_entries = entries;
                report.checkpoint = SnapshotLoad::Restored;
            }
            CkptLoad::Bad(reason) => {
                // Quarantine the evidence instead of silently discarding it.
                if self.vfs.rename(&cp_path, &corrupt_sibling(&cp_path)).is_ok() {
                    let _ = self.vfs.fsync_dir(&dir);
                    report.quarantined_checkpoint = true;
                }
                self.telemetry.quarantined.inc();
                report.checkpoint = SnapshotLoad::FreshUnreadable(reason);
            }
        }
        report.checkpoint_entries = checkpoint_entries.len();

        // Phase 2: scan segments, cutting torn tails.
        let files = list_segments(self.vfs.as_ref(), &dir)?;
        report.wal_segments = files.len();
        let mut all: Vec<(WalRecord, PathBuf, u64)> = Vec::new();
        let mut segments: HashMap<PathBuf, SegmentState> = HashMap::new();
        let mut max_seq_seen = checkpoint_seq;
        for file in &files {
            let bytes = match self.vfs.read(&file.path) {
                Ok(bytes) => bytes,
                Err(_) => {
                    // An unreadable segment is a torn artifact: skip it but
                    // keep recovering — sealed records elsewhere still pass
                    // integrity checks on their own.
                    report.torn_segments += 1;
                    self.telemetry.torn.inc();
                    continue;
                }
            };
            let scan = scan_segment(&ctx.platform, &ctx.enclave, &bytes);
            if scan.torn {
                // Cut the tail so post-recovery appends can never land
                // after garbage bytes.
                let _ = self.vfs.truncate(&file.path, scan.valid_len);
                report.torn_segments += 1;
                self.telemetry.torn.inc();
            }
            let mut state = SegmentState {
                log: file.log,
                len: scan.valid_len,
                synced_len: scan.valid_len,
                synced_dir: true,
                ..SegmentState::default()
            };
            for (i, record) in scan.records.into_iter().enumerate() {
                let frame = scan.offsets[i + 1] - scan.offsets[i];
                state.max_seq = state.max_seq.max(record.seq);
                max_seq_seen = max_seq_seen.max(record.seq);
                all.push((record, file.path.clone(), frame));
            }
            segments.insert(file.path.clone(), state);
        }
        // Merge the shard logs back into one global mutation order. The
        // sort is stable, so compaction duplicates (equal seqs) keep their
        // file order and the dedup rule below sees the original first.
        all.sort_by_key(|(record, _, _)| record.seq);

        // Phase 3: replay above the checkpoint onto the live map.
        struct LiveEntry {
            entry: SyncEntry,
            index: IndexEntry,
            order: (u8, u64),
        }
        let mut live: HashMap<CompTag, LiveEntry> = HashMap::new();
        for (i, entry) in checkpoint_entries.into_iter().enumerate() {
            live.insert(
                entry.tag,
                LiveEntry {
                    index: IndexEntry {
                        refcount: 1,
                        put_seq: 0,
                        segment: None,
                        frame_bytes: 0,
                    },
                    order: (0, i as u64),
                    entry,
                },
            );
        }
        for (record, path, frame) in all {
            if record.seq <= checkpoint_seq {
                continue; // collapsed into the checkpoint
            }
            report.wal_records_replayed += 1;
            match record.op {
                WalOp::Put(entry) => {
                    let duplicate = live
                        .get(&entry.tag)
                        .is_some_and(|l| l.index.put_seq == record.seq);
                    if !duplicate {
                        live.insert(
                            entry.tag,
                            LiveEntry {
                                index: IndexEntry {
                                    refcount: 1,
                                    put_seq: record.seq,
                                    segment: Some(path),
                                    frame_bytes: frame,
                                },
                                order: (1, record.seq),
                                entry,
                            },
                        );
                    }
                }
                WalOp::Ref(tag) => {
                    if let Some(l) = live.get_mut(&tag) {
                        l.index.refcount = l.index.refcount.saturating_add(1);
                    }
                }
                WalOp::Unref(tag) => {
                    let dead = match live.get_mut(&tag) {
                        Some(l) => {
                            l.index.refcount = l.index.refcount.saturating_sub(1);
                            l.index.refcount == 0
                        }
                        None => false,
                    };
                    if dead {
                        live.remove(&tag);
                    }
                }
                WalOp::Delete(tag) => {
                    live.remove(&tag);
                }
            }
        }
        self.telemetry.replayed.add(report.wal_records_replayed);

        // Phase 4: rebuild per-segment live accounting and the index.
        let mut ordered: Vec<(&CompTag, &LiveEntry)> = live.iter().collect();
        ordered.sort_by_key(|(_, l)| l.order);
        let entries: Vec<SyncEntry> =
            ordered.iter().map(|(_, l)| l.entry.clone()).collect();
        drop(ordered);
        let mut index = HashMap::with_capacity(live.len());
        for (tag, l) in live {
            if let Some(path) = &l.index.segment {
                if let Some(state) = segments.get_mut(path) {
                    state.live_bytes += l.index.frame_bytes;
                    state.live_records += 1;
                }
            }
            index.insert(tag, l.index);
        }

        // Phase 5: pick the newest segment of each shard log as its active
        // file; fresh logs get a name but no file until the first append.
        let next_seq = max_seq_seen + 1;
        let mut actives = Vec::with_capacity(self.config.logs);
        for log in 0..self.config.logs {
            let newest = files
                .iter()
                .filter(|f| f.log == log)
                .max_by_key(|f| f.first_seq)
                .map(|f| f.path.clone());
            let path = match newest {
                Some(path) => path,
                None => {
                    let path = dir.join(segment_file_name(log, next_seq));
                    segments.insert(
                        path.clone(),
                        SegmentState { log, ..SegmentState::default() },
                    );
                    path
                }
            };
            actives.push(path);
        }

        let mut inner = self.lock();
        *inner = Inner {
            ctx: Some(ctx),
            next_seq,
            checkpoint_seq,
            records_since_checkpoint: max_seq_seen - checkpoint_seq,
            actives,
            segments,
            index,
            read_only: None,
            appended_records: 0,
            appended_bytes: 0,
            reclaimed_bytes: 0,
        };
        drop(inner);
        self.telemetry.read_only.set(0);

        report.duration_ns =
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.telemetry.recovery.observe(report.duration_ns);
        Ok(Recovery { entries, report })
    }

    fn record_put(&self, entry: &SyncEntry) -> Result<(), StoreError> {
        self.append_op(WalOp::Put(entry.clone()))
    }

    fn record_ref(&self, tag: &CompTag) -> Result<(), StoreError> {
        self.append_op(WalOp::Ref(*tag))
    }

    fn record_unref(&self, tag: &CompTag) -> Result<(), StoreError> {
        self.append_op(WalOp::Unref(*tag))
    }

    fn record_delete(&self, tag: &CompTag) -> Result<(), StoreError> {
        self.append_op(WalOp::Delete(*tag))
    }

    fn flush(&self) -> Result<(), StoreError> {
        let mut inner = self.lock();
        if let Some(reason) = &inner.read_only {
            return Err(StoreError::Io(format!("store is read-only: {reason}")));
        }
        let dirty: Vec<PathBuf> = inner
            .segments
            .iter()
            .filter(|(_, s)| s.dirty)
            .map(|(p, _)| p.clone())
            .collect();
        if self.config.fsync {
            let mut failed = None;
            for path in &dirty {
                if let Err(e) = self.vfs.fsync(path) {
                    failed = Some(e);
                    break;
                }
            }
            if let Some(e) = failed {
                // The caller will reject the writes covered by this flush.
                // Cut every un-synced suffix (even of segments whose fsync
                // succeeded just now) so a rejected record can never
                // resurface as a phantom entry on replay.
                for path in &dirty {
                    let Some(state) = inner.segments.get_mut(path) else { continue };
                    let keep = state.synced_len;
                    state.dirty = false;
                    if self.vfs.truncate(path, keep).is_ok() {
                        let _ = self.vfs.fsync(path);
                        let state = inner.segments.get_mut(path).expect("still present");
                        state.len = keep;
                    }
                }
                return Err(self.degrade(&mut inner, format!("WAL fsync failed: {e}")));
            }
        }
        for path in &dirty {
            if let Some(state) = inner.segments.get_mut(path) {
                state.dirty = false;
                state.synced_len = state.len;
            }
        }
        Ok(())
    }

    fn checkpoint(&self, sections: &[Vec<SyncEntry>]) -> Result<(), StoreError> {
        let payload = crate::persist::encode_shard_sections(sections)?;
        let mut inner = self.lock();
        let ctx = inner
            .ctx
            .clone()
            .ok_or_else(|| StoreError::Protocol("log backend not opened".into()))?;
        let seq_mark = inner.next_seq.saturating_sub(1);
        let sealed = seal(
            &ctx.platform,
            &ctx.enclave,
            &SealPolicy::MrEnclave,
            CHECKPOINT_AAD,
            &payload,
        )
        .to_bytes();
        let mut bytes = Vec::with_capacity(20 + sealed.len());
        bytes.extend_from_slice(CKPT_MAGIC);
        bytes.extend_from_slice(&seq_mark.to_le_bytes());
        bytes.extend_from_slice(&crate::wal::crc32(&sealed).to_le_bytes());
        bytes.extend_from_slice(&sealed);

        let cp = self.checkpoint_path();
        let tmp = tmp_sibling(&cp);
        let written = self
            .vfs
            .write(&tmp, &bytes)
            .and_then(|()| self.vfs.fsync(&tmp))
            .and_then(|()| self.vfs.rename(&tmp, &cp))
            .and_then(|()| self.vfs.fsync_dir(&self.config.dir));
        if let Err(e) = written {
            // A failed checkpoint is not a durability loss: the WAL still
            // holds everything. Clean up and keep running.
            let _ = self.vfs.remove_file(&tmp);
            return Err(StoreError::Io(format!("checkpoint write failed: {e}")));
        }

        // The checkpoint now covers every record on disk (the lock was held
        // throughout): delete the segments and start fresh actives.
        inner.checkpoint_seq = seq_mark;
        inner.records_since_checkpoint = 0;
        let old: Vec<(PathBuf, u64)> =
            inner.segments.iter().map(|(p, s)| (p.clone(), s.len)).collect();
        inner.segments.clear();
        for (path, len) in old {
            if len == 0 || self.vfs.remove_file(&path).is_ok() {
                inner.reclaimed_bytes += len;
                self.telemetry.reclaimed.add(len);
            }
            // A segment whose removal failed stays on disk harmlessly: its
            // records are all at or below the checkpoint sequence and are
            // skipped on replay.
        }
        let _ = self.vfs.fsync_dir(&self.config.dir);
        for entry in inner.index.values_mut() {
            entry.segment = None;
            entry.frame_bytes = 0;
        }
        let next_seq = inner.next_seq;
        inner.actives.clear();
        for log in 0..self.config.logs {
            let path = self.config.dir.join(segment_file_name(log, next_seq));
            inner.actives.push(path.clone());
            inner.segments.insert(path, SegmentState { log, ..SegmentState::default() });
        }
        self.telemetry.checkpoints.inc();
        Ok(())
    }

    fn compact(&self) -> Result<CompactionStats, StoreError> {
        let mut inner = self.lock();
        if let Some(reason) = &inner.read_only {
            return Err(StoreError::Io(format!("store is read-only: {reason}")));
        }
        let ctx = inner
            .ctx
            .clone()
            .ok_or_else(|| StoreError::Protocol("log backend not opened".into()))?;
        let actives = inner.actives.clone();
        let candidate = inner
            .segments
            .iter()
            .filter(|(path, state)| {
                !actives.contains(path)
                    && state.len > 0
                    && state.live_bytes * 2 <= state.len
                    && state.len - state.live_bytes >= self.config.compact_min_dead_bytes
            })
            .max_by_key(|(_, state)| state.len - state.live_bytes)
            .map(|(path, _)| path.clone());
        let Some(source) = candidate else {
            return Ok(CompactionStats::default());
        };

        let bytes = self.vfs.read(&source)?;
        let scan = scan_segment(&ctx.platform, &ctx.enclave, &bytes);
        let source_log = inner.segments.get(&source).map_or(0, |s| s.log);
        let target = inner.actives[source_log % self.config.logs.max(1)].clone();
        // Copy surviving frames verbatim (already sealed — no re-encrypt):
        // live PUT frames move with their index pointer; control frames
        // (Ref/Unref/Delete) above the checkpoint are still replayable and
        // must be carried; everything at or below the checkpoint sequence
        // is collapsed into it and dropped.
        let mut kept = Vec::new();
        let mut moved: Vec<(CompTag, u64)> = Vec::new();
        let mut kept_live_bytes = 0u64;
        let mut kept_records = 0u64;
        let mut kept_max_seq = 0u64;
        let checkpoint_seq = inner.checkpoint_seq;
        for (i, record) in scan.records.iter().enumerate() {
            if record.seq <= checkpoint_seq {
                continue;
            }
            let frame_len = scan.offsets[i + 1] - scan.offsets[i];
            let keep = match &record.op {
                WalOp::Put(entry) => {
                    let live = inner.index.get(&entry.tag).is_some_and(|e| {
                        e.put_seq == record.seq && e.segment.as_deref() == Some(&source)
                    });
                    if live {
                        moved.push((entry.tag, frame_len));
                        kept_live_bytes += frame_len;
                        kept_records += 1;
                    }
                    live
                }
                WalOp::Ref(_) | WalOp::Unref(_) | WalOp::Delete(_) => true,
            };
            if keep {
                let start = scan.offsets[i] as usize;
                let end = (scan.offsets[i] + frame_len) as usize;
                kept.extend_from_slice(&bytes[start..end]);
                kept_max_seq = kept_max_seq.max(record.seq);
            }
        }

        if !kept.is_empty() {
            // A torn append here would leave garbage mid-active-segment,
            // cutting off every later record at replay — degrade rather
            // than risk acknowledging writes behind a corrupt prefix.
            if let Err(e) = self.vfs.append(&target, &kept) {
                return Err(
                    self.degrade(&mut inner, format!("compaction append failed: {e}"))
                );
            }
            if let Err(e) = self.vfs.fsync(&target) {
                return Err(
                    self.degrade(&mut inner, format!("compaction fsync failed: {e}"))
                );
            }
            let dir = self.config.dir.clone();
            let target_log = source_log % self.config.logs.max(1);
            let state = inner.segments.entry(target.clone()).or_default();
            state.log = target_log;
            if !state.synced_dir {
                if let Err(e) = self.vfs.fsync_dir(&dir) {
                    return Err(self.degrade(
                        &mut inner,
                        format!("compaction dir fsync failed: {e}"),
                    ));
                }
                let state = inner.segments.get_mut(&target).expect("just inserted");
                state.synced_dir = true;
            }
            let state = inner.segments.get_mut(&target).expect("just inserted");
            state.len += kept.len() as u64;
            state.synced_len = state.len;
            state.live_bytes += kept_live_bytes;
            state.live_records += kept_records;
            state.max_seq = state.max_seq.max(kept_max_seq);
            for (tag, frame_len) in &moved {
                if let Some(entry) = inner.index.get_mut(tag) {
                    entry.segment = Some(target.clone());
                    entry.frame_bytes = *frame_len;
                }
            }
        }

        let source_len = inner.segments.get(&source).map_or(0, |s| s.len);
        let mut stats = CompactionStats {
            segments_compacted: 1,
            reclaimed_bytes: source_len.saturating_sub(kept.len() as u64),
            live_records_rewritten: kept_records,
        };
        // If the source file survives removal, replay still converges:
        // duplicate PUTs dedup by sequence number and duplicated
        // Ref/Unref pairs cancel out.
        if self.vfs.remove_file(&source).is_err() {
            stats.reclaimed_bytes = 0;
        }
        inner.segments.remove(&source);
        inner.reclaimed_bytes += stats.reclaimed_bytes;
        let _ = self.vfs.fsync_dir(&self.config.dir);
        self.telemetry.compactions.inc();
        self.telemetry.reclaimed.add(stats.reclaimed_bytes);
        Ok(stats)
    }

    fn wants_checkpoint(&self) -> bool {
        if self.config.checkpoint_every == 0 {
            return false;
        }
        let inner = self.lock();
        inner.read_only.is_none()
            && inner.records_since_checkpoint >= self.config.checkpoint_every
    }

    fn wants_compaction(&self) -> bool {
        let inner = self.lock();
        if inner.read_only.is_some() {
            return false;
        }
        inner.segments.iter().any(|(path, state)| {
            !inner.actives.contains(path)
                && state.len > 0
                && state.live_bytes * 2 <= state.len
                && state.len - state.live_bytes >= self.config.compact_min_dead_bytes
        })
    }

    fn read_only(&self) -> Option<String> {
        self.lock().read_only.clone()
    }

    fn stats(&self) -> BackendStats {
        let inner = self.lock();
        BackendStats {
            appended_records: inner.appended_records,
            appended_bytes: inner.appended_bytes,
            segment_files: inner.segments.values().filter(|s| s.len > 0).count(),
            wal_bytes: inner.segments.values().map(|s| s.len).sum(),
            reclaimed_bytes: inner.reclaimed_bytes,
            records_since_checkpoint: inner.records_since_checkpoint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_enclave::CostModel;
    use speed_wire::Record;
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn context() -> (Arc<Platform>, Arc<Enclave>) {
        // Seeded: reopening after a "restart" must model the same machine,
        // or the sealed WAL records would be undecryptable by design.
        let platform = Platform::with_seed(CostModel::no_sgx(), Some(0x5eed));
        let enclave = platform.create_enclave(b"log-test-enclave").unwrap();
        (platform, enclave)
    }

    fn scratch(label: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("speed-store-log-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry(fill: u8) -> SyncEntry {
        SyncEntry {
            tag: CompTag::from_bytes([fill; 32]),
            record: Record {
                challenge: vec![fill; 32],
                wrapped_key: [fill; 16],
                nonce: [fill; 12],
                boxed_result: vec![fill; 24],
            },
            hits: u64::from(fill),
        }
    }

    fn open_on(_dir: &Path, config: LogConfig) -> (LogBackend, Recovery) {
        let (platform, enclave) = context();
        let backend = LogBackend::new(config);
        let recovery = backend.open(&platform, &enclave).unwrap();
        (backend, recovery)
    }

    #[test]
    fn fresh_open_then_reopen_replays_mutations() {
        let dir = scratch("roundtrip");
        let (backend, recovery) = open_on(&dir, LogConfig::new(&dir));
        assert_eq!(recovery.entries.len(), 0);
        assert_eq!(recovery.report.checkpoint, SnapshotLoad::FreshMissing);

        backend.record_put(&entry(1)).unwrap();
        backend.record_put(&entry(2)).unwrap();
        backend.record_put(&entry(3)).unwrap();
        backend.record_ref(&entry(2).tag).unwrap();
        backend.record_unref(&entry(2).tag).unwrap(); // back to rc 1, stays live
        backend.record_delete(&entry(3).tag).unwrap();
        backend.flush().unwrap();
        drop(backend);

        let (_backend, recovery) = open_on(&dir, LogConfig::new(&dir));
        assert_eq!(recovery.report.wal_records_replayed, 6);
        assert_eq!(recovery.report.torn_segments, 0);
        let mut tags: Vec<u8> =
            recovery.entries.iter().map(|e| e.tag.as_bytes()[0]).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![1, 2]);
        let survivor = recovery.entries.iter().find(|e| e.tag == entry(2).tag).unwrap();
        assert_eq!(survivor.record, entry(2).record);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unref_to_zero_removes_entry_across_reopen() {
        let dir = scratch("unref");
        let (backend, _) = open_on(&dir, LogConfig::new(&dir));
        backend.record_put(&entry(7)).unwrap();
        backend.record_unref(&entry(7).tag).unwrap();
        backend.flush().unwrap();
        drop(backend);

        let (_backend, recovery) = open_on(&dir, LogConfig::new(&dir));
        assert!(recovery.entries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_deletes_segments_and_bounds_replay() {
        let dir = scratch("checkpoint");
        let (backend, _) = open_on(&dir, LogConfig::new(&dir));
        backend.record_put(&entry(1)).unwrap();
        backend.record_put(&entry(2)).unwrap();
        backend.flush().unwrap();
        backend.checkpoint(&[vec![entry(1), entry(2)]]).unwrap();
        assert_eq!(backend.stats().wal_bytes, 0, "segments collapsed");
        // Post-checkpoint traffic lands in fresh segments.
        backend.record_put(&entry(3)).unwrap();
        backend.flush().unwrap();
        drop(backend);

        let (_backend, recovery) = open_on(&dir, LogConfig::new(&dir));
        assert_eq!(recovery.report.checkpoint, SnapshotLoad::Restored);
        assert_eq!(recovery.report.checkpoint_entries, 2);
        assert_eq!(recovery.report.wal_records_replayed, 1);
        assert_eq!(recovery.entries.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wants_checkpoint_after_configured_record_count() {
        let dir = scratch("wants-ckpt");
        let mut config = LogConfig::new(&dir);
        config.checkpoint_every = 2;
        let (backend, _) = open_on(&dir, config);
        assert!(!backend.wants_checkpoint());
        backend.record_put(&entry(1)).unwrap();
        backend.record_put(&entry(2)).unwrap();
        backend.flush().unwrap();
        assert!(backend.wants_checkpoint());
        backend.checkpoint(&[vec![entry(1), entry(2)]]).unwrap();
        assert!(!backend.wants_checkpoint());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_recovered() {
        let dir = scratch("torn");
        let (backend, _) = open_on(&dir, LogConfig::new(&dir));
        backend.record_put(&entry(1)).unwrap();
        backend.record_put(&entry(2)).unwrap();
        backend.flush().unwrap();
        drop(backend);

        // Garbage after the last sealed record in every written segment:
        // a crash mid-append.
        let vfs = StdVfs;
        let mut garbaged = 0;
        for file in list_segments(&vfs, &dir).unwrap() {
            if vfs.file_len(&file.path).unwrap() > 0 {
                vfs.append(&file.path, &[0xde, 0xad, 0xbe]).unwrap();
                garbaged += 1;
            }
        }
        assert!(garbaged > 0);

        let (_backend, recovery) = open_on(&dir, LogConfig::new(&dir));
        assert_eq!(recovery.report.torn_segments, garbaged);
        assert_eq!(recovery.entries.len(), 2, "records before the tear survive");
        // The tails were cut: a second reopen sees clean segments.
        let (_backend, recovery) = open_on(&dir, LogConfig::new(&dir));
        assert_eq!(recovery.report.torn_segments, 0);
        assert_eq!(recovery.entries.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_quarantined_and_wal_still_replays() {
        let dir = scratch("bad-ckpt");
        let (backend, _) = open_on(&dir, LogConfig::new(&dir));
        backend.record_put(&entry(1)).unwrap();
        backend.flush().unwrap();
        backend.checkpoint(&[vec![entry(1)]]).unwrap();
        backend.record_put(&entry(2)).unwrap();
        backend.flush().unwrap();
        drop(backend);

        // Flip a byte inside the sealed region.
        let cp = dir.join(CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&cp).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&cp, &bytes).unwrap();

        let (_backend, recovery) = open_on(&dir, LogConfig::new(&dir));
        assert!(matches!(recovery.report.checkpoint, SnapshotLoad::FreshUnreadable(_)));
        assert!(recovery.report.quarantined_checkpoint);
        assert!(corrupt_sibling(&cp).exists());
        // Entry 1 lived only in the checkpoint — lost with it (the WAL
        // records below the checkpoint mark were deleted). Entry 2 was
        // written after and replays from its segment.
        assert_eq!(recovery.entries.len(), 1);
        assert_eq!(recovery.entries[0].tag, entry(2).tag);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_dead_segment() {
        let dir = scratch("compact");
        let mut config = LogConfig::new(&dir);
        config.logs = 1;
        config.segment_bytes = 1; // every record seals its segment
        config.compact_min_dead_bytes = 1;
        let (backend, _) = open_on(&dir, config.clone());
        backend.record_put(&entry(1)).unwrap();
        backend.record_put(&entry(2)).unwrap();
        backend.record_delete(&entry(1).tag).unwrap();
        backend.flush().unwrap();
        assert!(backend.wants_compaction());
        let stats = backend.compact().unwrap();
        assert_eq!(stats.segments_compacted, 1);
        assert!(stats.reclaimed_bytes > 0);
        drop(backend);

        let (_backend, recovery) = open_on(&dir, config);
        assert_eq!(recovery.entries.len(), 1);
        assert_eq!(recovery.entries[0].tag, entry(2).tag);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_moves_live_put_and_survives_reopen() {
        let dir = scratch("compact-live");
        let mut config = LogConfig::new(&dir);
        config.logs = 1;
        config.segment_bytes = 1;
        config.compact_min_dead_bytes = 1;
        let (backend, _) = open_on(&dir, config.clone());
        backend.record_put(&entry(1)).unwrap();
        backend.record_put(&entry(2)).unwrap();
        backend.record_put(&entry(2)).unwrap(); // dedup by seq keeps newest
        backend.record_delete(&entry(1).tag).unwrap();
        backend.flush().unwrap();
        while backend.wants_compaction() {
            backend.compact().unwrap();
        }
        drop(backend);

        let (_backend, recovery) = open_on(&dir, config);
        assert_eq!(recovery.entries.len(), 1);
        assert_eq!(recovery.entries[0].tag, entry(2).tag);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A [`Vfs`] whose `fsync` fails while a flag is raised.
    #[derive(Debug)]
    struct FlakyFsync {
        fail: AtomicBool,
    }

    impl Vfs for FlakyFsync {
        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            StdVfs.read(path)
        }
        fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            StdVfs.write(path, bytes)
        }
        fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            StdVfs.append(path, bytes)
        }
        fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
            StdVfs.truncate(path, len)
        }
        fn fsync(&self, path: &Path) -> io::Result<()> {
            if self.fail.load(Ordering::Relaxed) {
                return Err(io::Error::other("injected fsync failure"));
            }
            StdVfs.fsync(path)
        }
        fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
            StdVfs.fsync_dir(dir)
        }
        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            StdVfs.rename(from, to)
        }
        fn remove_file(&self, path: &Path) -> io::Result<()> {
            StdVfs.remove_file(path)
        }
        fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
            StdVfs.create_dir_all(dir)
        }
        fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
            StdVfs.list_dir(dir)
        }
        fn file_len(&self, path: &Path) -> io::Result<u64> {
            StdVfs.file_len(path)
        }
        fn exists(&self, path: &Path) -> bool {
            StdVfs.exists(path)
        }
    }

    #[test]
    fn fsync_failure_degrades_read_only_and_drops_unsynced_records() {
        let dir = scratch("degrade");
        let (platform, enclave) = context();
        let vfs = Arc::new(FlakyFsync { fail: AtomicBool::new(false) });
        let backend =
            LogBackend::with_vfs(Arc::clone(&vfs) as Arc<dyn Vfs>, LogConfig::new(&dir));
        backend.open(&platform, &enclave).unwrap();

        backend.record_put(&entry(1)).unwrap();
        backend.flush().unwrap();

        backend.record_put(&entry(2)).unwrap();
        vfs.fail.store(true, Ordering::Relaxed);
        assert!(backend.flush().is_err(), "fsync failure must surface");
        assert!(backend.read_only().is_some());
        // Mutations are rejected while degraded; the reason is reported.
        let err = backend.record_put(&entry(3)).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));

        // A restart (new process, disk healthy again) recovers exactly the
        // synced prefix: entry 2 was never acknowledged and never replays.
        let (_backend, recovery) = open_on(&dir, LogConfig::new(&dir));
        assert_eq!(recovery.entries.len(), 1);
        assert_eq!(recovery.entries[0].tag, entry(1).tag);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
