//! The `ResultStore` proper: request parsing outside the enclave, dictionary
//! access inside it (§IV-B).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::Mutex;

use speed_enclave::{Enclave, EnclaveError, Platform, UntrustedMemory};
use speed_wire::{
    AppId, CompTag, GetResponseBody, Message, PutResponseBody, Record, StatsBody,
    SyncEntry,
};

use crate::dict::MetadataDict;
use crate::quota::{QuotaDecision, QuotaPolicy, QuotaTracker};
use crate::StoreError;

/// Code identity of the store enclave (what remote parties attest against).
pub const STORE_ENCLAVE_CODE: &[u8] = b"speed-result-store-enclave-v1";

/// Who may use the store — the "controlled deduplication" extension the
/// paper sketches in §III-D ("to ensure that only authorized applications
/// can access ResultStore, it requires an additional authorization
/// mechanism").
#[derive(Clone, Debug, Default)]
pub enum AccessControl {
    /// Any application may GET and PUT (the paper's prototype default).
    #[default]
    Open,
    /// Only the listed application ids may GET or PUT; everyone else gets
    /// a protocol error.
    Allowlist(std::collections::HashSet<u64>),
}

impl AccessControl {
    fn permits(&self, app: AppId) -> bool {
        match self {
            AccessControl::Open => true,
            AccessControl::Allowlist(allowed) => allowed.contains(&app.0),
        }
    }
}

/// Configuration for a [`ResultStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Maximum number of dictionary entries before LRU eviction.
    pub max_entries: usize,
    /// Maximum total ciphertext bytes before LRU eviction.
    pub max_stored_bytes: u64,
    /// Per-application quota policy.
    pub quota: QuotaPolicy,
    /// Which applications may use the store.
    pub access: AccessControl,
    /// Entry time-to-live in logical milliseconds (each request advances
    /// the logical clock by 1 ms); `None` disables expiry.
    pub ttl_ms: Option<u64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_entries: 1_000_000,
            max_stored_bytes: 8 * 1024 * 1024 * 1024,
            quota: QuotaPolicy::default(),
            access: AccessControl::Open,
            ttl_ms: None,
        }
    }
}

impl StoreConfig {
    /// A small-capacity config for eviction tests.
    pub fn with_capacity(max_entries: usize, max_stored_bytes: u64) -> Self {
        StoreConfig {
            max_entries,
            max_stored_bytes,
            quota: QuotaPolicy::unlimited(),
            access: AccessControl::Open,
            ttl_ms: None,
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    gets: AtomicU64,
    hits: AtomicU64,
    puts: AtomicU64,
    rejected_puts: AtomicU64,
    evictions: AtomicU64,
}

/// Page-pooled EPC accounting for dictionary metadata: entries are tens of
/// bytes, so the enclave heap commits pages as byte usage crosses page
/// boundaries instead of a page per entry.
#[derive(Debug, Default)]
struct MetaHeap {
    bytes: usize,
    committed: usize,
}

impl MetaHeap {
    fn reserve(&mut self, enclave: &Enclave, bytes: usize) -> Result<(), EnclaveError> {
        let new_bytes = self.bytes + bytes;
        let needed =
            new_bytes.div_ceil(speed_enclave::PAGE_SIZE) * speed_enclave::PAGE_SIZE;
        if needed > self.committed {
            enclave.commit_memory(needed - self.committed)?;
            self.committed = needed;
        }
        self.bytes = new_bytes;
        Ok(())
    }

    fn release(&mut self, enclave: &Enclave, bytes: usize) {
        self.bytes = self.bytes.saturating_sub(bytes);
        let needed =
            self.bytes.div_ceil(speed_enclave::PAGE_SIZE) * speed_enclave::PAGE_SIZE;
        if needed < self.committed {
            let _ = enclave.release_memory(self.committed - needed);
            self.committed = needed;
        }
    }
}

/// The encrypted result store.
///
/// Thread-safe: the TCP front end serves concurrent connections against one
/// shared instance.
#[derive(Debug)]
pub struct ResultStore {
    enclave: Arc<Enclave>,
    untrusted: Arc<UntrustedMemory>,
    dict: Mutex<MetadataDict>,
    meta_heap: Mutex<MetaHeap>,
    quota: Mutex<QuotaTracker>,
    config: StoreConfig,
    counters: Counters,
    logical_ms: AtomicU64,
}

impl ResultStore {
    /// Creates a store whose enclave runs on `platform`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Enclave`] if the platform cannot host the
    /// store enclave.
    pub fn new(platform: &Platform, config: StoreConfig) -> Result<Self, StoreError> {
        let enclave = platform.create_enclave(STORE_ENCLAVE_CODE)?;
        Ok(ResultStore {
            enclave,
            untrusted: Arc::clone(platform.untrusted()),
            dict: Mutex::new(MetadataDict::new()),
            meta_heap: Mutex::new(MetaHeap::default()),
            quota: Mutex::new(QuotaTracker::new(config.quota)),
            config,
            counters: Counters::default(),
            logical_ms: AtomicU64::new(0),
        })
    }

    /// The store's enclave (for attestation by clients).
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// Handles one protocol message, returning the response message.
    ///
    /// Mirrors the paper's flow: preliminary parsing happens outside the
    /// enclave (the caller decoded the message), then the request is
    /// delegated to a `GET` or `PUT` ECALL that marshals data across the
    /// boundary and touches the in-enclave dictionary.
    pub fn handle(&self, message: Message) -> Message {
        match message {
            Message::GetRequest { app, tag } => {
                if !self.config.access.permits(app) {
                    return Message::Error(format!("app {} not authorized", app.0));
                }
                Message::GetResponse(self.handle_get(app, tag))
            }
            Message::PutRequest { app, tag, record } => {
                if !self.config.access.permits(app) {
                    return Message::Error(format!("app {} not authorized", app.0));
                }
                Message::PutResponse(self.handle_put(app, tag, record))
            }
            Message::StatsRequest => Message::StatsResponse(self.stats()),
            Message::SyncPull { min_hits } => {
                Message::SyncBatch(self.export_popular(min_hits))
            }
            Message::SyncBatch(entries) => {
                let mut accepted = 0u64;
                for entry in entries {
                    if self.handle_put(AppId(u64::MAX), entry.tag, entry.record).accepted
                    {
                        accepted += 1;
                    }
                }
                Message::PutResponse(PutResponseBody {
                    accepted: true,
                    reason: Some(format!("merged {accepted} entries")),
                })
            }
            other => Message::Error(format!("unexpected message: {other:?}")),
        }
    }

    fn handle_get(&self, _app: AppId, tag: CompTag) -> GetResponseBody {
        self.counters.gets.fetch_add(1, Ordering::Relaxed);
        let now_ms = self.tick();
        // GET ECALL: tag goes in (32 B), metadata comes out.
        let (meta, expired) = self.enclave.ecall_with_bytes("store_get", 32, 128, || {
            let mut dict = self.dict.lock().expect("store lock poisoned");
            if let Some(ttl) = self.config.ttl_ms {
                let is_expired = dict
                    .peek(&tag)
                    .is_some_and(|entry| now_ms.saturating_sub(entry.created_ms) >= ttl);
                if is_expired {
                    return (None, dict.remove(&tag));
                }
            }
            let meta = dict.get(&tag).map(|entry| {
                (
                    entry.challenge.clone(),
                    entry.wrapped_key,
                    entry.nonce,
                    entry.blob,
                    entry.boxed_len,
                )
            });
            (meta, None)
        });
        if let Some(entry) = expired {
            self.untrusted.remove(entry.blob);
            self.quota
                .lock()
                .expect("store lock poisoned")
                .release(entry.owner, u64::from(entry.boxed_len));
            self.release_entry_memory(&entry);
        }
        match meta {
            Some((challenge, wrapped_key, nonce, blob, boxed_len)) => {
                // The ciphertext itself is read from untrusted memory by the
                // host side — no boundary crossing for the bulk bytes.
                match self.untrusted.load(blob) {
                    Some(boxed_result) => {
                        self.counters.hits.fetch_add(1, Ordering::Relaxed);
                        GetResponseBody {
                            found: true,
                            record: Some(Record {
                                challenge,
                                wrapped_key,
                                nonce,
                                boxed_result,
                            }),
                        }
                    }
                    None => {
                        // Blob vanished (hostile deletion outside the
                        // enclave). Drop the dangling metadata and miss.
                        let _ = boxed_len;
                        self.enclave.ecall("store_drop_dangling", || {
                            let mut dict = self.dict.lock().expect("store lock poisoned");
                            if let Some(entry) = dict.remove(&tag) {
                                self.release_entry_memory(&entry);
                            }
                        });
                        GetResponseBody { found: false, record: None }
                    }
                }
            }
            None => GetResponseBody { found: false, record: None },
        }
    }

    fn handle_put(&self, app: AppId, tag: CompTag, record: Record) -> PutResponseBody {
        self.counters.puts.fetch_add(1, Ordering::Relaxed);
        let now_ms = self.tick();
        let boxed_len = record.boxed_result.len() as u64;

        let decision = self
            .quota
            .lock()
            .expect("store lock poisoned")
            .check_put(app, boxed_len, now_ms);
        if let QuotaDecision::Deny(reason) = decision {
            self.counters.rejected_puts.fetch_add(1, Ordering::Relaxed);
            return PutResponseBody { accepted: false, reason: Some(reason) };
        }

        // Bulk ciphertext goes straight to untrusted memory.
        let blob = self.untrusted.store(record.boxed_result);

        // PUT ECALL: metadata (challenge, [k], nonce, pointer) crosses the
        // boundary into the dictionary.
        let meta_len = record.challenge.len() + 16 + 12 + 8;
        let result: Result<Option<speed_enclave::BlobId>, EnclaveError> =
            self.enclave.ecall_with_bytes("store_put", meta_len, 1, || {
                let mut dict = self.dict.lock().expect("store lock poisoned");
                let entry_footprint = 32 + record.challenge.len() + 120;
                self.meta_heap
                    .lock()
                    .expect("store lock poisoned")
                    .reserve(&self.enclave, entry_footprint)?;
                let rejected = dict.insert(
                    tag,
                    record.challenge.clone(),
                    record.wrapped_key,
                    record.nonce,
                    blob,
                    boxed_len as u32,
                    app,
                    now_ms,
                );
                if rejected.is_some() {
                    // Entry already existed; give back the memory we took.
                    self.meta_heap
                        .lock()
                        .expect("store lock poisoned")
                        .release(&self.enclave, entry_footprint);
                }
                Ok(rejected)
            });

        match result {
            Ok(None) => {
                self.enforce_capacity();
                PutResponseBody { accepted: true, reason: None }
            }
            Ok(Some(orphan_blob)) => {
                // Duplicate tag: first writer won; free the new blob and
                // refund quota.
                self.untrusted.remove(orphan_blob);
                self.quota.lock().expect("store lock poisoned").release(app, boxed_len);
                PutResponseBody {
                    accepted: true,
                    reason: Some("duplicate: existing entry kept".into()),
                }
            }
            Err(e) => {
                self.untrusted.remove(blob);
                self.quota.lock().expect("store lock poisoned").release(app, boxed_len);
                self.counters.rejected_puts.fetch_add(1, Ordering::Relaxed);
                PutResponseBody { accepted: false, reason: Some(e.to_string()) }
            }
        }
    }

    fn enforce_capacity(&self) {
        loop {
            let evicted = self.enclave.ecall("store_evict", || {
                let mut dict = self.dict.lock().expect("store lock poisoned");
                if dict.len() > self.config.max_entries
                    || dict.stored_bytes() > self.config.max_stored_bytes
                {
                    dict.evict_lru()
                } else {
                    None
                }
            });
            match evicted {
                Some((_tag, entry)) => {
                    self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                    self.untrusted.remove(entry.blob);
                    self.quota
                        .lock()
                        .expect("store lock poisoned")
                        .release(entry.owner, u64::from(entry.boxed_len));
                    self.release_entry_memory(&entry);
                }
                None => break,
            }
        }
    }

    fn release_entry_memory(&self, entry: &crate::DictEntry) {
        let footprint = 32 + entry.challenge.len() + 120;
        self.meta_heap
            .lock()
            .expect("store lock poisoned")
            .release(&self.enclave, footprint);
    }

    /// Imports entries wholesale (snapshot restore), preserving hit counts.
    /// Returns how many entries were imported.
    pub fn import_entries(&self, entries: Vec<SyncEntry>) -> usize {
        let mut imported = 0usize;
        for entry in entries {
            let hits = entry.hits;
            let tag = entry.tag;
            let response = self.handle_put(AppId(u64::MAX), tag, entry.record);
            if response.accepted {
                self.enclave.ecall("store_restore_hits", || {
                    self.dict
                        .lock()
                        .expect("store lock poisoned")
                        .restore_hits(&tag, hits);
                });
                imported += 1;
            }
        }
        imported
    }

    /// Exports entries with at least `min_hits` hits for master-store sync.
    pub fn export_popular(&self, min_hits: u64) -> Vec<SyncEntry> {
        let popular = self.enclave.ecall("store_export", || {
            self.dict.lock().expect("store lock poisoned").popular(min_hits)
        });
        popular
            .into_iter()
            .filter_map(|(tag, entry)| {
                self.untrusted.load(entry.blob).map(|boxed_result| SyncEntry {
                    tag,
                    record: Record {
                        challenge: entry.challenge,
                        wrapped_key: entry.wrapped_key,
                        nonce: entry.nonce,
                        boxed_result,
                    },
                    hits: entry.hits,
                })
            })
            .collect()
    }

    /// A snapshot of the store's counters.
    pub fn stats(&self) -> StatsBody {
        let dict = self.dict.lock().expect("store lock poisoned");
        StatsBody {
            entries: dict.len() as u64,
            gets: self.counters.gets.load(Ordering::Relaxed),
            hits: self.counters.hits.load(Ordering::Relaxed),
            puts: self.counters.puts.load(Ordering::Relaxed),
            rejected_puts: self.counters.rejected_puts.load(Ordering::Relaxed),
            stored_bytes: dict.stored_bytes(),
        }
    }

    /// Number of LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.counters.evictions.load(Ordering::Relaxed)
    }

    /// Advances and returns the logical millisecond clock used for quota
    /// windows. Each request advances time by 1 ms; tests may rely on this
    /// determinism.
    fn tick(&self) -> u64 {
        self.logical_ms.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use speed_enclave::CostModel;

    fn record(len: usize, fill: u8) -> Record {
        Record {
            challenge: vec![fill; 32],
            wrapped_key: [fill; 16],
            nonce: [fill; 12],
            boxed_result: vec![fill; len],
        }
    }

    fn tag(n: u8) -> CompTag {
        CompTag::from_bytes([n; 32])
    }

    fn store() -> (Arc<Platform>, ResultStore) {
        let platform = Platform::new(CostModel::default_sgx());
        let store = ResultStore::new(&platform, StoreConfig::default()).unwrap();
        (platform, store)
    }

    #[test]
    fn get_miss_then_put_then_hit() {
        let (_p, store) = store();
        let response = store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        assert_eq!(
            response,
            Message::GetResponse(GetResponseBody { found: false, record: None })
        );

        let put = store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(100, 7),
        });
        assert!(matches!(put, Message::PutResponse(body) if body.accepted));

        let response = store.handle(Message::GetRequest { app: AppId(2), tag: tag(1) });
        match response {
            Message::GetResponse(body) => {
                assert!(body.found);
                assert_eq!(body.record.unwrap().boxed_result, vec![7u8; 100]);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn stats_track_requests() {
        let (_p, store) = store();
        store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        let stats = store.stats();
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.puts, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.stored_bytes, 10);
    }

    #[test]
    fn duplicate_put_keeps_first_version() {
        let (platform, store) = store();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        let blobs_before = platform.untrusted().len();
        let response = store.handle(Message::PutRequest {
            app: AppId(2),
            tag: tag(1),
            record: record(10, 2),
        });
        assert!(matches!(
            response,
            Message::PutResponse(body) if body.accepted && body.reason.is_some()
        ));
        // The duplicate's blob was freed.
        assert_eq!(platform.untrusted().len(), blobs_before);
        let get = store.handle(Message::GetRequest { app: AppId(3), tag: tag(1) });
        match get {
            Message::GetResponse(body) => {
                assert_eq!(body.record.unwrap().boxed_result, vec![1u8; 10]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            ResultStore::new(&platform, StoreConfig::with_capacity(2, u64::MAX)).unwrap();
        for n in 1..=3u8 {
            store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(n),
                record: record(8, n),
            });
        }
        assert_eq!(store.evictions(), 1);
        // Entry 1 was LRU and is gone; 2 and 3 remain.
        let miss = store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        assert!(matches!(miss, Message::GetResponse(b) if !b.found));
        let hit = store.handle(Message::GetRequest { app: AppId(1), tag: tag(3) });
        assert!(matches!(hit, Message::GetResponse(b) if b.found));
    }

    #[test]
    fn byte_capacity_eviction() {
        let platform = Platform::new(CostModel::default_sgx());
        let store =
            ResultStore::new(&platform, StoreConfig::with_capacity(usize::MAX, 100))
                .unwrap();
        for n in 1..=4u8 {
            store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(n),
                record: record(40, n),
            });
        }
        assert!(store.stats().stored_bytes <= 100);
        assert!(store.evictions() >= 2);
    }

    #[test]
    fn quota_rejection_reported() {
        let platform = Platform::new(CostModel::default_sgx());
        let config = StoreConfig {
            max_entries: 1000,
            max_stored_bytes: u64::MAX,
            quota: QuotaPolicy {
                max_entries_per_app: 2,
                max_bytes_per_app: u64::MAX,
                max_puts_per_window: u64::MAX,
                window_ms: 1_000,
            },
            access: AccessControl::Open,
            ttl_ms: None,
        };
        let store = ResultStore::new(&platform, config).unwrap();
        for n in 1..=2u8 {
            let r = store.handle(Message::PutRequest {
                app: AppId(1),
                tag: tag(n),
                record: record(8, n),
            });
            assert!(matches!(r, Message::PutResponse(b) if b.accepted));
        }
        let rejected = store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(3),
            record: record(8, 3),
        });
        match rejected {
            Message::PutResponse(b) => {
                assert!(!b.accepted);
                assert!(b.reason.unwrap().contains("quota"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Another app is unaffected.
        let ok = store.handle(Message::PutRequest {
            app: AppId(2),
            tag: tag(4),
            record: record(8, 4),
        });
        assert!(matches!(ok, Message::PutResponse(b) if b.accepted));
    }

    #[test]
    fn hostile_blob_deletion_degrades_to_miss() {
        let (platform, store) = store();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        // Adversary wipes all untrusted blobs.
        let ids: Vec<_> = (0..100).map(speed_enclave::BlobId::from_raw).collect();
        for id in ids {
            platform.untrusted().remove(id);
        }
        let response = store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        assert!(matches!(response, Message::GetResponse(b) if !b.found));
        // The dangling metadata was cleaned up.
        assert_eq!(store.stats().entries, 0);
    }

    #[test]
    fn ecall_counters_grow_with_requests() {
        let (_p, store) = store();
        let before = store.enclave().stats().ecalls;
        store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        assert!(store.enclave().stats().ecalls > before);
    }

    #[test]
    fn unexpected_message_yields_error() {
        let (_p, store) = store();
        let response = store.handle(Message::Error("client-side".into()));
        assert!(matches!(response, Message::Error(_)));
    }

    #[test]
    fn sync_pull_exports_popular_entries() {
        let (_p, store) = store();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(2),
            record: record(10, 2),
        });
        // Make tag 1 popular.
        for _ in 0..3 {
            store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        }
        let response = store.handle(Message::SyncPull { min_hits: 2 });
        match response {
            Message::SyncBatch(entries) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].tag, tag(1));
                assert!(entries[0].hits >= 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sync_batch_merges_entries() {
        let (_p, source) = store();
        let (_p2, target) = store();
        source.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(10, 1),
        });
        source.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        let batch = source.export_popular(1);
        assert_eq!(batch.len(), 1);
        target.handle(Message::SyncBatch(batch));
        let hit = target.handle(Message::GetRequest { app: AppId(9), tag: tag(1) });
        assert!(matches!(hit, Message::GetResponse(b) if b.found));
    }

    #[test]
    fn allowlist_blocks_unauthorized_apps() {
        let platform = Platform::new(CostModel::default_sgx());
        let config = StoreConfig {
            access: AccessControl::Allowlist([1u64, 2].into_iter().collect()),
            ..StoreConfig::default()
        };
        let store = ResultStore::new(&platform, config).unwrap();

        // Authorized app can PUT and GET.
        let ok = store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(8, 1),
        });
        assert!(matches!(ok, Message::PutResponse(b) if b.accepted));
        let ok = store.handle(Message::GetRequest { app: AppId(2), tag: tag(1) });
        assert!(matches!(ok, Message::GetResponse(b) if b.found));

        // Unauthorized app is refused both ways.
        let denied = store.handle(Message::GetRequest { app: AppId(3), tag: tag(1) });
        assert!(matches!(denied, Message::Error(ref m) if m.contains("not authorized")));
        let denied = store.handle(Message::PutRequest {
            app: AppId(3),
            tag: tag(2),
            record: record(8, 2),
        });
        assert!(matches!(denied, Message::Error(_)));
        assert_eq!(store.stats().entries, 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let platform = Platform::new(CostModel::default_sgx());
        let config = StoreConfig { ttl_ms: Some(5), ..StoreConfig::default() };
        let store = ResultStore::new(&platform, config).unwrap();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(12, 1),
        });

        // Within TTL (logical clock advances 1 ms per request): hit.
        let hit = store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        assert!(matches!(hit, Message::GetResponse(b) if b.found));

        // Burn logical time with unrelated requests past the TTL.
        for n in 10..20u8 {
            store.handle(Message::GetRequest { app: AppId(1), tag: tag(n) });
        }
        let miss = store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        assert!(matches!(miss, Message::GetResponse(b) if !b.found));
        // The expired entry was fully reclaimed.
        assert_eq!(store.stats().entries, 0);
        assert_eq!(store.stats().stored_bytes, 0);
    }

    #[test]
    fn no_ttl_means_no_expiry() {
        let (_p, store) = store();
        store.handle(Message::PutRequest {
            app: AppId(1),
            tag: tag(1),
            record: record(8, 1),
        });
        for n in 10..60u8 {
            store.handle(Message::GetRequest { app: AppId(1), tag: tag(n) });
        }
        let hit = store.handle(Message::GetRequest { app: AppId(1), tag: tag(1) });
        assert!(matches!(hit, Message::GetResponse(b) if b.found));
    }

    #[test]
    fn import_entries_preserves_hits() {
        let (_p, store) = store();
        let entries = vec![SyncEntry {
            tag: tag(1),
            record: Record {
                challenge: vec![1; 32],
                wrapped_key: [1; 16],
                nonce: [1; 12],
                boxed_result: vec![1; 10],
            },
            hits: 7,
        }];
        assert_eq!(store.import_entries(entries), 1);
        let popular = store.export_popular(7);
        assert_eq!(popular.len(), 1);
        assert_eq!(popular[0].hits, 7);
    }

    #[test]
    fn concurrent_puts_and_gets_are_safe() {
        let (_p, store) = store();
        let store = Arc::new(store);
        std::thread::scope(|s| {
            for worker in 0..4u8 {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..50u8 {
                        let t = tag(worker.wrapping_mul(50).wrapping_add(i));
                        store.handle(Message::PutRequest {
                            app: AppId(u64::from(worker)),
                            tag: t,
                            record: record(16, i),
                        });
                        store.handle(Message::GetRequest {
                            app: AppId(u64::from(worker)),
                            tag: t,
                        });
                    }
                });
            }
        });
        let stats = store.stats();
        assert_eq!(stats.puts, 200);
        assert_eq!(stats.gets, 200);
    }
}
